//! Quickstart: co-schedule a latency-critical web-search service with a
//! 16-app SPEC mix on a 32-core reconfigurable multicore under a 70 % power
//! cap, and let CuttleSys manage it for one second.
//!
//! Run with: `cargo run --release --example quickstart`

use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;

fn main() {
    // The paper's standard setup: Xapian at 80 % load plus a random SPEC
    // mix, a 70 % power cap, ten 100 ms decision intervals.
    let scenario = Scenario::paper_default();
    println!(
        "chip: {} reconfigurable cores, nominal budget {:.1} W, cap {:.1} W",
        scenario.params.num_cores,
        scenario.nominal_budget_watts(),
        0.7 * scenario.nominal_budget_watts(),
    );
    println!(
        "service: {} (QoS {} ms) + batch mix: {:?} ...",
        scenario.primary_lc().service.name,
        scenario.primary_lc().qos_ms,
        &scenario.batch_names()[..4],
    );

    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);

    println!("\n t(s)  tail(ms)   QoS?   chip(W)  LC config     batch gmean");
    for slice in &record.slices {
        println!(
            " {:>4.1}  {:>8.2}   {}   {:>7.1}  {:<12}  {:.2} BIPS",
            slice.t_s,
            slice.tail_ms(),
            if slice.qos_violation() {
                "VIOL"
            } else {
                " ok "
            },
            slice.chip_watts,
            slice.lc_config().to_string(),
            slice.batch_gmean_bips,
        );
    }
    println!(
        "\nbatch instructions over 1 s: {:.2}e9;  QoS violations: {}/{}",
        record.batch_instructions() / 1e9,
        record.qos_violations(),
        record.slices.len(),
    );
}
