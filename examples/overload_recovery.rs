//! Overload recovery: core relocation in action (the Fig. 8(c) mechanism).
//!
//! A web-search service takes a traffic burst 30 % past its calibrated
//! capacity — no 16-core configuration can absorb it. Watch CuttleSys detect
//! the QoS violation, reclaim batch cores one timeslice at a time until the
//! tail recovers, and hand them back when the burst passes.
//!
//! Run with: `cargo run --release --example overload_recovery`

use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use workloads::loadgen::LoadPattern;

fn main() {
    let scenario = Scenario::paper_default()
        .with_duration_slices(10)
        .with_load(LoadPattern::paper_spike());
    let qos_ms = scenario.primary_lc().qos_ms;
    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);

    println!("xapian hit by a 130% burst in t = [0.3 s, 0.7 s):\n");
    println!(" t(s)  load   LC cores  tail/QoS   LC config     batch gmean");
    for slice in &record.slices {
        let cores_bar = "C".repeat(slice.lc_cores() - 13);
        println!(
            " {:>4.1}  {:>4.0}%  {:>2} {:<6}  {:>5.2} {}  {:<12} {:.2} BIPS",
            slice.t_s,
            slice.load() * 100.0,
            slice.lc_cores(),
            cores_bar,
            slice.tail_ms() / qos_ms,
            if slice.qos_violation() {
                "VIOL"
            } else {
                " ok "
            },
            slice.lc_config().to_string(),
            slice.batch_gmean_bips,
        );
    }
    let peak_cores = record.slices.iter().map(|s| s.lc_cores()).max().unwrap();
    println!(
        "\nThe service grew from 16 to {peak_cores} cores during the burst and \
         returned to 16 after it;\nbatch jobs time-multiplexed the remaining \
         cores instead of being starved permanently."
    );
}
