//! Colocation study: the same web-search + batch-analytics server managed
//! by four different resource managers, under the same 60 % power cap.
//!
//! This is the paper's core claim in miniature: against core-level gating
//! and even an oracle-like asymmetric multicore, fine-grained
//! reconfiguration extracts more batch throughput from the same Watts while
//! never violating the interactive service's QoS.
//!
//! Run with: `cargo run --release --example colocation`

use baselines::gating::GatingOrder;
use cuttlesys::managers::{AsymmetricManager, AsymmetricMode, CoreGatingManager, NoGatingManager};
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{RunRecord, Scenario};
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;
use workloads::loadgen::LoadPattern;

fn summarize(record: &RunRecord, baseline: f64) {
    println!(
        " {:<18}  {:>6.2}x batch   {:>2} QoS violations   worst tail {:.1}x QoS",
        record.scheme,
        record.batch_instructions() / baseline,
        record.qos_violations(),
        record.worst_tail_ratio(),
    );
}

fn main() {
    let scenario = Scenario::paper_default().with_cap(LoadPattern::Constant(0.6));
    let fixed = Scenario {
        kind: CoreKind::Fixed,
        ..scenario.clone()
    };
    // The no-gating reference ignores the cap: it sets the 1.0x baseline.
    let reference = run_scenario(&fixed, &mut NoGatingManager);
    let baseline = reference.batch_instructions();
    println!(
        "xapian @ 80% load + 16 SPEC jobs, 60% power cap ({:.1} W):\n",
        0.6 * scenario.nominal_budget_watts()
    );
    summarize(&reference, baseline);

    let mut gating = CoreGatingManager::new(&fixed, GatingOrder::DescendingPower, true);
    summarize(&run_scenario(&fixed, &mut gating), baseline);

    let mut asym = AsymmetricManager::new(&fixed, AsymmetricMode::Oracle);
    summarize(&run_scenario(&fixed, &mut asym), baseline);

    let mut cuttle = CuttleSysManager::for_scenario(&scenario);
    summarize(&run_scenario(&scenario, &mut cuttle), baseline);
}
