//! Cluster demo: per-node agents under the deterministic coordinator.
//!
//! Brings up a three-node fleet, each node running the paper-default
//! co-location, then hits node n0 with the paper's flash crowd (a 130 %
//! traffic burst). Watch the cluster control plane react: the balance
//! policy sheds LC traffic share from the breaching replica, and the
//! auto-migration policy drains batch tenants off n0 and re-admits them
//! on nodes with headroom after the modeled migration cost. Per-node
//! gauges are scraped over plain TCP under `node=` labels, exactly as a
//! fleet operator (or the CI smoke job) would.
//!
//! Run with: `cargo run --release --example cluster`
//!
//! Exits non-zero when the cluster control plane misbehaves: the flash
//! crowd fails to trigger a migration, the scrape is missing per-node
//! samples, the cluster `/state` is missing the fleet view, or the final
//! drain leaves tenants unretired.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use cluster::{BalanceConfig, ClusterConfig, ClusterEvent, ClusterScenario, MigrationConfig};
use cuttlesys::control::ControlEvent;
use cuttlesys::lifecycle::LifecycleState;
use cuttlesys::types::Scenario;
use service::bus::Received;
use service::cluster::ClusterServiceBuilder;
use workloads::loadgen::LoadPattern;

/// One HTTP GET against the cluster scrape endpoint, body returned.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to metrics endpoint");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: cuttlesys\r\n\r\n").expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_string()
}

fn main() -> ExitCode {
    // Every node runs the paper-default co-location with steady-state
    // headroom (so migrated tenants can be re-admitted elsewhere); node
    // n0 additionally takes the paper's flash crowd.
    let base = Scenario::paper_default()
        .with_duration_slices(10)
        .with_cap(LoadPattern::Constant(2.0));
    let mut scenario = ClusterScenario::uniform(&base, 3);
    scenario.nodes[0] = scenario.nodes[0]
        .clone()
        .with_load(LoadPattern::paper_spike());

    let config = ClusterConfig {
        migration: MigrationConfig {
            auto_tail_ratio: Some(1.0),
            ..MigrationConfig::default()
        },
        balance: Some(BalanceConfig::default()),
        ..ClusterConfig::default()
    };
    let service = ClusterServiceBuilder::new(&scenario)
        .config(config)
        .metrics_addr("127.0.0.1:0")
        .start()
        .expect("cluster service starts");
    let addr = service.metrics_addr().expect("endpoint bound");
    let mut events = service.subscribe();
    let tenants_per_node = base.num_lc() + base.num_batch();
    println!(
        "cluster up: 3 nodes x {tenants_per_node} tenants, flash crowd on n0, \
         metrics on http://{addr}/metrics"
    );

    // Run the horizon, draining the event stream as we go.
    let mut migrations_started = 0usize;
    let mut migrations_completed = 0usize;
    let mut shares_shifted = 0usize;
    let mut retired = 0usize;
    let mut drain = |events: &mut service::bus::Subscriber<ClusterEvent>| {
        while let Ok(Some(got)) = events.try_recv() {
            match got {
                Received::Event(ClusterEvent::MigrationStarted { name, from, to, .. }) => {
                    migrations_started += 1;
                    println!("  migration: {name} drains {from} -> {to}");
                }
                Received::Event(ClusterEvent::MigrationCompleted { name, to, .. }) => {
                    migrations_completed += 1;
                    println!("  migration: {name} admitted on {to}");
                }
                Received::Event(ClusterEvent::SharesShifted {
                    lc_index,
                    from,
                    to,
                    amount,
                    ..
                }) => {
                    shares_shifted += 1;
                    println!("  balance: lc{lc_index} share {amount:.2} moves {from} -> {to}");
                }
                Received::Event(ClusterEvent::Node(ControlEvent::Lifecycle {
                    to: LifecycleState::Retired,
                    ..
                })) => retired += 1,
                Received::Event(_) => {}
                Received::Lagged(n) => println!("  subscriber lagged by {n} events"),
            }
        }
    };
    for quantum in 0..base.duration_slices {
        service.step_quantum().expect("quantum");
        println!("quantum {quantum}:");
        drain(&mut events);
    }

    // Per-node scrape, exactly as a fleet operator would.
    let metrics = scrape(addr, "/metrics");
    let state = scrape(addr, "/state");
    for needle in [
        "cuttlesys_cluster_nodes 3",
        "cuttlesys_quanta_total{node=\"n0\"}",
        "cuttlesys_quanta_total{node=\"n2\"}",
        "cuttlesys_lc_tail_ms{node=\"n0\",service=\"xapian\"}",
        "cuttlesys_lc_traffic_share{node=\"n0\",lc=\"0\"}",
    ] {
        if !metrics.contains(needle) {
            eprintln!("FAIL: scrape is missing `{needle}`:\n{metrics}");
            return ExitCode::FAILURE;
        }
    }
    for needle in ["\"quantum\":10", "\"nodes\":[", "\"lc_shares\":["] {
        if !state.contains(needle) {
            eprintln!("FAIL: /state is missing `{needle}`:\n{state}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "scraped {} bytes of per-node metrics and the cluster /state",
        metrics.len()
    );

    if migrations_started == 0 {
        eprintln!("FAIL: the flash crowd never triggered a migration off n0");
        return ExitCode::FAILURE;
    }

    // Clean fleet drain: shutdown retires every tenant on every node.
    let record = service.shutdown().expect("clean fleet drain");
    while let Ok(got) = events.recv() {
        if let Received::Event(ClusterEvent::Node(ControlEvent::Lifecycle {
            to: LifecycleState::Retired,
            ..
        })) = got
        {
            retired += 1;
        }
    }
    println!(
        "run complete: {} lockstep quanta, {} nodes, {migrations_started} migrations started \
         ({migrations_completed} completed), {shares_shifted} share shifts, {retired} tenants retired",
        record.quanta,
        record.nodes.len()
    );
    if record.nodes.len() != 3 || record.nodes.iter().any(|n| n.slices.len() != 10) {
        eprintln!("FAIL: the cluster record is missing node slices");
        return ExitCode::FAILURE;
    }
    if retired < 3 * tenants_per_node {
        eprintln!(
            "FAIL: drain left tenants unretired ({retired} < {})",
            3 * tenants_per_node
        );
        return ExitCode::FAILURE;
    }
    println!("clean fleet drain confirmed; cluster down");
    ExitCode::SUCCESS
}
