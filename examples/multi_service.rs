//! Multi-tenant scheduling: two latency-critical services with their own
//! QoS targets share one reconfigurable chip with a dozen batch jobs.
//!
//! Xapian (web search) and Masstree (in-memory KV store) ride *offset*
//! diurnal waves — search peaks while the store ebbs and vice versa — so
//! the scheduler must continuously rebalance partial-core resources between
//! the two tenants and the batch mix, holding both QoS targets at a 70 %
//! power cap.
//!
//! Run with: `cargo run --release --example multi_service`

use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{JobSpec, Scenario};
use cuttlesys::CuttleSysManager;
use workloads::loadgen::LoadPattern;

/// A sinusoidal diurnal trace between `min` and `max` over one second,
/// phase-shifted by `phase` periods (0.5 = in antiphase).
fn shifted_diurnal(min: f64, max: f64, phase: f64, samples: usize) -> LoadPattern {
    let mid = 0.5 * (min + max);
    let amp = 0.5 * (max - min);
    let step = 1.0 / samples as f64;
    let vals = (0..=samples)
        .map(|i| {
            let t = i as f64 * step + phase;
            mid - amp * (std::f64::consts::TAU * t).cos()
        })
        .collect();
    LoadPattern::from_trace(step, vals)
}

fn main() {
    // Xapian + Masstree on 8 cores each plus 12 SPEC batch jobs; each
    // service keeps its own calibrated QoS target.
    let mut scenario = Scenario::two_service();
    let waves = [
        shifted_diurnal(0.15, 0.45, 0.0, 10),
        shifted_diurnal(0.15, 0.45, 0.5, 10),
    ];
    let mut next = 0;
    for job in &mut scenario.jobs {
        if let JobSpec::LatencyCritical(lc) = job {
            lc.load = waves[next].clone();
            next += 1;
        }
    }

    let specs = scenario.lc_jobs();
    println!(
        "two services on one chip: {} (QoS {} ms) and {} (QoS {} ms), 12 batch jobs, 70% cap\n",
        specs[0].service.name, specs[0].qos_ms, specs[1].service.name, specs[1].qos_ms,
    );

    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);

    println!(
        " t(s)  xapian load tail/QoS cores   masstree load tail/QoS cores   chip(W)  batch gmean"
    );
    for slice in &record.slices {
        let (a, b) = (&slice.lc[0], &slice.lc[1]);
        println!(
            " {:>4.1}      {:>4.0}%    {:>5.2}   {:>2}          {:>4.0}%    {:>5.2}   {:>2}     {:>6.1}   {:.2} BIPS",
            slice.t_s,
            a.load * 100.0,
            a.tail_ms / a.qos_ms,
            a.cores,
            b.load * 100.0,
            b.tail_ms / b.qos_ms,
            b.cores,
            slice.chip_watts,
            slice.batch_gmean_bips,
        );
    }

    println!("\nper-service QoS violations:");
    for (i, spec) in specs.iter().enumerate() {
        println!(
            "  {:<10} {}/{}",
            spec.service.name,
            record.qos_violations_for(i),
            record.slices.len()
        );
    }
    println!(
        "batch instructions over 1 s: {:.2}e9 across {} jobs",
        record.batch_instructions() / 1e9,
        scenario.num_batch(),
    );
}
