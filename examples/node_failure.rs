//! Fleet fault-tolerance demo: lose a node mid-flash-crowd and watch the
//! coordinator recover.
//!
//! Brings up a three-node fleet (flash crowd on n0), then takes node n1
//! out mid-run according to the chosen profile:
//!
//! * `crash` (default) — n1 halts silently at quantum 3; the health
//!   detector counts missed heartbeats, declares it down, and evacuates.
//! * `blackout` — n1 keeps running but is unobservable for 4 quanta; it
//!   is declared down and evacuated, then rejoins and the coordinator
//!   reconciles the stale rows it abandoned.
//! * `drain` — the operator drains n1 for maintenance at quantum 3:
//!   tenants evacuate with warning and its control plane shuts down
//!   cleanly.
//!
//! Health gauges (`cuttlesys_node_up`, `cuttlesys_evacuations_total`,
//! `cuttlesys_displaced_tenants`, `cuttlesys_fleet_degraded`) are scraped
//! over plain TCP, exactly as a fleet operator (or the CI smoke job)
//! would.
//!
//! Run with: `cargo run --release --example node_failure -- [crash|blackout|drain]`
//!
//! Exits non-zero when fault tolerance misbehaves: the failure is never
//! detected, nothing evacuates, a tenant vanishes without an event, the
//! scrape is missing health gauges, or the final drain is dirty.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use cluster::{ClusterConfig, ClusterEvent, ClusterScenario, FleetFaultPlan, HealthConfig, NodeId};
use cuttlesys::control::ControlEvent;
use cuttlesys::lifecycle::LifecycleState;
use cuttlesys::types::Scenario;
use service::bus::Received;
use service::cluster::ClusterServiceBuilder;
use workloads::loadgen::LoadPattern;

/// One HTTP GET against the cluster scrape endpoint, body returned.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to metrics endpoint");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: cuttlesys\r\n\r\n").expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_string()
}

const FAULT_QUANTUM: usize = 3;
const BLACKOUT_QUANTA: usize = 4;

fn main() -> ExitCode {
    let profile = std::env::args().nth(1).unwrap_or_else(|| "crash".into());
    let victim = NodeId::from_index(1);

    // Headroom on every node so the survivors can absorb n1's tenants;
    // the flash crowd keeps n0 busy while it happens.
    let base = Scenario::paper_default()
        .with_duration_slices(12)
        .with_cap(LoadPattern::Constant(2.0));
    let mut scenario = ClusterScenario::uniform(&base, 3);
    scenario.nodes[0] = scenario.nodes[0]
        .clone()
        .with_load(LoadPattern::paper_spike());

    let plan = match profile.as_str() {
        "crash" => FleetFaultPlan::none().with_crash(victim, FAULT_QUANTUM),
        "blackout" => FleetFaultPlan::none().with_blackout(victim, FAULT_QUANTUM, BLACKOUT_QUANTA),
        "drain" => FleetFaultPlan::none(), // injected by the operator below
        other => {
            eprintln!("unknown profile `{other}` (want crash, blackout, or drain)");
            return ExitCode::FAILURE;
        }
    };
    let config = ClusterConfig {
        health: HealthConfig {
            down_after: 2,
            recover_after: 2,
            ..HealthConfig::default()
        },
        ..ClusterConfig::default()
    };
    let service = ClusterServiceBuilder::new(&scenario)
        .config(config)
        .faults(plan)
        .metrics_addr("127.0.0.1:0")
        .start()
        .expect("cluster service starts");
    let addr = service.metrics_addr().expect("endpoint bound");
    let mut events = service.subscribe();
    let tenants_per_node = base.num_lc() + base.num_batch();
    println!(
        "cluster up: 3 nodes x {tenants_per_node} tenants, profile `{profile}` on {victim}, \
         metrics on http://{addr}/metrics"
    );

    let mut health_changes = 0usize;
    let mut evacuated = 0usize;
    let mut displaced = 0usize;
    let mut drained_nodes = 0usize;
    let mut retired = 0usize;
    let mut drain = |events: &mut service::bus::Subscriber<ClusterEvent>| {
        while let Ok(Some(got)) = events.try_recv() {
            match got {
                Received::Event(ClusterEvent::NodeHealthChanged { node, from, to, .. }) => {
                    health_changes += 1;
                    println!("  health: {node} {} -> {}", from.name(), to.name());
                }
                Received::Event(ClusterEvent::Evacuated { name, from, to, .. }) => {
                    evacuated += 1;
                    println!("  evacuation: {name} moves {from} -> {to}");
                }
                Received::Event(ClusterEvent::Displaced { name, retry_at, .. }) => {
                    displaced += 1;
                    println!("  displaced: {name} parked, retry at quantum {retry_at}");
                }
                Received::Event(ClusterEvent::NodeDrained { node, .. }) => {
                    drained_nodes += 1;
                    println!("  maintenance: {node} drained");
                }
                Received::Event(ClusterEvent::FleetDegraded { .. }) => {
                    println!("  fleet: degraded mode engaged");
                }
                Received::Event(ClusterEvent::FleetRecovered { .. }) => {
                    println!("  fleet: degraded mode disengaged");
                }
                Received::Event(ClusterEvent::Node(ControlEvent::Lifecycle {
                    to: LifecycleState::Retired,
                    ..
                })) => retired += 1,
                Received::Event(_) => {}
                Received::Lagged(n) => println!("  subscriber lagged by {n} events"),
            }
        }
    };
    for quantum in 0..base.duration_slices {
        if profile == "drain" && quantum == FAULT_QUANTUM {
            service.drain_node(victim).expect("operator drain");
        }
        service.step_quantum().expect("quantum");
        println!("quantum {quantum}:");
        drain(&mut events);
    }

    // Scrape the health gauges, exactly as a fleet operator would.
    let metrics = scrape(addr, "/metrics");
    let expected_health = if profile == "blackout" { "up" } else { "down" };
    let expected_up = if profile == "blackout" { "1" } else { "0" };
    for needle in [
        "cuttlesys_node_up{node=\"n0\",health=\"up\"} 1".to_string(),
        format!("cuttlesys_node_up{{node=\"n1\",health=\"{expected_health}\"}} {expected_up}"),
        "cuttlesys_evacuations_total".to_string(),
        "cuttlesys_displaced_tenants".to_string(),
        "cuttlesys_fleet_degraded".to_string(),
    ] {
        if !metrics.contains(&needle) {
            eprintln!("FAIL: scrape is missing `{needle}`:\n{metrics}");
            return ExitCode::FAILURE;
        }
    }
    let state = scrape(addr, "/state");
    for needle in ["\"node_health\":[", "\"evacuations\":", "\"displaced\":"] {
        if !state.contains(needle) {
            eprintln!("FAIL: /state is missing `{needle}`:\n{state}");
            return ExitCode::FAILURE;
        }
    }
    println!("scraped {} bytes of health-labeled metrics", metrics.len());

    if health_changes == 0 {
        eprintln!("FAIL: the `{profile}` fault was never detected");
        return ExitCode::FAILURE;
    }
    if evacuated == 0 {
        eprintln!("FAIL: nothing was evacuated off {victim}");
        return ExitCode::FAILURE;
    }
    if profile == "drain" && (drained_nodes != 1 || displaced != 0) {
        eprintln!(
            "FAIL: a maintenance drain should announce itself once and displace nothing \
             ({drained_nodes} drains, {displaced} displaced)"
        );
        return ExitCode::FAILURE;
    }

    // Clean fleet drain. A crashed node freezes mid-scenario, so only the
    // other profiles account for all three nodes' tenants; the survivors
    // (plus evacuees) must always retire cleanly.
    let record = service.shutdown().expect("clean fleet drain");
    while let Ok(got) = events.recv() {
        if let Received::Event(ClusterEvent::Node(ControlEvent::Lifecycle {
            to: LifecycleState::Retired,
            ..
        })) = got
        {
            retired += 1;
        }
    }
    println!(
        "run complete: {} lockstep quanta, {health_changes} health transitions, \
         {evacuated} evacuations, {displaced} displacements, {retired} tenants retired",
        record.quanta
    );
    if record.nodes.len() != 3 {
        eprintln!("FAIL: the cluster record is missing nodes");
        return ExitCode::FAILURE;
    }
    let frozen = record.nodes[1].slices.len();
    match profile.as_str() {
        "crash" if frozen != FAULT_QUANTUM => {
            eprintln!(
                "FAIL: a crashed node should freeze at quantum {FAULT_QUANTUM}, got {frozen}"
            );
            return ExitCode::FAILURE;
        }
        "blackout" if frozen != base.duration_slices => {
            eprintln!("FAIL: a blacked-out node should keep stepping, got {frozen} slices");
            return ExitCode::FAILURE;
        }
        "drain" if frozen != FAULT_QUANTUM => {
            eprintln!("FAIL: a drained node should stop at quantum {FAULT_QUANTUM}, got {frozen}");
            return ExitCode::FAILURE;
        }
        _ => {}
    }
    let min_retired = match profile.as_str() {
        "crash" => 2 * tenants_per_node,
        _ => 3 * tenants_per_node,
    };
    if retired < min_retired {
        eprintln!("FAIL: drain left tenants unretired ({retired} < {min_retired})");
        return ExitCode::FAILURE;
    }
    println!("clean fleet drain confirmed; cluster down");
    ExitCode::SUCCESS
}
