//! Power-cap study: how much batch work survives as the cap tightens from
//! 90 % to 50 % of nominal, for an ML-inference service (ImgDNN-like)
//! colocation.
//!
//! Mirrors Fig. 5(c) for a single colocation: CuttleSys degrades gracefully
//! because it can shave partial cores instead of turning whole ones off.
//!
//! Run with: `cargo run --release --example power_cap_study`

use baselines::gating::GatingOrder;
use cuttlesys::managers::CoreGatingManager;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;
use workloads::latency;
use workloads::loadgen::LoadPattern;

fn main() {
    println!("imgdnn @ 80% load + 16 SPEC jobs, batch instructions (1e9) by cap:\n");
    println!("  cap   core-gating   cuttlesys   advantage");
    for cap in [0.9, 0.8, 0.7, 0.6, 0.5] {
        let scenario = Scenario::paper_default()
            .with_cap(LoadPattern::Constant(cap))
            .with_service(latency::service_by_name("imgdnn").expect("imgdnn exists"));
        let fixed = Scenario {
            kind: CoreKind::Fixed,
            ..scenario.clone()
        };
        let gating = {
            let mut m = CoreGatingManager::new(&fixed, GatingOrder::DescendingPower, true);
            run_scenario(&fixed, &mut m)
        };
        let cuttle = {
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        };
        let (g, c) = (gating.batch_instructions(), cuttle.batch_instructions());
        println!(
            "  {:>3.0}%  {:>11.2}  {:>10.2}   {:>6.2}x",
            cap * 100.0,
            g / 1e9,
            c / 1e9,
            c / g.max(1.0)
        );
    }
}
