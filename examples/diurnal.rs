//! Diurnal load following: an in-memory key-value store (Masstree-like)
//! rides a 20 %→100 %→20 % load wave while CuttleSys reshapes its cores —
//! wide when traffic peaks, narrow (cheap) when it ebbs — handing the freed
//! Watts to the batch jobs.
//!
//! Run with: `cargo run --release --example diurnal`

use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use workloads::latency;
use workloads::loadgen::LoadPattern;

fn main() {
    let scenario = Scenario::paper_default()
        .with_cap(LoadPattern::Constant(0.7))
        .with_duration_slices(10)
        .with_service(latency::service_by_name("masstree").expect("masstree exists"))
        .with_load(LoadPattern::paper_diurnal());
    let qos_ms = scenario.primary_lc().qos_ms;
    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);

    println!("masstree under a diurnal load wave, 70% power cap:\n");
    println!(" t(s)  load   LC config      tail/QoS  batch gmean");
    for slice in &record.slices {
        let bar = "#".repeat((slice.load() * 20.0) as usize);
        println!(
            " {:>4.1}  {:<20} {:<12}  {:>5.2}     {:.2} BIPS",
            slice.t_s,
            format!("{:>3.0}% {bar}", slice.load() * 100.0),
            slice.lc_config().to_string(),
            slice.tail_ms() / qos_ms,
            slice.batch_gmean_bips,
        );
    }
    println!(
        "\nQoS violations: {}/{} — the service stays under its {} ms target \
         while its cores shrink at low load.",
        record.qos_violations(),
        record.slices.len(),
        qos_ms,
    );
}
