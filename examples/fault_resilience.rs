//! Fault resilience demo: run the paper's standard co-location under a
//! seeded fault-injection profile and watch the degradation ladder work —
//! rejected samples, last-good fallbacks, and (under sustained failure)
//! safe-mode quanta, all without a single panic.
//!
//! Run with: `cargo run --release --example fault_resilience -- [profile]`
//! where `profile` is `clean`, `lossy-sensors` (default) or
//! `flaky-reconfig`. Exits non-zero if a faulty profile leaves no trace in
//! the degradation telemetry (which would mean the hooks are dead).

use std::process::ExitCode;

use cuttlesys::faults::FaultPlan;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;

fn main() -> ExitCode {
    let profile = std::env::args().nth(1).unwrap_or("lossy-sensors".into());
    let Some(plan) = FaultPlan::named(&profile, 7) else {
        eprintln!("unknown profile {profile} (use clean|lossy-sensors|flaky-reconfig)");
        return ExitCode::FAILURE;
    };
    let scenario = Scenario::paper_default().with_faults(plan);
    println!(
        "profile: {profile}; service: {} (QoS {} ms), {} slices",
        scenario.primary_lc().service.name,
        scenario.primary_lc().qos_ms,
        scenario.duration_slices,
    );

    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);

    println!("\n t(s)  tail(ms)   QoS?   chip(W)  injected         degradation");
    for slice in &record.slices {
        let injected = slice.fault.map_or("-".to_string(), |f| {
            let mut parts = Vec::new();
            if f.samples_dropped > 0 {
                parts.push(format!("drop:{}", f.samples_dropped));
            }
            if f.samples_corrupted > 0 {
                parts.push(format!("corrupt:{}", f.samples_corrupted));
            }
            if f.power_blackout {
                parts.push("blackout".into());
            }
            if f.reconfig_failed {
                parts.push("stuck".into());
            }
            if parts.is_empty() {
                "-".into()
            } else {
                parts.join(",")
            }
        });
        let degradation = slice.telemetry.as_ref().map_or("-".into(), |t| {
            let d = &t.degradation;
            let mut parts = Vec::new();
            if d.samples_rejected > 0 {
                parts.push(format!("rejected:{}", d.samples_rejected));
            }
            if d.sample_retries > 0 {
                parts.push(format!("retry:{}", d.sample_retries));
            }
            if d.reconstruct_fallback {
                parts.push(format!("fallback(age {})", d.stale_age));
            }
            if d.replayed_last_good {
                parts.push("replayed".into());
            }
            if d.safe_mode {
                parts.push("SAFE-MODE".into());
            }
            if let Some(stage) = d.failed_stage {
                parts.push(format!("failed:{stage}"));
            }
            if parts.is_empty() {
                "-".into()
            } else {
                parts.join(",")
            }
        });
        println!(
            " {:>4.1}  {:>8.2}   {}   {:>7.1}  {:<15}  {}",
            slice.t_s,
            slice.tail_ms(),
            if slice.qos_violation() {
                "VIOL"
            } else {
                " ok "
            },
            slice.chip_watts,
            injected,
            degradation,
        );
    }

    let summary = record.stage_summary().expect("cuttlesys reports telemetry");
    let (opens, closes) = manager.breaker_cycles();
    println!(
        "\nsamples rejected: {}; retries: {}; fallbacks: {}; last-good replays: {}; \
         safe-mode quanta: {}; breaker opens/closes: {opens}/{closes}",
        summary.samples_rejected,
        summary.sample_retries,
        summary.reconstruct_fallbacks,
        summary.last_good_replays,
        summary.safe_mode_quanta,
    );
    println!(
        "QoS violations: {}/{}; worst tail/QoS ratio: {:.2}",
        record.qos_violations(),
        record.slices.len(),
        record.worst_tail_ratio(),
    );

    // A faulty profile that leaves no trace at all means the injection
    // hooks went dead — fail loudly so CI catches it. Environment faults
    // (drops, blackouts, stuck reconfigs) show up in the slice records;
    // manager-internal ones (stalls, diverged reconstructions) only in the
    // degradation telemetry.
    let traced = record.injected_fault_slices() > 0
        || summary.samples_rejected > 0
        || summary.reconstruct_fallbacks > 0
        || summary.last_good_replays > 0
        || summary.safe_mode_quanta > 0;
    if profile != "clean" && !traced {
        eprintln!("fault profile {profile} left no degradation telemetry");
        return ExitCode::FAILURE;
    }
    if profile == "clean" && record.degraded_quanta() > 0 {
        eprintln!("clean profile unexpectedly degraded");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
