//! Control-plane demo: the manager as a long-lived service.
//!
//! Starts the CuttleSys control plane over the paper-default co-location,
//! registers two batch tenants *live* (through admission control), kills
//! one mid-run, and scrapes the Prometheus-style metrics endpoint over
//! plain TCP while the run is in flight — the workflow an operator (or the
//! CI smoke job) exercises against a real deployment.
//!
//! Run with: `cargo run --release --example control_plane -- [profile]`
//! where `profile` is `clean` (default), `lossy-sensors`, or
//! `flaky-reconfig` — the same seeded fault profiles as the
//! `fault_resilience` example, so the degradation ladder shows up in the
//! scraped gauges.
//!
//! Exits non-zero when the control plane misbehaves: a registration that
//! should be admitted is rejected, the scrape is missing the degradation
//! gauge (or, under a faulty profile, the gauge never moves), the killed
//! tenant fails to retire, or the final drain leaves a tenant holding
//! resources.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use cuttlesys::control::ControlEvent;
use cuttlesys::faults::FaultPlan;
use cuttlesys::lifecycle::LifecycleState;
use cuttlesys::types::Scenario;
use service::bus::Received;
use service::ServiceBuilder;
use workloads::batch;
use workloads::loadgen::LoadPattern;

/// One HTTP GET against the service's scrape endpoint, body returned.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to metrics endpoint");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: cuttlesys\r\n\r\n").expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_string()
}

/// Extracts an unlabelled sample value (`name value`) from a scrape body.
fn sample_value(body: &str, name: &str) -> Option<f64> {
    let prefix = format!("{name} ");
    body.lines()
        .find(|line| line.starts_with(&prefix))
        .and_then(|line| line[prefix.len()..].trim().parse().ok())
}

fn main() -> ExitCode {
    let profile = std::env::args().nth(1).unwrap_or("clean".into());
    let Some(plan) = FaultPlan::named(&profile, 7) else {
        eprintln!("unknown profile {profile} (use clean|lossy-sensors|flaky-reconfig)");
        return ExitCode::FAILURE;
    };
    let mut scenario = Scenario::paper_default().with_faults(plan);
    // Leave steady-state headroom so admission control can say yes to the
    // two runtime registrations below (the demo is churn, not starvation).
    scenario.cap = LoadPattern::Constant(2.0);

    let service = ServiceBuilder::new(&scenario)
        .metrics_addr("127.0.0.1:0")
        .start()
        .expect("service starts");
    let addr = service.metrics_addr().expect("endpoint bound");
    let mut events = service.subscribe();
    println!(
        "control plane up: profile {profile}, {} declared tenants, metrics on http://{addr}/metrics",
        scenario.num_lc() + scenario.num_batch()
    );

    // Two live registrations, straight through admission control.
    let newcomers = batch::mix(2, 0xC0FFEE).apps;
    let first = match service.register_batch("newcomer-a", newcomers[0]) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("FAIL: newcomer-a should be admitted under the loose cap: {e}");
            return ExitCode::FAILURE;
        }
    };
    let second = match service.register_batch("newcomer-b", newcomers[1]) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("FAIL: newcomer-b should be admitted under the loose cap: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("admitted newcomer-a as {first}, newcomer-b as {second}");

    // Run the horizon; kill one newcomer halfway through.
    let kill_at = scenario.duration_slices / 2;
    for slice in 0..scenario.duration_slices {
        if slice == kill_at {
            service.deregister(first).expect("drain accepted");
            println!("slice {slice}: killed {first} (drains at the boundary)");
        }
        service.step_quantum().expect("quantum");
    }

    // Mid-flight scrape, exactly as an operator would.
    let metrics = scrape(addr, "/metrics");
    let state = scrape(addr, "/state");
    let quanta = sample_value(&metrics, "cuttlesys_quanta_total").unwrap_or(0.0);
    let Some(degraded) = sample_value(&metrics, "cuttlesys_degraded_quanta_total") else {
        eprintln!("FAIL: scrape is missing the degradation gauge:\n{metrics}");
        return ExitCode::FAILURE;
    };
    let rejected = sample_value(&metrics, "cuttlesys_samples_rejected_total").unwrap_or(0.0);
    let retries = sample_value(&metrics, "cuttlesys_sample_retries_total").unwrap_or(0.0);
    println!(
        "scraped {} bytes of metrics: {quanta} quanta, {degraded} degraded, \
         {rejected} samples rejected, {retries} retries",
        metrics.len()
    );
    // The ladder's first rungs (rejection, retry) always fire under a
    // faulty profile; full quantum degradation only under sustained loss.
    if profile != "clean" && degraded + rejected + retries == 0.0 {
        eprintln!("FAIL: profile {profile} left no trace in the degradation gauges");
        return ExitCode::FAILURE;
    }
    if !state.contains("\"name\":\"newcomer-a\"") {
        eprintln!("FAIL: /state does not list the live-registered tenant:\n{state}");
        return ExitCode::FAILURE;
    }

    // The killed tenant must have drained and retired by now.
    let snapshot = service.snapshot().expect("snapshot");
    let killed = &snapshot.tenants[first.index()];
    if killed.state != LifecycleState::Retired {
        eprintln!("FAIL: killed tenant is {:?}, not retired", killed.state);
        return ExitCode::FAILURE;
    }

    // Clean drain: shutdown retires everyone and returns the run record.
    let record = service.shutdown().expect("clean drain");
    let mut transitions = 0usize;
    let mut retired = 0usize;
    while let Ok(got) = events.recv() {
        match got {
            Received::Event(ControlEvent::Lifecycle { to, .. }) => {
                transitions += 1;
                if to == LifecycleState::Retired {
                    retired += 1;
                }
            }
            Received::Event(_) => {}
            Received::Lagged(n) => println!("subscriber lagged by {n} events"),
        }
    }
    println!(
        "run complete: {} slices, {} QoS violations, {transitions} lifecycle transitions, \
         {retired} tenants retired",
        record.slices.len(),
        record.qos_violations()
    );
    if retired < scenario.num_lc() + scenario.num_batch() {
        eprintln!("FAIL: drain left tenants unretired ({retired})");
        return ExitCode::FAILURE;
    }
    println!("clean drain confirmed; control plane down");
    ExitCode::SUCCESS
}
