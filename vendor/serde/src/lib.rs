//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its record and config
//! types so downstream tooling *could* serialize them, but nothing in-tree
//! performs serialization. With crates.io unreachable from the build
//! container, this crate keeps those derives compiling: the traits are
//! blanket-implemented markers and the derive macros (re-exported from the
//! vendored `serde_derive`) expand to nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types (the lifetime parameter mirrors the real trait's signature).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use super::DeserializeOwned;
}
