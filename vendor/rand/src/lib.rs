//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! this vendored crate provides the (small) API surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over half-open `usize`/`f64` ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, statistically solid for simulation workloads, and with no
//! promise of cross-version stream stability beyond this repository.

use std::ops::Range;

/// Types that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-sampling interface the workspace consumes.
pub trait RngExt {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

impl<R: RngExt + ?Sized> RngExt for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Value types [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange: Sized + PartialOrd {
    /// Draws a uniform sample from `range` (half-open).
    fn sample<R: RngExt + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for usize {
    fn sample<R: RngExt + ?Sized>(rng: &mut R, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift bounded sampling (Lemire); the rejection loop keeps
        // the distribution exactly uniform.
        let zone = u64::MAX - u64::MAX.wrapping_rem(span);
        loop {
            let v = rng.next_u64();
            if v < zone || zone == 0 {
                return range.start + (v % span) as usize;
            }
        }
    }
}

impl SampleRange for f64 {
    fn sample<R: RngExt + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample an empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + unit * (range.end - range.start);
        // Floating-point rounding can land exactly on `end`; fold back.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn usize_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 7 buckets");
    }

    #[test]
    fn f64_ranges_stay_in_bounds_and_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn tiny_positive_lower_bound_is_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5);
    }
}
