//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion's API the workspace's benches use —
//! `Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples measurement loop. Statistical machinery (outlier
//! classification, regression reports) is intentionally absent; the numbers
//! printed are wall-clock medians, which is all the repo's Table II-style
//! comparisons need.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs the timed closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_count` samples of batched runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration pass: size batches so one sample costs ~10 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// Identifies a parameterized benchmark, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

fn run_one(label: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let (lo, hi) = (
        b.samples.first().copied().unwrap_or_default(),
        b.samples.last().copied().unwrap_or_default(),
    );
    println!("{label:<40} time: [{lo:>10.2?} {median:>10.2?} {hi:>10.2?}]");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Benchmarks a closure under `id` within the group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id), self.sample_count, f);
    }

    /// Benchmarks a closure with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.sample_count,
            |b| f(b, input),
        );
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(&mut self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_count: usize,
}

impl Criterion {
    fn samples(&self) -> usize {
        if self.sample_count == 0 {
            20
        } else {
            self.sample_count
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(id, self.samples(), f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.samples();
        BenchmarkGroup {
            name: name.into(),
            sample_count,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
