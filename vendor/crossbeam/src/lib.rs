//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::scope` for structured fork-join
//! parallelism (parallel DDS threads, Hogwild SGD workers, the three-matrix
//! reconstruction driver). `std::thread::scope` has provided the same
//! guarantee — borrowing non-`'static` data across spawned threads — since
//! Rust 1.63, so this crate is a thin signature adapter over it.

use std::any::Any;

/// A scope handle mirroring `crossbeam::thread::Scope`: spawn closures
/// receive a scope reference (which this workspace ignores as `|_|`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a scoped thread, mirroring `crossbeam`'s `ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (so nested
    /// spawns remain possible) exactly as in `crossbeam`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope for spawning borrowing threads, mirroring
/// `crossbeam::scope`. All spawned threads are joined before this returns.
///
/// Unlike `crossbeam`, an unjoined panicking child propagates its panic when
/// the scope closes instead of surfacing through the `Err` variant; every
/// call site in this workspace joins explicitly, so the difference is
/// unobservable here.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawns_work() {
        let n = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
