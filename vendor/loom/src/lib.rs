//! Offline stand-in for the `loom` model checker.
//!
//! Real loom replaces the `std` synchronization primitives with
//! instrumented versions and *exhaustively* explores thread interleavings
//! under a C11-memory-model simulator. That crate cannot be vendored in a
//! useful form (its value is the instrumented runtime), and the build
//! container has no crates.io access — so this stand-in keeps the loom
//! *API surface* the model tests are written against and substitutes
//! bounded randomized stress for exhaustive exploration:
//!
//! * `loom::model(f)` runs `f` repeatedly ([`DEFAULT_ITERS`] times, or
//!   `LOOM_ITERS` from the environment), seeding a per-iteration
//!   scheduling perturbation;
//! * `loom::thread::spawn`/`yield_now` map to `std::thread`, with
//!   [`thread::maybe_yield`] hooks that the per-iteration seed drives to
//!   shuffle interleavings between runs;
//! * `loom::sync::*` re-exports the `std` primitives.
//!
//! The model tests (`#![cfg(loom)]` in util/dds/core) therefore exercise
//! the *production* types under many distinct interleavings rather than a
//! mathematically exhaustive set. When the real loom is available, point
//! the workspace `loom` dependency at crates.io and the same tests upgrade
//! to exhaustive checking unchanged — that is the reason this crate copies
//! loom's module layout instead of exposing a bespoke stress API.

use std::sync::atomic::{AtomicU64, Ordering};

/// Iterations per `model()` call when `LOOM_ITERS` is unset.
pub const DEFAULT_ITERS: usize = 256;

static MODEL_ITERATION: AtomicU64 = AtomicU64::new(0);

/// Runs `f` under the (bounded, randomized) model. Mirrors `loom::model`.
///
/// Panics propagate out of the failing iteration immediately, so a failure
/// reports on the first interleaving that exhibits it.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        MODEL_ITERATION.store(i as u64, Ordering::Relaxed);
        f();
    }
}

pub mod thread {
    //! `loom::thread` — std threads plus a seeded perturbation hook.

    use std::sync::atomic::{AtomicU64, Ordering};
    pub use std::thread::{current, park, sleep, JoinHandle};

    static PERTURB: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

    /// Spawns a thread, injecting one perturbation point at startup so the
    /// spawn/run interleaving differs across model iterations.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            maybe_yield();
            f()
        })
    }

    /// Mirrors `loom::thread::yield_now`: a schedule point. The stand-in
    /// yields to the OS scheduler.
    pub fn yield_now() {
        std::thread::yield_now();
    }

    /// A cheap seeded coin: yields on roughly half the calls, with the
    /// sequence differing run to run, to shake out interleavings.
    pub fn maybe_yield() {
        // splitmix64 step over a process-global counter.
        let mut z = PERTURB.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if (z ^ (z >> 31)).is_multiple_of(2) {
            std::thread::yield_now();
        }
    }
}

pub mod sync {
    //! `loom::sync` — the std primitives, un-instrumented.

    pub use std::sync::{
        Arc, Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

pub mod hint {
    //! `loom::hint` — spin-loop hints.
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_the_closure_the_configured_number_of_times() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        super::model(|| {
            RUNS.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(RUNS.load(Ordering::Relaxed), super::DEFAULT_ITERS);
    }

    #[test]
    fn spawned_threads_join_with_their_value() {
        let h = super::thread::spawn(|| 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
    }
}
