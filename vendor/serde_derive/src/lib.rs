//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate's `Serialize`/`Deserialize` traits carry
//! blanket implementations, so the derives here only need to accept the
//! attribute syntax and emit nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the vendored trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the vendored trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
