//! Analytic per-core performance model.
//!
//! Performance is modelled as a CPI stack in the style of interval analysis:
//! a base component set by the application's inherent ILP, one penalty term
//! per narrowed core section, and a memory component driven by the LLC miss
//! curve, DRAM latency, memory-level parallelism, and chip-wide bandwidth
//! contention. The constants are calibrated so the qualitative behaviour of
//! the paper's Fig. 1 holds: narrowing the section an application is
//! sensitive to collapses its throughput, other sections barely matter, and
//! extra LLC ways help exactly the jobs whose working set does not yet fit.

use serde::{Deserialize, Serialize};

use crate::config::{CacheAlloc, CoreConfig, JobConfig, SectionWidth};
use crate::metrics::Bips;
use crate::params::SystemParams;
use crate::profile::AppProfile;

/// Calibration constants of the CPI stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfCalibration {
    /// Scale of the front-end narrowing penalty.
    pub k_fe: f64,
    /// Scale of the back-end narrowing penalty.
    pub k_be: f64,
    /// Scale of the load/store narrowing penalty.
    pub k_ls: f64,
    /// Exponent with which the load/store queue width scales effective MLP.
    pub ls_mlp_exponent: f64,
    /// Fraction of LLC hit latency that out-of-order execution cannot hide.
    pub llc_exposed_fraction: f64,
}

impl Default for PerfCalibration {
    fn default() -> Self {
        PerfCalibration {
            k_fe: 0.24,
            k_be: 0.28,
            k_ls: 0.20,
            ls_mlp_exponent: 0.7,
            llc_exposed_fraction: 0.35,
        }
    }
}

/// The analytic performance model for one chip.
///
/// The model is pure: every query is a function of the application profile,
/// the configuration, and the supplied contention factor, so it can be used
/// both by the chip simulator (ground truth) and by oracle baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    params: SystemParams,
    cal: PerfCalibration,
}

impl PerfModel {
    /// Creates a model with default calibration.
    pub fn new(params: SystemParams) -> PerfModel {
        PerfModel {
            cal: PerfCalibration::default(),
            params,
        }
    }

    /// Creates a model with explicit calibration constants.
    pub fn with_calibration(params: SystemParams, cal: PerfCalibration) -> PerfModel {
        PerfModel { params, cal }
    }

    /// The system parameters this model was built with.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Penalty CPI contributed by narrowing one section from six-wide.
    ///
    /// Zero at six-wide; convex in the narrowing (`6/lanes − 1` is 0.5 at
    /// four-wide and 2.0 at two-wide), scaled by the application's
    /// sensitivity to that section.
    fn section_penalty(scale: f64, sensitivity: f64, width: SectionWidth) -> f64 {
        let narrowing = 6.0 / f64::from(width.lanes()) - 1.0;
        scale * sensitivity * narrowing
    }

    /// Memory CPI: exposed LLC hit latency plus DRAM misses amortized over
    /// the effective memory-level parallelism, inflated by bandwidth
    /// contention.
    fn memory_cpi(&self, app: &AppProfile, ls: SectionWidth, ways: f64, contention: f64) -> f64 {
        let apki = app.llc_accesses_per_instr();
        let miss = app.llc_miss_rate(ways);
        // A narrower load/store queue tracks fewer outstanding misses, so it
        // degrades the MLP the application can exploit — in proportion to how
        // much the application leans on the LS queue in the first place.
        let mlp_exponent = self.cal.ls_mlp_exponent * app.ls_sensitivity;
        let mlp_eff = (app.mlp * ls.fraction().powf(mlp_exponent)).max(1.0);
        let hit_cycles = self.params.llc_latency_cycles * self.cal.llc_exposed_fraction;
        let dram_cycles = self.params.dram_latency_cycles * (1.0 + contention.max(0.0));
        apki * ((1.0 - miss) * hit_cycles + miss * dram_cycles / mlp_eff)
    }

    /// Instructions per cycle for `app` on `config` with `ways` LLC ways and
    /// the given memory contention factor (0 = uncontended).
    ///
    /// The result is frequency-independent; combine with
    /// [`PerfModel::bips`] / [`PerfModel::bips_fixed`] for throughput.
    pub fn ipc(&self, app: &AppProfile, config: CoreConfig, ways: f64, contention: f64) -> f64 {
        let cpi = 1.0 / app.ilp
            + Self::section_penalty(self.cal.k_fe, app.fe_sensitivity, config.fe)
            + Self::section_penalty(self.cal.k_be, app.be_sensitivity, config.be)
            + Self::section_penalty(
                self.cal.k_ls,
                app.ls_sensitivity * (app.mem_fraction / 0.3),
                config.ls,
            )
            + self.memory_cpi(app, config.ls, ways, contention);
        let ipc = 1.0 / cpi;
        // Hard structural caps: the core cannot retire more micro-ops per
        // cycle than the narrowest of its fetch and issue widths.
        ipc.min(f64::from(config.fe.lanes()))
            .min(f64::from(config.be.lanes()))
    }

    /// Throughput on a *reconfigurable* core (pays the AnyCore frequency
    /// penalty), in BIPS.
    pub fn bips(
        &self,
        app: &AppProfile,
        config: CoreConfig,
        cache: CacheAlloc,
        contention: f64,
    ) -> Bips {
        let ipc = self.ipc(app, config, cache.ways(), contention);
        Bips::new(ipc * self.params.reconfig_frequency_ghz())
    }

    /// Throughput on a *fixed* (non-reconfigurable) core at nominal
    /// frequency, in BIPS. Used by the core-gating and asymmetric-multicore
    /// baselines, whose cores are conventional.
    pub fn bips_fixed(
        &self,
        app: &AppProfile,
        config: CoreConfig,
        cache: CacheAlloc,
        contention: f64,
    ) -> Bips {
        let ipc = self.ipc(app, config, cache.ways(), contention);
        Bips::new(ipc * self.params.frequency_ghz)
    }

    /// Convenience wrapper over [`PerfModel::bips`] taking a [`JobConfig`].
    pub fn bips_job(&self, app: &AppProfile, config: JobConfig, contention: f64) -> Bips {
        self.bips(app, config.core, config.cache, contention)
    }

    /// Off-chip traffic generated by `app` at the given throughput, in
    /// giga-accesses per second. Input to the bandwidth contention model.
    pub fn dram_traffic_gaps(&self, app: &AppProfile, bips: Bips, ways: f64) -> f64 {
        bips.get() * app.llc_accesses_per_instr() * app.llc_miss_rate(ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheAlloc, CoreConfig, SectionWidth};

    fn model() -> PerfModel {
        PerfModel::new(SystemParams::default())
    }

    #[test]
    fn widest_config_beats_narrowest_for_everyone() {
        let m = model();
        for app in [
            AppProfile::balanced(),
            AppProfile::compute_bound(),
            AppProfile::memory_bound(),
        ] {
            let hi = m.ipc(&app, CoreConfig::widest(), 4.0, 0.0);
            let lo = m.ipc(&app, CoreConfig::narrowest(), 4.0, 0.0);
            assert!(hi > lo, "widest must dominate narrowest");
        }
    }

    #[test]
    fn ipc_monotone_in_each_section() {
        let m = model();
        let app = AppProfile::balanced();
        for base in CoreConfig::all() {
            for section_idx in 0..3 {
                for w in 0..2 {
                    let mut lo_w = [base.fe, base.be, base.ls];
                    lo_w[section_idx] = SectionWidth::from_index(w);
                    let mut hi_w = lo_w;
                    hi_w[section_idx] = SectionWidth::from_index(w + 1);
                    let lo = m.ipc(&app, CoreConfig::new(lo_w[0], lo_w[1], lo_w[2]), 2.0, 0.0);
                    let hi = m.ipc(&app, CoreConfig::new(hi_w[0], hi_w[1], hi_w[2]), 2.0, 0.0);
                    assert!(hi >= lo - 1e-12);
                }
            }
        }
    }

    #[test]
    fn ipc_monotone_in_cache_ways() {
        let m = model();
        let app = AppProfile::memory_bound();
        let c = CoreConfig::widest();
        let mut prev = 0.0;
        for alloc in CacheAlloc::ALL {
            let ipc = m.ipc(&app, c, alloc.ways(), 0.0);
            assert!(ipc >= prev);
            prev = ipc;
        }
    }

    #[test]
    fn contention_hurts_memory_bound_more() {
        let m = model();
        let mem = AppProfile::memory_bound();
        let cpu = AppProfile::compute_bound();
        let c = CoreConfig::widest();
        let mem_drop = m.ipc(&mem, c, 2.0, 0.0) / m.ipc(&mem, c, 2.0, 2.0);
        let cpu_drop = m.ipc(&cpu, c, 2.0, 0.0) / m.ipc(&cpu, c, 2.0, 2.0);
        assert!(mem_drop > cpu_drop);
    }

    #[test]
    fn ipc_respects_structural_width_cap() {
        let m = model();
        let mut app = AppProfile::compute_bound();
        app.fe_sensitivity = 0.0;
        app.be_sensitivity = 0.0;
        app.ls_sensitivity = 0.0;
        let narrow = CoreConfig::new(SectionWidth::Two, SectionWidth::Two, SectionWidth::Six);
        assert!(m.ipc(&app, narrow, 4.0, 0.0) <= 2.0 + 1e-12);
    }

    #[test]
    fn reconfigurable_cores_pay_frequency_tax() {
        let m = model();
        let app = AppProfile::balanced();
        let r = m.bips(&app, CoreConfig::widest(), CacheAlloc::Four, 0.0);
        let f = m.bips_fixed(&app, CoreConfig::widest(), CacheAlloc::Four, 0.0);
        let ratio = r / f;
        assert!((ratio - (1.0 - 0.0167)).abs() < 1e-9);
    }

    #[test]
    fn ls_width_matters_most_for_memory_bound() {
        // Mirrors the Fig. 1 observation for Xapian: a memory-bound service
        // loses more from LS narrowing than from FE narrowing.
        let m = model();
        let app = AppProfile::memory_bound();
        let full = m.ipc(&app, CoreConfig::widest(), 4.0, 0.0);
        let ls2 = m.ipc(
            &app,
            CoreConfig::new(SectionWidth::Six, SectionWidth::Six, SectionWidth::Two),
            4.0,
            0.0,
        );
        let fe2 = m.ipc(
            &app,
            CoreConfig::new(SectionWidth::Two, SectionWidth::Six, SectionWidth::Six),
            4.0,
            0.0,
        );
        assert!(full - ls2 > full - fe2);
    }

    #[test]
    fn dram_traffic_decreases_with_ways() {
        let m = model();
        let app = AppProfile::memory_bound();
        let b = Bips::new(2.0);
        assert!(m.dram_traffic_gaps(&app, b, 0.5) > m.dram_traffic_gaps(&app, b, 4.0));
    }
}
