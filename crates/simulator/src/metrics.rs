//! Measurement newtypes.
//!
//! The three quantities CuttleSys reasons about — throughput in billions of
//! instructions per second, power in Watts, and (tail) latency in
//! milliseconds — are kept statically distinct so a power column can never be
//! fed into a throughput objective by accident.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! metric_newtype {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize,
        )]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN — measurements are totally ordered.
            pub fn new(value: f64) -> $name {
                assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                $name(value)
            }

            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value.
            pub fn get(self) -> f64 {
                self.0
            }

            /// Larger of two measurements.
            pub fn max(self, other: $name) -> $name {
                if self.0 >= other.0 { self } else { other }
            }

            /// Smaller of two measurements.
            pub fn min(self, other: $name) -> $name {
                if self.0 <= other.0 { self } else { other }
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two measurements is a dimensionless `f64`.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, |a, b| a + b)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

metric_newtype!(
    /// Throughput in billions of instructions per second.
    Bips,
    "BIPS"
);
metric_newtype!(
    /// Power in Watts.
    Watts,
    "W"
);
metric_newtype!(
    /// Latency in milliseconds.
    Millis,
    "ms"
);

/// Geometric mean of a slice of throughputs, the paper's batch objective
/// (Eq. 1).
///
/// Returns [`Bips::ZERO`] for an empty slice and propagates zeros (a single
/// zero-throughput job zeroes the geo-mean, which is why gated jobs are
/// compared via total instructions instead, §VII-B).
pub fn geometric_mean(values: &[Bips]) -> Bips {
    if values.is_empty() {
        return Bips::ZERO;
    }
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            let x = v.get();
            if x <= 0.0 {
                f64::NEG_INFINITY
            } else {
                x.ln()
            }
        })
        .sum();
    if log_sum.is_infinite() {
        return Bips::ZERO;
    }
    Bips::new((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_works() {
        let a = Bips::new(2.0);
        let b = Bips::new(3.0);
        assert_eq!((a + b).get(), 5.0);
        assert_eq!((b - a).get(), 1.0);
        assert_eq!((a * 2.0).get(), 4.0);
        assert_eq!((b / 2.0).get(), 1.5);
        assert_eq!(b / a, 1.5);
    }

    #[test]
    fn sum_and_ordering() {
        let v = vec![Watts::new(1.0), Watts::new(2.5)];
        let total: Watts = v.into_iter().sum();
        assert_eq!(total.get(), 3.5);
        assert_eq!(Watts::new(1.0).max(Watts::new(2.0)).get(), 2.0);
        assert_eq!(Watts::new(1.0).min(Watts::new(2.0)).get(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn nan_rejected() {
        let _ = Millis::new(f64::NAN);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Watts::new(1.5).to_string(), "1.500 W");
        assert_eq!(Bips::new(2.0).to_string(), "2.000 BIPS");
        assert_eq!(Millis::new(0.25).to_string(), "0.250 ms");
    }

    #[test]
    fn geometric_mean_basics() {
        let g = geometric_mean(&[Bips::new(1.0), Bips::new(4.0)]);
        assert!((g.get() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]).get(), 0.0);
        assert_eq!(geometric_mean(&[Bips::new(0.0), Bips::new(5.0)]).get(), 0.0);
    }

    #[test]
    fn geometric_mean_is_scale_equivariant() {
        let base = [Bips::new(0.7), Bips::new(2.2), Bips::new(3.1)];
        let scaled: Vec<Bips> = base.iter().map(|b| *b * 3.0).collect();
        let g1 = geometric_mean(&base).get();
        let g2 = geometric_mean(&scaled).get();
        assert!((g2 / g1 - 3.0).abs() < 1e-9);
    }
}
