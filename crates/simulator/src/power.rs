//! Analytic per-core and chip power model (the McPAT v1.3 stand-in).
//!
//! Each pipeline section contributes dynamic power — superlinear in its
//! active width and proportional to switching activity — and leakage power,
//! mostly proportional to the non-gated area. Reconfigurable cores pay the
//! AnyCore 18 % energy-per-cycle tax relative to fixed cores (§VII), which is
//! exactly why CuttleSys loses to fixed-core designs at the relaxed 90 %
//! power cap and wins below it. Gated cores (C6) draw a small residual.

use serde::{Deserialize, Serialize};

use crate::config::{CacheAlloc, CoreConfig, Section, SectionWidth};
use crate::metrics::{Bips, Watts};
use crate::params::SystemParams;
use crate::profile::AppProfile;

/// Whether cores on the chip are reconfigurable (pay the AnyCore overheads)
/// or conventional fixed cores (baseline designs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// Section-gated reconfigurable core: +18 % energy, −1.67 % frequency.
    Reconfigurable,
    /// Conventional fixed core, as in the gating and asymmetric baselines.
    Fixed,
}

/// Calibration constants of the power model, in Watts at 22 nm / 4 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCalibration {
    /// Peak dynamic power of each six-wide section at activity 1.0:
    /// `[FE, BE, LS]`.
    pub section_dynamic: [f64; 3],
    /// Leakage power of each fully powered six-wide section: `[FE, BE, LS]`.
    pub section_leakage: [f64; 3],
    /// Dynamic power of per-core structures that never scale (L1 caches,
    /// TLBs, clocking).
    pub uncore_dynamic: f64,
    /// Leakage of the non-scalable per-core structures.
    pub uncore_leakage: f64,
    /// Exponent of dynamic power in section width. Multi-ported register
    /// files, wakeup/select logic, and bypass networks grow super-linearly
    /// (toward quadratically) in issue width — the physical basis of
    /// Flicker-style adaptation, where narrowing an unneeded section saves
    /// far more power than performance.
    pub width_exponent: f64,
    /// Fraction of a section's leakage that survives gating (always-on
    /// control and retention).
    pub leakage_floor: f64,
    /// Leakage per allocated LLC way, in Watts.
    pub llc_way_leakage: f64,
    /// Dynamic LLC energy per giga-access per second of traffic, in Watts.
    pub llc_dynamic_per_gaps: f64,
    /// Fraction of peak activity drawn when a section is stalled.
    pub idle_activity: f64,
}

impl Default for PowerCalibration {
    fn default() -> Self {
        PowerCalibration {
            section_dynamic: [1.4, 1.9, 1.0],
            section_leakage: [0.30, 0.40, 0.22],
            uncore_dynamic: 0.40,
            uncore_leakage: 0.25,
            width_exponent: 2.0,
            leakage_floor: 0.15,
            llc_way_leakage: 0.08,
            llc_dynamic_per_gaps: 0.35,
            idle_activity: 0.30,
        }
    }
}

/// The chip power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    params: SystemParams,
    cal: PowerCalibration,
    kind: CoreKind,
}

impl PowerModel {
    /// Creates a model for the given core kind with default calibration.
    pub fn new(params: SystemParams, kind: CoreKind) -> PowerModel {
        PowerModel {
            params,
            cal: PowerCalibration::default(),
            kind,
        }
    }

    /// Creates a model with explicit calibration constants.
    pub fn with_calibration(
        params: SystemParams,
        kind: CoreKind,
        cal: PowerCalibration,
    ) -> PowerModel {
        PowerModel { params, cal, kind }
    }

    /// The kind of cores this model prices.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// Energy tax multiplier relative to a fixed core.
    fn energy_tax(&self) -> f64 {
        match self.kind {
            CoreKind::Reconfigurable => 1.0 + self.params.reconfig_energy_penalty,
            CoreKind::Fixed => 1.0,
        }
    }

    /// Activity factor given achieved IPC: stalled cores still clock and
    /// draw the idle fraction, busy cores approach the application's peak
    /// activity.
    fn activity_factor(&self, app: &AppProfile, ipc: f64) -> f64 {
        let utilization = (ipc / 4.0).clamp(0.0, 1.0);
        app.activity * (self.cal.idle_activity + (1.0 - self.cal.idle_activity) * utilization)
    }

    fn section_widths(config: CoreConfig) -> [SectionWidth; 3] {
        [config.fe, config.be, config.ls]
    }

    /// Power of one active core running `app` at the given configuration and
    /// achieved IPC.
    ///
    /// `ipc` should come from [`crate::PerfModel::ipc`] for the same
    /// configuration; dynamic power scales with it through the activity
    /// factor.
    pub fn core_watts(&self, app: &AppProfile, config: CoreConfig, ipc: f64) -> Watts {
        let af = self.activity_factor(app, ipc);
        let mut dynamic = self.cal.uncore_dynamic * af;
        let mut leakage = self.cal.uncore_leakage;
        for (i, _section) in Section::ALL.iter().enumerate() {
            let width = Self::section_widths(config)[i];
            dynamic +=
                self.cal.section_dynamic[i] * width.fraction().powf(self.cal.width_exponent) * af;
            leakage += self.cal.section_leakage[i]
                * (self.cal.leakage_floor + (1.0 - self.cal.leakage_floor) * width.fraction());
        }
        Watts::new((dynamic + leakage) * self.energy_tax())
    }

    /// Residual power of a core parked in C6.
    pub fn gated_core_watts(&self) -> Watts {
        Watts::new(self.params.gated_core_watts)
    }

    /// LLC power attributable to one job: leakage of its allocated ways plus
    /// dynamic energy for its off-chip traffic.
    pub fn llc_watts(&self, cache: CacheAlloc, traffic_gaps: f64) -> Watts {
        Watts::new(
            self.cal.llc_way_leakage * cache.ways()
                + self.cal.llc_dynamic_per_gaps * traffic_gaps.max(0.0),
        )
    }

    /// Power of one core running `app` including its LLC share; convenience
    /// for per-(job, config) oracle tables.
    pub fn job_core_watts(
        &self,
        app: &AppProfile,
        config: CoreConfig,
        cache: CacheAlloc,
        ipc: f64,
        bips: Bips,
    ) -> Watts {
        let traffic = bips.get() * app.llc_accesses_per_instr() * app.llc_miss_rate(cache.ways());
        self.core_watts(app, config, ipc) + self.llc_watts(cache, traffic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheAlloc;
    use crate::perf::PerfModel;

    fn models() -> (PerfModel, PowerModel, PowerModel) {
        let params = SystemParams::default();
        (
            PerfModel::new(params),
            PowerModel::new(params, CoreKind::Reconfigurable),
            PowerModel::new(params, CoreKind::Fixed),
        )
    }

    #[test]
    fn narrower_configs_draw_less_power() {
        let (perf, power, _) = models();
        let app = AppProfile::balanced();
        let hi_ipc = perf.ipc(&app, CoreConfig::widest(), 1.0, 0.0);
        let lo_ipc = perf.ipc(&app, CoreConfig::narrowest(), 1.0, 0.0);
        let hi = power.core_watts(&app, CoreConfig::widest(), hi_ipc);
        let lo = power.core_watts(&app, CoreConfig::narrowest(), lo_ipc);
        assert!(hi.get() > lo.get());
    }

    #[test]
    fn power_monotone_in_width_at_fixed_ipc() {
        let (_, power, _) = models();
        let app = AppProfile::balanced();
        let mut prev = 0.0;
        for config in [
            CoreConfig::narrowest(),
            CoreConfig::new(SectionWidth::Four, SectionWidth::Four, SectionWidth::Four),
            CoreConfig::widest(),
        ] {
            let w = power.core_watts(&app, config, 1.5).get();
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn reconfigurable_pays_18_percent_tax() {
        let (_, reconf, fixed) = models();
        let app = AppProfile::balanced();
        let r = reconf.core_watts(&app, CoreConfig::widest(), 2.0).get();
        let f = fixed.core_watts(&app, CoreConfig::widest(), 2.0).get();
        assert!((r / f - 1.18).abs() < 1e-9);
    }

    #[test]
    fn gated_core_is_nearly_free() {
        let (_, power, _) = models();
        let app = AppProfile::balanced();
        let active = power.core_watts(&app, CoreConfig::narrowest(), 0.5).get();
        assert!(power.gated_core_watts().get() < active / 10.0);
    }

    #[test]
    fn higher_ipc_draws_more_dynamic_power() {
        let (_, power, _) = models();
        let app = AppProfile::balanced();
        let busy = power.core_watts(&app, CoreConfig::widest(), 4.0).get();
        let stalled = power.core_watts(&app, CoreConfig::widest(), 0.2).get();
        assert!(busy > stalled);
        // ...but the stalled core still draws idle power.
        assert!(stalled > 0.5);
    }

    #[test]
    fn llc_power_scales_with_ways_and_traffic() {
        let (_, power, _) = models();
        let quiet = power.llc_watts(CacheAlloc::Half, 0.0).get();
        let big = power.llc_watts(CacheAlloc::Four, 0.0).get();
        let busy = power.llc_watts(CacheAlloc::Four, 1.0).get();
        assert!(big > quiet);
        assert!(busy > big);
    }

    #[test]
    fn per_core_power_is_in_a_plausible_envelope() {
        // Fig. 1 shows ~20-60 W for 16 cores, i.e. roughly 1.5-4 W per core.
        let (perf, power, _) = models();
        for app in [
            AppProfile::balanced(),
            AppProfile::compute_bound(),
            AppProfile::memory_bound(),
        ] {
            let ipc = perf.ipc(&app, CoreConfig::widest(), 2.0, 0.0);
            let w = power.core_watts(&app, CoreConfig::widest(), ipc).get();
            assert!((1.0..8.0).contains(&w), "unexpected per-core power {w}");
        }
    }
}
