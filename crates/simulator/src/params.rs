//! Chip-level parameters (the paper's Table I) plus the calibration constants
//! of the analytic performance and power models.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated system.
///
/// Defaults reproduce Table I of the paper: a 32-core chip at 4 GHz in 22 nm
/// with a shared 32-way 64 MB LLC, 20-cycle L2 and 200-cycle DRAM access
/// latency, plus the AnyCore-derived reconfiguration overheads of §VII
/// (1.67 % frequency and 18 % energy penalty per cycle, 19 % area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Number of cores on the chip.
    pub num_cores: usize,
    /// Nominal clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Associativity of the shared LLC (ways available for partitioning).
    pub llc_ways: u32,
    /// LLC hit latency in cycles.
    pub llc_latency_cycles: f64,
    /// DRAM access latency in cycles.
    pub dram_latency_cycles: f64,
    /// Peak off-chip memory bandwidth, expressed in giga-accesses per second
    /// the memory system can sustain before contention queues build up.
    pub memory_bandwidth_gaps: f64,
    /// Relative frequency penalty of reconfigurable cores vs. fixed cores
    /// (AnyCore RTL analysis; 0.0167 = 1.67 %).
    pub reconfig_frequency_penalty: f64,
    /// Relative energy-per-cycle penalty of reconfigurable cores vs. fixed
    /// cores (0.18 = 18 %).
    pub reconfig_energy_penalty: f64,
    /// Relative area penalty of reconfigurable cores vs. fixed cores
    /// (0.19 = 19 %). Not used by the models; recorded for reporting.
    pub reconfig_area_penalty: f64,
    /// Residual power of a core parked in the deepest gated state (C6), in
    /// Watts.
    pub gated_core_watts: f64,
    /// Pipeline drain + array power-gating time when a core changes
    /// configuration, in microseconds. AnyCore-style section gating costs
    /// on the order of microseconds; the testbed charges it to every core
    /// whose configuration differs from the previous frame.
    pub reconfig_transition_us: f64,
}

impl SystemParams {
    /// Table I defaults for the 32-core evaluation system.
    pub fn paper_32core() -> SystemParams {
        SystemParams::default()
    }

    /// The 16-core homogeneous system used for the §III characterization
    /// (Fig. 1) and for finding each service's maximum load.
    pub fn paper_16core() -> SystemParams {
        SystemParams {
            num_cores: 16,
            ..SystemParams::default()
        }
    }

    /// Effective clock frequency of a reconfigurable core in GHz, after the
    /// AnyCore frequency penalty.
    pub fn reconfig_frequency_ghz(&self) -> f64 {
        self.frequency_ghz * (1.0 - self.reconfig_frequency_penalty)
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            num_cores: 32,
            frequency_ghz: 4.0,
            llc_ways: 32,
            llc_latency_cycles: 20.0,
            dram_latency_cycles: 200.0,
            memory_bandwidth_gaps: 4.0,
            reconfig_frequency_penalty: 0.0167,
            reconfig_energy_penalty: 0.18,
            reconfig_area_penalty: 0.19,
            gated_core_watts: 0.05,
            reconfig_transition_us: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let p = SystemParams::default();
        assert_eq!(p.num_cores, 32);
        assert_eq!(p.frequency_ghz, 4.0);
        assert_eq!(p.llc_ways, 32);
        assert_eq!(p.dram_latency_cycles, 200.0);
        assert_eq!(p.llc_latency_cycles, 20.0);
    }

    #[test]
    fn reconfig_frequency_applies_anycore_penalty() {
        let p = SystemParams::default();
        let f = p.reconfig_frequency_ghz();
        assert!(f < p.frequency_ghz);
        assert!((f - 4.0 * (1.0 - 0.0167)).abs() < 1e-12);
    }

    #[test]
    fn sixteen_core_variant_only_changes_core_count() {
        let p16 = SystemParams::paper_16core();
        assert_eq!(p16.num_cores, 16);
        assert_eq!(p16.frequency_ghz, SystemParams::default().frequency_ghz);
    }
}
