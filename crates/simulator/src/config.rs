//! The reconfiguration space: core section widths, core configurations, and
//! LLC way allocations.
//!
//! A core is divided into a front-end (fetch, decode, rename, dispatch, ROB),
//! a back-end (issue queues, register files, functional units), and a
//! load/store section (LD/ST queues). Each section can be power-gated down to
//! six-, four-, or two-wide, mirroring Flicker-style datapath scaling with the
//! more aggressive superscalar design of the CuttleSys paper (§III). With
//! three sections of three widths there are 27 core configurations; combined
//! with the four permitted LLC way allocations (1/2, 1, 2, or 4 ways, §VIII-A2)
//! each job can run in one of 108 configurations.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Width of one core section: the number of active lanes.
///
/// Downsizing a section power-gates the associated array structures, reducing
/// both dynamic and leakage power at the cost of throughput through that
/// pipeline region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SectionWidth {
    /// Two-wide: the narrowest, lowest-power setting.
    Two,
    /// Four-wide: the intermediate setting.
    Four,
    /// Six-wide: the widest, full-performance setting.
    Six,
}

impl SectionWidth {
    /// All widths in ascending order.
    pub const ALL: [SectionWidth; 3] = [SectionWidth::Two, SectionWidth::Four, SectionWidth::Six];

    /// Number of active lanes for this width.
    ///
    /// ```
    /// use simulator::SectionWidth;
    /// assert_eq!(SectionWidth::Four.lanes(), 4);
    /// ```
    pub const fn lanes(self) -> u8 {
        match self {
            SectionWidth::Two => 2,
            SectionWidth::Four => 4,
            SectionWidth::Six => 6,
        }
    }

    /// Dense index in `0..3` (Two = 0, Four = 1, Six = 2).
    pub const fn index(self) -> usize {
        match self {
            SectionWidth::Two => 0,
            SectionWidth::Four => 1,
            SectionWidth::Six => 2,
        }
    }

    /// Inverse of [`SectionWidth::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn from_index(index: usize) -> SectionWidth {
        Self::ALL[index]
    }

    /// Fraction of the full six-wide section that is active, in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.lanes()) / 6.0
    }
}

impl fmt::Display for SectionWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// One of the three independently configurable pipeline regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Section {
    /// Fetch, decode, rename, dispatch, and the reorder buffer.
    FrontEnd,
    /// Issue queues, register files, and functional units.
    BackEnd,
    /// Load and store queues.
    LoadStore,
}

impl Section {
    /// All sections in `{FE, BE, LS}` label order.
    pub const ALL: [Section; 3] = [Section::FrontEnd, Section::BackEnd, Section::LoadStore];
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Section::FrontEnd => "FE",
            Section::BackEnd => "BE",
            Section::LoadStore => "LS",
        };
        f.write_str(name)
    }
}

/// A complete core configuration `{FE, BE, LS}`.
///
/// Displayed using the paper's label convention, e.g. `{6,2,4}` for a
/// six-wide front-end, two-wide back-end, and four-wide load/store section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Front-end width.
    pub fe: SectionWidth,
    /// Back-end width.
    pub be: SectionWidth,
    /// Load/store width.
    pub ls: SectionWidth,
}

/// Number of distinct core configurations (3 sections × 3 widths = 3³).
pub const NUM_CORE_CONFIGS: usize = 27;

/// Number of distinct LLC way allocations a job may receive.
pub const NUM_CACHE_ALLOCS: usize = 4;

/// Number of combined (core configuration, cache allocation) job
/// configurations. The paper's §VIII-A3 says 107; 27 × 4 = 108 and we treat
/// the difference as a typo.
pub const NUM_JOB_CONFIGS: usize = NUM_CORE_CONFIGS * NUM_CACHE_ALLOCS;

impl CoreConfig {
    /// Creates a configuration from explicit section widths.
    pub const fn new(fe: SectionWidth, be: SectionWidth, ls: SectionWidth) -> CoreConfig {
        CoreConfig { fe, be, ls }
    }

    /// The widest-issue configuration `{6,6,6}` used for the high profiling
    /// sample.
    pub const fn widest() -> CoreConfig {
        CoreConfig::new(SectionWidth::Six, SectionWidth::Six, SectionWidth::Six)
    }

    /// The narrowest-issue configuration `{2,2,2}` used for the low profiling
    /// sample.
    pub const fn narrowest() -> CoreConfig {
        CoreConfig::new(SectionWidth::Two, SectionWidth::Two, SectionWidth::Two)
    }

    /// Dense index in `0..27`.
    ///
    /// The encoding is FE-major: `fe * 9 + be * 3 + ls`.
    pub const fn index(self) -> usize {
        self.fe.index() * 9 + self.be.index() * 3 + self.ls.index()
    }

    /// Inverse of [`CoreConfig::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 27`.
    pub fn from_index(index: usize) -> CoreConfig {
        assert!(
            index < NUM_CORE_CONFIGS,
            "core config index {index} out of range"
        );
        CoreConfig {
            fe: SectionWidth::from_index(index / 9),
            be: SectionWidth::from_index((index / 3) % 3),
            ls: SectionWidth::from_index(index % 3),
        }
    }

    /// Iterates over all 27 configurations in index order.
    ///
    /// ```
    /// use simulator::CoreConfig;
    /// assert_eq!(CoreConfig::all().count(), 27);
    /// ```
    pub fn all() -> impl Iterator<Item = CoreConfig> {
        (0..NUM_CORE_CONFIGS).map(CoreConfig::from_index)
    }

    /// Width of the given section.
    pub fn width(self, section: Section) -> SectionWidth {
        match section {
            Section::FrontEnd => self.fe,
            Section::BackEnd => self.be,
            Section::LoadStore => self.ls,
        }
    }

    /// Total active lanes across sections; a crude "size" used for ordering
    /// heuristics.
    pub fn total_lanes(self) -> u32 {
        u32::from(self.fe.lanes()) + u32::from(self.be.lanes()) + u32::from(self.ls.lanes())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::widest()
    }
}

impl fmt::Display for CoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{},{}}}", self.fe, self.be, self.ls)
    }
}

/// LLC way allocation assigned to a single job.
///
/// Following §VIII-A2, allocations are limited to 1/2, 1, 2, or 4 ways; two
/// jobs with half-way allocations share a single physical way.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum CacheAlloc {
    /// Half of one way, shared with another half-way job.
    Half,
    /// One dedicated way.
    #[default]
    One,
    /// Two dedicated ways.
    Two,
    /// Four dedicated ways.
    Four,
}

impl CacheAlloc {
    /// All allocations in ascending order.
    pub const ALL: [CacheAlloc; 4] = [
        CacheAlloc::Half,
        CacheAlloc::One,
        CacheAlloc::Two,
        CacheAlloc::Four,
    ];

    /// The allocation in fractional ways.
    ///
    /// ```
    /// use simulator::CacheAlloc;
    /// assert_eq!(CacheAlloc::Half.ways(), 0.5);
    /// assert_eq!(CacheAlloc::Four.ways(), 4.0);
    /// ```
    pub fn ways(self) -> f64 {
        match self {
            CacheAlloc::Half => 0.5,
            CacheAlloc::One => 1.0,
            CacheAlloc::Two => 2.0,
            CacheAlloc::Four => 4.0,
        }
    }

    /// Dense index in `0..4`.
    pub const fn index(self) -> usize {
        match self {
            CacheAlloc::Half => 0,
            CacheAlloc::One => 1,
            CacheAlloc::Two => 2,
            CacheAlloc::Four => 3,
        }
    }

    /// Inverse of [`CacheAlloc::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> CacheAlloc {
        Self::ALL[index]
    }
}

impl fmt::Display for CacheAlloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheAlloc::Half => f.write_str("0.5w"),
            other => write!(f, "{}w", other.ways()),
        }
    }
}

/// A job's complete resource configuration: core widths plus LLC allocation.
///
/// This is the unit the collaborative-filtering matrices are indexed by (one
/// column per `JobConfig`) and the value DDS assigns to each decision
/// dimension.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JobConfig {
    /// Core section widths.
    pub core: CoreConfig,
    /// LLC way allocation.
    pub cache: CacheAlloc,
}

impl JobConfig {
    /// Creates a job configuration.
    pub const fn new(core: CoreConfig, cache: CacheAlloc) -> JobConfig {
        JobConfig { core, cache }
    }

    /// Dense index in `0..108`: `core.index() * 4 + cache.index()`.
    pub const fn index(self) -> usize {
        self.core.index() * NUM_CACHE_ALLOCS + self.cache.index()
    }

    /// Inverse of [`JobConfig::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 108`.
    pub fn from_index(index: usize) -> JobConfig {
        assert!(
            index < NUM_JOB_CONFIGS,
            "job config index {index} out of range"
        );
        JobConfig {
            core: CoreConfig::from_index(index / NUM_CACHE_ALLOCS),
            cache: CacheAlloc::from_index(index % NUM_CACHE_ALLOCS),
        }
    }

    /// Iterates over all 108 job configurations in index order.
    pub fn all() -> impl Iterator<Item = JobConfig> {
        (0..NUM_JOB_CONFIGS).map(JobConfig::from_index)
    }

    /// The widest core configuration with one LLC way: the high profiling
    /// sample of §IV-B.
    pub const fn profiling_high() -> JobConfig {
        JobConfig::new(CoreConfig::widest(), CacheAlloc::One)
    }

    /// The narrowest core configuration with one LLC way: the low profiling
    /// sample of §IV-B.
    pub const fn profiling_low() -> JobConfig {
        JobConfig::new(CoreConfig::narrowest(), CacheAlloc::One)
    }
}

impl fmt::Display for JobConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.core, self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_width_lanes_and_fraction() {
        assert_eq!(SectionWidth::Two.lanes(), 2);
        assert_eq!(SectionWidth::Four.lanes(), 4);
        assert_eq!(SectionWidth::Six.lanes(), 6);
        assert!((SectionWidth::Six.fraction() - 1.0).abs() < 1e-12);
        assert!((SectionWidth::Two.fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn section_width_index_roundtrip() {
        for w in SectionWidth::ALL {
            assert_eq!(SectionWidth::from_index(w.index()), w);
        }
    }

    #[test]
    fn core_config_index_roundtrip_all_27() {
        for i in 0..NUM_CORE_CONFIGS {
            let c = CoreConfig::from_index(i);
            assert_eq!(c.index(), i);
        }
        assert_eq!(CoreConfig::all().count(), 27);
    }

    #[test]
    fn core_config_index_is_fe_major() {
        let c = CoreConfig::new(SectionWidth::Six, SectionWidth::Two, SectionWidth::Four);
        assert_eq!(c.index(), 2 * 9 + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_config_from_index_panics_out_of_range() {
        let _ = CoreConfig::from_index(27);
    }

    #[test]
    fn core_config_display_matches_paper_labels() {
        assert_eq!(CoreConfig::widest().to_string(), "{6,6,6}");
        assert_eq!(
            CoreConfig::new(SectionWidth::Six, SectionWidth::Two, SectionWidth::Four).to_string(),
            "{6,2,4}"
        );
    }

    #[test]
    fn cache_alloc_roundtrip_and_ways() {
        for a in CacheAlloc::ALL {
            assert_eq!(CacheAlloc::from_index(a.index()), a);
        }
        let ways: Vec<f64> = CacheAlloc::ALL.iter().map(|a| a.ways()).collect();
        assert_eq!(ways, vec![0.5, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn job_config_index_roundtrip_all_108() {
        assert_eq!(NUM_JOB_CONFIGS, 108);
        for i in 0..NUM_JOB_CONFIGS {
            let jc = JobConfig::from_index(i);
            assert_eq!(jc.index(), i);
        }
    }

    #[test]
    fn profiling_samples_are_extremes_with_one_way() {
        assert_eq!(JobConfig::profiling_high().core, CoreConfig::widest());
        assert_eq!(JobConfig::profiling_low().core, CoreConfig::narrowest());
        assert_eq!(JobConfig::profiling_high().cache, CacheAlloc::One);
        assert_eq!(JobConfig::profiling_low().cache, CacheAlloc::One);
    }

    #[test]
    fn total_lanes_orders_extremes() {
        assert!(CoreConfig::widest().total_lanes() > CoreConfig::narrowest().total_lanes());
        assert_eq!(CoreConfig::widest().total_lanes(), 18);
        assert_eq!(CoreConfig::narrowest().total_lanes(), 6);
    }
}
