//! Deterministic fault-injection primitives.
//!
//! Production measurement paths lose samples, pick up noise and bias, and
//! occasionally hand back NaN; reconfiguration commands fail and leave a core
//! stuck in its previous shape. This module provides the *mechanism* for
//! reproducing those events deterministically: a counter-based random stream
//! (every value is a pure function of `(seed, stream, index)`) and a small
//! catalog of value corruptions. Policy — which faults fire in which quantum
//! — lives in the `cuttlesys::faults` module; keeping the mechanism here
//! means corrupted values are produced by the same crate that produces the
//! clean ones.
//!
//! Counter-based generation matters because fault draws must never perturb
//! the simulation's own RNG stream: a clean run and a faulty run of the same
//! scenario draw exactly the same simulation randomness, and two faulty runs
//! with the same fault seed corrupt exactly the same values.

use serde::Serialize;

/// Distinct sub-streams of a fault seed, so the draw deciding "drop this
/// sample?" can never alias the draw deciding "fail this reconfiguration?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[repr(u64)]
pub enum FaultStream {
    /// Per-sample drop/corrupt decisions.
    Sample = 1,
    /// Corruption kind and magnitude for a corrupted sample.
    Corruption = 2,
    /// Per-quantum reconstruction stall/divergence decisions.
    Reconstruct = 3,
    /// Per-quantum reconfiguration-command failures.
    Reconfig = 4,
    /// Per-quantum power-telemetry blackouts.
    Power = 5,
    /// Per-(node, quantum) fleet crash decisions.
    NodeCrash = 6,
    /// Per-(node, quantum) fleet blackout starts (node silent for K quanta).
    NodeBlackout = 7,
    /// Per-(node, quantum) step-deadline overruns (slow node: one missed
    /// heartbeat).
    NodeSlow = 8,
    /// Per-(node, quantum) scheduled maintenance drains.
    NodeDrain = 9,
}

/// A raw 64-bit draw for `(seed, stream, index)` — pure and stateless.
///
/// Delegates to the workspace-shared SplitMix64 helper so the fault stream
/// and the search seeding mix bits identically (see `util::rng64`).
pub fn draw(seed: u64, stream: FaultStream, index: u64) -> u64 {
    util::rng64::mix_stream(seed, stream as u64, index)
}

/// A uniform draw in `[0, 1)` for `(seed, stream, index)`.
pub fn unit(seed: u64, stream: FaultStream, index: u64) -> f64 {
    util::rng64::unit_from_bits(draw(seed, stream, index))
}

/// A standard-normal draw (Box–Muller over two decorrelated sub-draws).
pub fn normal(seed: u64, stream: FaultStream, index: u64) -> f64 {
    let u1 = unit(seed, stream, index.wrapping_mul(2).wrapping_add(1));
    let u2 = unit(seed, stream, index.wrapping_mul(2).wrapping_add(2));
    let r = (-2.0 * (1.0 - u1).ln()).sqrt();
    r * (std::f64::consts::TAU * u2).cos()
}

/// How a measured value gets mangled on its way to the decision loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Corruption {
    /// Multiplicative Gaussian noise: `v · (1 + sigma · N(0, 1))`.
    Noise {
        /// Relative noise magnitude.
        sigma: f64,
    },
    /// Multiplicative bias: `v · (1 + bias)` — a miscalibrated sensor.
    Bias {
        /// Relative offset, e.g. `0.3` reads 30% high.
        bias: f64,
    },
    /// The sensor returns NaN outright.
    Nan,
}

impl Corruption {
    /// Applies the corruption to `value`, drawing any randomness from the
    /// counter stream at `(seed, index)`.
    pub fn apply(&self, value: f64, seed: u64, index: u64) -> f64 {
        match *self {
            Corruption::Noise { sigma } => {
                value * (1.0 + sigma * normal(seed, FaultStream::Corruption, index))
            }
            Corruption::Bias { bias } => value * (1.0 + bias),
            Corruption::Nan => f64::NAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_bit_identical_to_the_pre_refactor_stream() {
        // Reference vectors recorded before `draw` delegated to util::rng64:
        // any change here silently re-rolls every pinned fault experiment.
        assert_eq!(draw(7, FaultStream::Sample, 42), 0xD157_0F7B_03B4_4517);
        assert_eq!(draw(0xFA17, FaultStream::Power, 9), 0xB34B_B26E_CABE_2380);
    }

    #[test]
    fn draws_are_pure_functions_of_their_coordinates() {
        assert_eq!(
            draw(7, FaultStream::Sample, 42),
            draw(7, FaultStream::Sample, 42)
        );
        assert_ne!(
            draw(7, FaultStream::Sample, 42),
            draw(7, FaultStream::Sample, 43)
        );
        assert_ne!(
            draw(7, FaultStream::Sample, 42),
            draw(7, FaultStream::Reconfig, 42)
        );
        assert_ne!(
            draw(7, FaultStream::Sample, 42),
            draw(8, FaultStream::Sample, 42)
        );
    }

    #[test]
    fn unit_draws_cover_the_half_open_interval() {
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for i in 0..10_000 {
            let u = unit(3, FaultStream::Power, i);
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "stream should fill [0, 1)");
    }

    #[test]
    fn normal_draws_have_roughly_standard_moments() {
        let n = 20_000;
        let xs: Vec<f64> = (0..n)
            .map(|i| normal(11, FaultStream::Corruption, i))
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} should be near 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} should be near 1");
    }

    #[test]
    fn corruptions_do_what_they_say() {
        assert!(Corruption::Nan.apply(5.0, 1, 0).is_nan());
        assert_eq!(Corruption::Bias { bias: 0.5 }.apply(2.0, 1, 0), 3.0);
        let noisy = Corruption::Noise { sigma: 0.1 }.apply(10.0, 1, 0);
        assert!(noisy.is_finite() && noisy != 10.0);
        // Same coordinates, same corruption.
        assert_eq!(noisy, Corruption::Noise { sigma: 0.1 }.apply(10.0, 1, 0));
    }
}
