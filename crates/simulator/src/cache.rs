//! Shared LLC way-partitioning and the off-chip bandwidth contention model.
//!
//! The LLC is partitioned among jobs at way granularity (Qureshi & Patt-style
//! UCP hardware is assumed available, as in §IV-A). Allocations are restricted
//! to the four [`crate::CacheAlloc`] sizes; two half-way jobs share one
//! physical way. Memory bandwidth is shared and unpartitioned: when aggregate
//! DRAM traffic approaches the channel capacity, every miss sees a queueing
//! delay factor, which is how co-runner interference leaks into performance
//! even with cache isolation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::chip::JobId;
use crate::config::CacheAlloc;
use crate::params::SystemParams;

/// A way-partitioning of the shared LLC across jobs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LlcPartition {
    // A BTreeMap so that `total_ways` (a float sum) and `iter` walk jobs in
    // JobId order: allocation ways happen to sum exactly in f64 today, but
    // the determinism must be structural, not an accident of the values.
    allocs: BTreeMap<JobId, CacheAlloc>,
}

impl LlcPartition {
    /// An empty partition.
    pub fn new() -> LlcPartition {
        LlcPartition::default()
    }

    /// Sets the allocation for a job, replacing any previous allocation.
    pub fn set(&mut self, job: JobId, alloc: CacheAlloc) {
        self.allocs.insert(job, alloc);
    }

    /// The allocation for a job, if it has one.
    pub fn get(&self, job: JobId) -> Option<CacheAlloc> {
        self.allocs.get(&job).copied()
    }

    /// The allocation for a job, defaulting to one way for jobs the
    /// controller has not placed yet.
    pub fn get_or_default(&self, job: JobId) -> CacheAlloc {
        self.get(job).unwrap_or(CacheAlloc::One)
    }

    /// Removes a job from the partition.
    pub fn remove(&mut self, job: JobId) -> Option<CacheAlloc> {
        self.allocs.remove(&job)
    }

    /// Total ways consumed; half-way jobs count fractionally because pairs of
    /// them share a physical way.
    pub fn total_ways(&self) -> f64 {
        self.allocs.values().map(|a| a.ways()).sum()
    }

    /// Physical ways needed: fractional halves round up because an unpaired
    /// half-way job still occupies a way.
    pub fn physical_ways(&self) -> u32 {
        self.total_ways().ceil() as u32
    }

    /// Whether the partition fits the chip's LLC (Eq. 3 of the paper).
    pub fn fits(&self, params: &SystemParams) -> bool {
        self.physical_ways() <= params.llc_ways
    }

    /// Number of jobs with an allocation.
    pub fn len(&self) -> usize {
        self.allocs.len()
    }

    /// Whether no job has an allocation.
    pub fn is_empty(&self) -> bool {
        self.allocs.is_empty()
    }

    /// Iterates over `(job, allocation)` pairs in ascending `JobId` order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, CacheAlloc)> + '_ {
        self.allocs.iter().map(|(j, a)| (*j, *a))
    }
}

impl FromIterator<(JobId, CacheAlloc)> for LlcPartition {
    fn from_iter<T: IntoIterator<Item = (JobId, CacheAlloc)>>(iter: T) -> Self {
        LlcPartition {
            allocs: iter.into_iter().collect(),
        }
    }
}

impl Extend<(JobId, CacheAlloc)> for LlcPartition {
    fn extend<T: IntoIterator<Item = (JobId, CacheAlloc)>>(&mut self, iter: T) {
        self.allocs.extend(iter);
    }
}

/// Off-chip bandwidth contention model.
///
/// Maps channel utilization to a multiplicative DRAM latency inflation: idle
/// channels add nothing, and the delay factor grows superlinearly as
/// utilization approaches saturation, capped so the fixed-point iteration in
/// the chip simulator stays stable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Sustainable bandwidth in giga-accesses per second.
    pub capacity_gaps: f64,
    /// Utilization below which contention is negligible.
    pub knee: f64,
    /// Maximum latency inflation factor.
    pub max_factor: f64,
}

impl BandwidthModel {
    /// Builds the model from system parameters.
    pub fn new(params: &SystemParams) -> BandwidthModel {
        BandwidthModel {
            capacity_gaps: params.memory_bandwidth_gaps,
            knee: 0.55,
            max_factor: 6.0,
        }
    }

    /// Contention factor (extra fraction of DRAM latency) at the given total
    /// traffic.
    ///
    /// Returns 0 below the knee; above it, an M/D/1-flavoured
    /// `u²/(1−u)`-style growth, clamped to `max_factor`.
    pub fn contention(&self, traffic_gaps: f64) -> f64 {
        let util = (traffic_gaps / self.capacity_gaps).max(0.0);
        if util <= self.knee {
            return 0.0;
        }
        let excess = util - self.knee;
        let headroom = (1.0 - util).max(0.02);
        (excess * excess / headroom).min(self.max_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::JobId;

    #[test]
    fn partition_total_and_physical_ways() {
        let mut p = LlcPartition::new();
        p.set(JobId(0), CacheAlloc::Half);
        p.set(JobId(1), CacheAlloc::Half);
        p.set(JobId(2), CacheAlloc::Two);
        assert_eq!(p.total_ways(), 3.0);
        assert_eq!(p.physical_ways(), 3);
        p.set(JobId(3), CacheAlloc::Half);
        // An unpaired half rounds up to a full physical way.
        assert_eq!(p.physical_ways(), 4);
    }

    #[test]
    fn partition_fits_checks_associativity() {
        let params = SystemParams::default();
        let mut p = LlcPartition::new();
        for i in 0..8 {
            p.set(JobId(i), CacheAlloc::Four);
        }
        assert!(p.fits(&params));
        p.set(JobId(8), CacheAlloc::One);
        assert!(!p.fits(&params));
    }

    #[test]
    fn partition_set_replaces() {
        let mut p = LlcPartition::new();
        p.set(JobId(0), CacheAlloc::Four);
        p.set(JobId(0), CacheAlloc::One);
        assert_eq!(p.get(JobId(0)), Some(CacheAlloc::One));
        assert_eq!(p.len(), 1);
        assert_eq!(p.remove(JobId(0)), Some(CacheAlloc::One));
        assert!(p.is_empty());
    }

    #[test]
    fn contention_zero_below_knee_and_grows_above() {
        let m = BandwidthModel::new(&SystemParams::default());
        assert_eq!(m.contention(0.0), 0.0);
        assert_eq!(m.contention(m.capacity_gaps * 0.4), 0.0);
        let mid = m.contention(m.capacity_gaps * 0.8);
        let high = m.contention(m.capacity_gaps * 0.95);
        assert!(mid > 0.0);
        assert!(high > mid);
        assert!(m.contention(m.capacity_gaps * 5.0) <= m.max_factor);
    }

    #[test]
    fn partition_collects_from_iterator() {
        let p: LlcPartition = [(JobId(0), CacheAlloc::One), (JobId(1), CacheAlloc::Two)]
            .into_iter()
            .collect();
        assert_eq!(p.total_ways(), 3.0);
    }
}
