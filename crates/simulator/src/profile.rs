//! Microarchitectural application profiles.
//!
//! An [`AppProfile`] captures everything the analytic performance and power
//! models need to know about an application: how much instruction-level
//! parallelism it exposes, how sensitive it is to each core section being
//! narrowed, and how its memory behaviour responds to LLC capacity. Profiles
//! for the synthetic SPEC CPU2006 and TailBench stand-ins live in the
//! `workloads` crate; this type only defines the parameter space and its
//! invariants.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of profile fields rejected by
/// [`AppProfile::rejecting_out_of_range`]. Mirrors the `metrics.rs` policy of
/// refusing out-of-range values rather than coercing them, but keeps the
/// event observable instead of panicking.
static OUT_OF_RANGE_REJECTIONS: AtomicU64 = AtomicU64::new(0);

/// Number of out-of-range profile fields rejected (and resampled from a
/// known-good fallback) since process start.
pub fn out_of_range_rejections() -> u64 {
    OUT_OF_RANGE_REJECTIONS.load(Ordering::Relaxed)
}

/// Parameters describing one application's microarchitectural behaviour.
///
/// All fields are plain data so workload catalogs can construct profiles
/// directly; [`AppProfile::validate`] checks the invariants the models rely
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Peak sustainable micro-ops per cycle with unconstrained resources,
    /// in `(0, 6]`.
    pub ilp: f64,
    /// Sensitivity to front-end narrowing, in `[0, 1]` (branchy, large-footprint
    /// codes are high).
    pub fe_sensitivity: f64,
    /// Sensitivity to back-end narrowing, in `[0, 1]` (wide-issue compute codes
    /// are high).
    pub be_sensitivity: f64,
    /// Sensitivity to load/store-queue narrowing, in `[0, 1]` (memory-level
    /// parallel codes are high).
    pub ls_sensitivity: f64,
    /// Fraction of instructions that access memory, in `[0.05, 0.6]`.
    pub mem_fraction: f64,
    /// Fraction of memory accesses that miss the private caches and reach the
    /// LLC, in `[0.005, 0.6]`.
    pub l1_miss_rate: f64,
    /// Asymptotic LLC miss ratio once the working set fits, in `[0, 0.95]`.
    pub llc_miss_floor: f64,
    /// Exponential decay scale (in ways) of the LLC miss curve; small values
    /// mean the working set fits in very few ways.
    pub llc_working_set_ways: f64,
    /// Memory-level parallelism: average outstanding misses overlapping a
    /// miss, in `[1, 10]`.
    pub mlp: f64,
    /// Baseline switching-activity scale for dynamic power, in `[0.4, 1.4]`.
    pub activity: f64,
}

impl AppProfile {
    /// A middle-of-the-road profile, useful for examples and tests.
    pub fn balanced() -> AppProfile {
        AppProfile {
            ilp: 2.6,
            fe_sensitivity: 0.5,
            be_sensitivity: 0.5,
            ls_sensitivity: 0.5,
            mem_fraction: 0.3,
            l1_miss_rate: 0.08,
            llc_miss_floor: 0.12,
            llc_working_set_ways: 2.0,
            mlp: 3.0,
            activity: 1.0,
        }
    }

    /// A compute-bound profile: high ILP, tiny memory footprint.
    pub fn compute_bound() -> AppProfile {
        AppProfile {
            ilp: 4.2,
            fe_sensitivity: 0.7,
            be_sensitivity: 0.9,
            ls_sensitivity: 0.2,
            mem_fraction: 0.18,
            l1_miss_rate: 0.02,
            llc_miss_floor: 0.05,
            llc_working_set_ways: 0.8,
            mlp: 2.0,
            activity: 1.2,
        }
    }

    /// A memory-bound profile: low ILP, large working set, high MLP.
    pub fn memory_bound() -> AppProfile {
        AppProfile {
            ilp: 1.4,
            fe_sensitivity: 0.2,
            be_sensitivity: 0.25,
            ls_sensitivity: 0.9,
            mem_fraction: 0.42,
            l1_miss_rate: 0.25,
            llc_miss_floor: 0.35,
            llc_working_set_ways: 5.0,
            mlp: 6.0,
            activity: 0.7,
        }
    }

    /// Checks that every field is inside the range the models were calibrated
    /// for.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        fn check(name: &str, v: f64, lo: f64, hi: f64) -> Result<(), String> {
            if !v.is_finite() || v < lo || v > hi {
                Err(format!("{name} = {v} outside [{lo}, {hi}]"))
            } else {
                Ok(())
            }
        }
        check("ilp", self.ilp, 0.2, 6.0)?;
        check("fe_sensitivity", self.fe_sensitivity, 0.0, 1.0)?;
        check("be_sensitivity", self.be_sensitivity, 0.0, 1.0)?;
        check("ls_sensitivity", self.ls_sensitivity, 0.0, 1.0)?;
        check("mem_fraction", self.mem_fraction, 0.05, 0.6)?;
        check("l1_miss_rate", self.l1_miss_rate, 0.005, 0.6)?;
        check("llc_miss_floor", self.llc_miss_floor, 0.0, 0.95)?;
        check("llc_working_set_ways", self.llc_working_set_ways, 0.1, 16.0)?;
        check("mlp", self.mlp, 1.0, 10.0)?;
        check("activity", self.activity, 0.4, 1.4)?;
        Ok(())
    }

    /// Replaces any field outside its calibrated range (or non-finite) with
    /// the corresponding field of `fallback`, counting each rejection in the
    /// process-wide [`out_of_range_rejections`] counter.
    ///
    /// This is the same reject-don't-coerce stance `metrics.rs` takes for
    /// NaN, adapted for a path where panicking is not acceptable: a derived
    /// profile (phase drift, perturbation) that escapes the calibrated space
    /// is resampled from the known-good base rather than silently clamped to
    /// a boundary the models were never validated at.
    #[must_use]
    pub fn rejecting_out_of_range(mut self, fallback: &AppProfile) -> AppProfile {
        fn guard(v: &mut f64, fb: f64, lo: f64, hi: f64) -> u64 {
            if !v.is_finite() || *v < lo || *v > hi {
                *v = fb;
                1
            } else {
                0
            }
        }
        let f = fallback;
        let rejected = guard(&mut self.ilp, f.ilp, 0.2, 6.0)
            + guard(&mut self.fe_sensitivity, f.fe_sensitivity, 0.0, 1.0)
            + guard(&mut self.be_sensitivity, f.be_sensitivity, 0.0, 1.0)
            + guard(&mut self.ls_sensitivity, f.ls_sensitivity, 0.0, 1.0)
            + guard(&mut self.mem_fraction, f.mem_fraction, 0.05, 0.6)
            + guard(&mut self.l1_miss_rate, f.l1_miss_rate, 0.005, 0.6)
            + guard(&mut self.llc_miss_floor, f.llc_miss_floor, 0.0, 0.95)
            + guard(
                &mut self.llc_working_set_ways,
                f.llc_working_set_ways,
                0.1,
                16.0,
            )
            + guard(&mut self.mlp, f.mlp, 1.0, 10.0)
            + guard(&mut self.activity, f.activity, 0.4, 1.4);
        if rejected > 0 {
            OUT_OF_RANGE_REJECTIONS.fetch_add(rejected, Ordering::Relaxed);
        }
        self
    }

    /// LLC miss ratio when the job holds `ways` ways.
    ///
    /// The curve is the classic exponential working-set model:
    /// `floor + (1 - floor) · exp(-ways / scale)` — convex and decreasing in
    /// the allocation, so extra ways always help but with diminishing
    /// returns.
    pub fn llc_miss_rate(&self, ways: f64) -> f64 {
        let span = 1.0 - self.llc_miss_floor;
        (self.llc_miss_floor + span * (-ways / self.llc_working_set_ways).exp()).clamp(0.0, 1.0)
    }

    /// LLC accesses per instruction (memory ops that miss the private
    /// caches).
    pub fn llc_accesses_per_instr(&self) -> f64 {
        self.mem_fraction * self.l1_miss_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_profiles_validate() {
        AppProfile::balanced().validate().unwrap();
        AppProfile::compute_bound().validate().unwrap();
        AppProfile::memory_bound().validate().unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = AppProfile::balanced();
        p.ilp = 9.0;
        assert!(p.validate().is_err());
        let mut p = AppProfile::balanced();
        p.mem_fraction = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn out_of_range_fields_fall_back_and_are_counted() {
        let base = AppProfile::balanced();
        let mut drifted = base;
        drifted.ilp = 9.0; // above calibrated range
        drifted.l1_miss_rate = f64::NAN;
        drifted.activity = 1.1; // fine — must survive untouched

        let before = out_of_range_rejections();
        let fixed = drifted.rejecting_out_of_range(&base);
        assert_eq!(fixed.ilp, base.ilp, "out-of-range field resampled");
        assert_eq!(fixed.l1_miss_rate, base.l1_miss_rate, "NaN field resampled");
        assert_eq!(fixed.activity, 1.1, "in-range field untouched");
        assert!(fixed.validate().is_ok());
        assert_eq!(out_of_range_rejections() - before, 2);

        // An already-valid profile passes through unchanged and uncounted.
        let mid = out_of_range_rejections();
        assert_eq!(base.rejecting_out_of_range(&base), base);
        assert_eq!(out_of_range_rejections(), mid);
    }

    #[test]
    fn miss_curve_is_monotonically_decreasing() {
        let p = AppProfile::memory_bound();
        let mut prev = p.llc_miss_rate(0.0);
        for i in 1..=32 {
            let m = p.llc_miss_rate(i as f64);
            assert!(m <= prev + 1e-12, "miss rate must not increase with ways");
            prev = m;
        }
    }

    #[test]
    fn miss_curve_approaches_floor() {
        let p = AppProfile::balanced();
        assert!((p.llc_miss_rate(1000.0) - p.llc_miss_floor).abs() < 1e-9);
        assert!(p.llc_miss_rate(0.0) <= 1.0);
    }

    #[test]
    fn llc_accesses_scale_with_memory_intensity() {
        assert!(
            AppProfile::memory_bound().llc_accesses_per_instr()
                > AppProfile::compute_bound().llc_accesses_per_instr()
        );
    }
}
