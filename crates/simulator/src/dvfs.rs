//! DVFS substrate: voltage/frequency operating points for fixed cores.
//!
//! The paper's motivation (§I, §II-A1) rests on DVFS losing steam as
//! technology scales: "the movement towards processors with razor-thin
//! voltage margins and the increase in leakage power consumption limit the
//! effectiveness of DVFS", while reconfigurable cores gate *capacity* and
//! therefore cut both dynamic and leakage power. This module models a
//! realistic DVFS ladder so that claim can be evaluated quantitatively
//! (see the `pareto_dvfs_vs_reconfig` experiment): above a voltage knee,
//! frequency scales with voltage (cubic dynamic-power savings); below it,
//! voltage has hit its margin floor and frequency scaling turns linear —
//! the "limited voltage scaling range" regime.

use serde::{Deserialize, Serialize};

use crate::config::{CacheAlloc, CoreConfig};
use crate::metrics::{Bips, Watts};
use crate::params::SystemParams;
use crate::perf::PerfModel;
use crate::power::{CoreKind, PowerModel};
use crate::profile::AppProfile;

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsState {
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Supply voltage relative to nominal.
    pub voltage_ratio: f64,
}

impl DvfsState {
    /// Dynamic-power multiplier relative to the nominal point: `f·V²`.
    pub fn dynamic_scale(&self, nominal_ghz: f64) -> f64 {
        (self.frequency_ghz / nominal_ghz) * self.voltage_ratio * self.voltage_ratio
    }

    /// Leakage multiplier relative to nominal: leakage tracks voltage
    /// roughly linearly in the near-threshold-adjacent regime.
    pub fn leakage_scale(&self) -> f64 {
        self.voltage_ratio
    }
}

/// A ladder of DVFS operating points for one core, highest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsLadder {
    nominal_ghz: f64,
    states: Vec<DvfsState>,
}

impl DvfsLadder {
    /// A modern-process ladder: frequency steps of 0.25 GHz from nominal
    /// down to half-nominal, with voltage scaling `V/V₀ = 0.55 + 0.45·f/f₀`
    /// *clamped at a 0.88 margin floor* — at 22 nm with a 0.8 V nominal
    /// supply, Vmin guardbands leave roughly 0.7 V, i.e. ~0.88 of nominal.
    /// Points below the knee save only linear (frequency) dynamic power and
    /// no leakage, which is exactly the razor-thin-margin effect the paper
    /// describes.
    pub fn modern(params: &SystemParams) -> DvfsLadder {
        let nominal = params.frequency_ghz;
        let mut states = Vec::new();
        let mut f = nominal;
        while f >= nominal * 0.5 - 1e-9 {
            let unclamped = 0.55 + 0.45 * f / nominal;
            states.push(DvfsState {
                frequency_ghz: f,
                voltage_ratio: unclamped.max(0.88),
            });
            f -= 0.25;
        }
        DvfsLadder {
            nominal_ghz: nominal,
            states,
        }
    }

    /// An idealized wide-margin ladder (older process nodes): voltage
    /// scales all the way down with frequency, no floor. Used as the
    /// optimistic bound in the Pareto comparison.
    pub fn wide_margin(params: &SystemParams) -> DvfsLadder {
        let mut ladder = DvfsLadder::modern(params);
        for s in &mut ladder.states {
            s.voltage_ratio = 0.55 + 0.45 * s.frequency_ghz / ladder.nominal_ghz;
        }
        ladder
    }

    /// Nominal frequency in GHz.
    pub fn nominal_ghz(&self) -> f64 {
        self.nominal_ghz
    }

    /// Operating points, highest frequency first.
    pub fn states(&self) -> &[DvfsState] {
        &self.states
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the ladder is empty (never, for the built-in constructors).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Performance and power of one core at a DVFS operating point.
///
/// Frequency changes what a "cycle" means for the memory system: DRAM
/// latency in nanoseconds is fixed, so at lower frequency the *cycle* cost
/// of a miss shrinks — memory-bound applications lose much less performance
/// from down-clocking than compute-bound ones, which is why maxBIPS-style
/// allocators prefer to down-clock them first.
#[derive(Debug, Clone, Copy)]
pub struct DvfsModel {
    params: SystemParams,
    power: PowerModel,
}

impl DvfsModel {
    /// Builds the model for conventional fixed cores (DVFS is the
    /// alternative knob to reconfiguration, not an addition to it here).
    pub fn new(params: SystemParams) -> DvfsModel {
        DvfsModel {
            params,
            power: PowerModel::new(params, CoreKind::Fixed),
        }
    }

    /// IPC at `state`, accounting for the frequency-dependent memory-stall
    /// cost.
    pub fn ipc(
        &self,
        app: &AppProfile,
        config: CoreConfig,
        cache: CacheAlloc,
        state: DvfsState,
    ) -> f64 {
        // Memory latencies in cycles scale with frequency; rebuild a
        // parameter set at the target frequency.
        let f_ratio = state.frequency_ghz / self.params.frequency_ghz;
        let scaled = SystemParams {
            llc_latency_cycles: self.params.llc_latency_cycles * f_ratio,
            dram_latency_cycles: self.params.dram_latency_cycles * f_ratio,
            ..self.params
        };
        PerfModel::new(scaled).ipc(app, config, cache.ways(), 0.0)
    }

    /// Throughput at `state` in BIPS.
    pub fn bips(
        &self,
        app: &AppProfile,
        config: CoreConfig,
        cache: CacheAlloc,
        state: DvfsState,
    ) -> Bips {
        Bips::new(self.ipc(app, config, cache, state) * state.frequency_ghz)
    }

    /// Core power at `state` in Watts: dynamic scaled by `f·V²`, leakage by
    /// `V`, evaluated through the same calibrated power model as the
    /// reconfiguration experiments.
    pub fn watts(
        &self,
        app: &AppProfile,
        config: CoreConfig,
        cache: CacheAlloc,
        state: DvfsState,
    ) -> Watts {
        let ipc = self.ipc(app, config, cache, state);
        // Split the nominal-point power into dynamic and leakage by
        // evaluating the model at zero activity (leakage + idle dynamic).
        let total = self.power.core_watts(app, config, ipc).get();
        let idle = self.power.core_watts(app, config, 0.0).get();
        // Treat the idle draw as ~60% leakage / 40% clock-tree dynamic.
        let leakage = idle * 0.6;
        let dynamic = total - leakage;
        Watts::new(
            dynamic * state.dynamic_scale(self.params.frequency_ghz)
                + leakage * state.leakage_scale(),
        )
    }

    /// The `(bips, watts)` trade-off curve of one application across the
    /// ladder, at a fixed (widest) core configuration.
    pub fn frontier(
        &self,
        app: &AppProfile,
        cache: CacheAlloc,
        ladder: &DvfsLadder,
    ) -> Vec<(f64, f64)> {
        ladder
            .states()
            .iter()
            .map(|&s| {
                (
                    self.bips(app, CoreConfig::widest(), cache, s).get(),
                    self.watts(app, CoreConfig::widest(), cache, s).get(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DvfsModel, DvfsLadder, DvfsLadder) {
        let params = SystemParams::default();
        (
            DvfsModel::new(params),
            DvfsLadder::modern(&params),
            DvfsLadder::wide_margin(&params),
        )
    }

    #[test]
    fn ladder_spans_half_to_nominal() {
        let (_, modern, _) = setup();
        assert_eq!(modern.states()[0].frequency_ghz, 4.0);
        assert!(modern.states().last().unwrap().frequency_ghz >= 2.0 - 1e-9);
        assert!(modern.len() >= 8);
        assert!(!modern.is_empty());
    }

    #[test]
    fn modern_ladder_hits_the_voltage_floor() {
        let (_, modern, wide) = setup();
        let lowest_modern = modern.states().last().unwrap();
        let lowest_wide = wide.states().last().unwrap();
        assert_eq!(lowest_modern.voltage_ratio, 0.88, "margin floor must bind");
        assert!(
            lowest_wide.voltage_ratio < 0.88,
            "wide-margin ladder keeps scaling"
        );
    }

    #[test]
    fn downclocking_saves_power_and_costs_performance() {
        let (model, modern, _) = setup();
        let app = AppProfile::balanced();
        let hi = modern.states()[0];
        let lo = *modern.states().last().unwrap();
        let b_hi = model
            .bips(&app, CoreConfig::widest(), CacheAlloc::Two, hi)
            .get();
        let b_lo = model
            .bips(&app, CoreConfig::widest(), CacheAlloc::Two, lo)
            .get();
        let w_hi = model
            .watts(&app, CoreConfig::widest(), CacheAlloc::Two, hi)
            .get();
        let w_lo = model
            .watts(&app, CoreConfig::widest(), CacheAlloc::Two, lo)
            .get();
        assert!(b_hi > b_lo);
        assert!(w_hi > w_lo);
    }

    #[test]
    fn memory_bound_apps_lose_less_from_downclocking() {
        let (model, modern, _) = setup();
        let lo = *modern.states().last().unwrap();
        let hi = modern.states()[0];
        let ratio = |app: &AppProfile| {
            model
                .bips(app, CoreConfig::widest(), CacheAlloc::Two, lo)
                .get()
                / model
                    .bips(app, CoreConfig::widest(), CacheAlloc::Two, hi)
                    .get()
        };
        assert!(
            ratio(&AppProfile::memory_bound()) > ratio(&AppProfile::compute_bound()),
            "memory-bound should retain more throughput at low frequency"
        );
    }

    #[test]
    fn wide_margins_save_more_power_at_the_bottom() {
        let (model, modern, wide) = setup();
        let app = AppProfile::balanced();
        let lo_m = *modern.states().last().unwrap();
        let lo_w = *wide.states().last().unwrap();
        let w_m = model
            .watts(&app, CoreConfig::widest(), CacheAlloc::Two, lo_m)
            .get();
        let w_w = model
            .watts(&app, CoreConfig::widest(), CacheAlloc::Two, lo_w)
            .get();
        assert!(
            w_w < w_m,
            "the voltage floor must cost power at the ladder bottom"
        );
    }

    #[test]
    fn frontier_is_monotone_in_the_ladder() {
        let (model, modern, _) = setup();
        let front = model.frontier(&AppProfile::balanced(), CacheAlloc::Two, &modern);
        assert_eq!(front.len(), modern.len());
        for pair in front.windows(2) {
            assert!(pair[0].0 >= pair[1].0, "bips decreases down the ladder");
            assert!(pair[0].1 >= pair[1].1, "watts decreases down the ladder");
        }
    }
}
