//! Chip-level simulation: cores, job assignments, and frame execution.
//!
//! The chip advances in *frames* (1 ms profiling samples or 100 ms decision
//! timeslices). Within a frame, each active core runs its assigned job at a
//! fixed configuration; the simulator solves a small fixed point between
//! throughput and memory-bandwidth contention (more throughput → more DRAM
//! traffic → more contention → less throughput) and reports per-core and
//! per-job throughput, power, and instruction counts.

use serde::{Deserialize, Serialize};

use crate::cache::{BandwidthModel, LlcPartition};
use crate::config::CoreConfig;
use crate::metrics::{Bips, Watts};
use crate::params::SystemParams;
use crate::perf::PerfModel;
use crate::power::{CoreKind, PowerModel};
use crate::profile::AppProfile;

/// Identifier of a job (an application instance) on the chip.
///
/// Job ids index the job table supplied to [`Chip::simulate_frame`]; a
/// latency-critical service running on several cores is one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub usize);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// State of one core during a frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoreState {
    /// Running `job` at `config`.
    Active {
        /// The job occupying the core.
        job: JobId,
        /// The core configuration for the frame.
        config: CoreConfig,
    },
    /// Power-gated (C6): draws only residual power, executes nothing.
    Gated,
    /// Powered but unassigned: draws idle power at the narrowest
    /// configuration, executes nothing.
    Idle,
}

impl CoreState {
    /// The job running on this core, if any.
    pub fn job(&self) -> Option<JobId> {
        match self {
            CoreState::Active { job, .. } => Some(*job),
            _ => None,
        }
    }

    /// The active configuration, if the core is active.
    pub fn config(&self) -> Option<CoreConfig> {
        match self {
            CoreState::Active { config, .. } => Some(*config),
            _ => None,
        }
    }
}

/// A full per-core assignment for one frame.
pub type CoreAssignment = Vec<CoreState>;

/// Results of simulating one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameResult {
    /// Frame duration in milliseconds.
    pub duration_ms: f64,
    /// Throughput of each core (zero for gated/idle cores).
    pub per_core_bips: Vec<Bips>,
    /// Power of each core, including gated/idle residuals.
    pub per_core_watts: Vec<Watts>,
    /// Aggregate throughput of each job across all its cores.
    pub per_job_bips: Vec<Bips>,
    /// Aggregate power attributable to each job (cores + LLC share).
    pub per_job_watts: Vec<Watts>,
    /// Total chip power, including idle cores and unattributed LLC leakage.
    pub chip_watts: Watts,
    /// Converged bandwidth contention factor (0 = uncontended).
    pub contention: f64,
}

impl FrameResult {
    /// Instructions executed by core `i` during the frame.
    pub fn core_instructions(&self, i: usize) -> f64 {
        self.per_core_bips[i].get() * 1e6 * self.duration_ms
    }

    /// Instructions executed by job `j` during the frame.
    pub fn job_instructions(&self, j: JobId) -> f64 {
        self.per_job_bips[j.0].get() * 1e6 * self.duration_ms
    }

    /// Total instructions executed on the chip during the frame.
    pub fn total_instructions(&self) -> f64 {
        self.per_core_bips
            .iter()
            .map(|b| b.get() * 1e6 * self.duration_ms)
            .sum()
    }
}

/// A simulated multicore chip.
///
/// The chip owns the performance, power, and bandwidth models; it is
/// stateless across frames (assignments are inputs), which keeps resource
/// managers free to explore hypothetical assignments through the same API.
#[derive(Debug, Clone, Copy)]
pub struct Chip {
    params: SystemParams,
    perf: PerfModel,
    power: PowerModel,
    bandwidth: BandwidthModel,
    kind: CoreKind,
}

impl Chip {
    /// Builds a chip of `kind` cores with the given parameters.
    pub fn new(params: SystemParams, kind: CoreKind) -> Chip {
        Chip {
            params,
            perf: PerfModel::new(params),
            power: PowerModel::new(params, kind),
            bandwidth: BandwidthModel::new(&params),
            kind,
        }
    }

    /// System parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The performance model (shared with oracle baselines).
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The core kind of this chip.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// Throughput of one core of this chip's kind (applies the reconfigurable
    /// frequency penalty when appropriate).
    pub fn core_bips(
        &self,
        app: &AppProfile,
        config: CoreConfig,
        ways: f64,
        contention: f64,
    ) -> Bips {
        let ipc = self.perf.ipc(app, config, ways, contention);
        let freq = match self.kind {
            CoreKind::Reconfigurable => self.params.reconfig_frequency_ghz(),
            CoreKind::Fixed => self.params.frequency_ghz,
        };
        Bips::new(ipc * freq)
    }

    /// Simulates one frame.
    ///
    /// `cores` gives the state of each core (its length is the core count for
    /// the frame and must not exceed `params.num_cores`); `profiles[j]` is the
    /// application behind `JobId(j)`; `partition` gives each job's LLC ways.
    ///
    /// # Panics
    ///
    /// Panics if an assignment references a job outside `profiles`, if
    /// `cores` exceeds the chip's core count, or if `duration_ms` is not
    /// positive.
    pub fn simulate_frame(
        &self,
        cores: &[CoreState],
        profiles: &[AppProfile],
        partition: &LlcPartition,
        duration_ms: f64,
    ) -> FrameResult {
        assert!(duration_ms > 0.0, "frame duration must be positive");
        assert!(
            cores.len() <= self.params.num_cores,
            "assignment has {} cores but chip has {}",
            cores.len(),
            self.params.num_cores
        );
        for c in cores {
            if let Some(job) = c.job() {
                assert!(
                    job.0 < profiles.len(),
                    "assignment references unknown {job}"
                );
            }
        }

        // Fixed point between throughput and bandwidth contention: start
        // uncontended, recompute traffic, damp the update.
        let mut contention = 0.0;
        for _ in 0..6 {
            let mut traffic = 0.0;
            for core in cores {
                if let CoreState::Active { job, config } = core {
                    let app = &profiles[job.0];
                    let ways = partition.get_or_default(*job).ways();
                    let bips = self.core_bips(app, *config, ways, contention);
                    traffic += self.perf.dram_traffic_gaps(app, bips, ways);
                }
            }
            let next = self.bandwidth.contention(traffic);
            contention = 0.5 * contention + 0.5 * next;
        }

        let mut per_core_bips = Vec::with_capacity(cores.len());
        let mut per_core_watts = Vec::with_capacity(cores.len());
        let mut per_job_bips = vec![Bips::ZERO; profiles.len()];
        let mut per_job_watts = vec![Watts::ZERO; profiles.len()];
        let mut chip_watts = Watts::ZERO;

        for core in cores {
            match core {
                CoreState::Active { job, config } => {
                    let app = &profiles[job.0];
                    let cache = partition.get_or_default(*job);
                    let ipc = self.perf.ipc(app, *config, cache.ways(), contention);
                    let bips = self.core_bips(app, *config, cache.ways(), contention);
                    let core_w = self.power.core_watts(app, *config, ipc);
                    per_core_bips.push(bips);
                    per_core_watts.push(core_w);
                    per_job_bips[job.0] += bips;
                    per_job_watts[job.0] += core_w;
                    chip_watts += core_w;
                }
                CoreState::Gated => {
                    let w = self.power.gated_core_watts();
                    per_core_bips.push(Bips::ZERO);
                    per_core_watts.push(w);
                    chip_watts += w;
                }
                CoreState::Idle => {
                    // An idle core clocks at the narrowest configuration with
                    // no work: leakage plus idle dynamic power.
                    let app = AppProfile::balanced();
                    let w = self.power.core_watts(&app, CoreConfig::narrowest(), 0.0);
                    per_core_bips.push(Bips::ZERO);
                    per_core_watts.push(w);
                    chip_watts += w;
                }
            }
        }

        // LLC power: each job's allocated-way leakage plus traffic dynamic
        // energy, attributed to the job and added to chip power.
        for (job, cache) in partition.iter() {
            if job.0 >= profiles.len() {
                continue;
            }
            let app = &profiles[job.0];
            let traffic = self
                .perf
                .dram_traffic_gaps(app, per_job_bips[job.0], cache.ways());
            let w = self.power.llc_watts(cache, traffic);
            per_job_watts[job.0] += w;
            chip_watts += w;
        }

        FrameResult {
            duration_ms,
            per_core_bips,
            per_core_watts,
            per_job_bips,
            per_job_watts,
            chip_watts,
            contention,
        }
    }

    /// The paper's power budget definition (§VII-A): the average per-core
    /// power across all supplied jobs running on reconfigurable cores at the
    /// widest configuration, scaled to the chip's core count.
    pub fn nominal_power_budget(&self, profiles: &[AppProfile]) -> Watts {
        assert!(
            !profiles.is_empty(),
            "need at least one profile for a budget"
        );
        let reconf = PowerModel::new(self.params, CoreKind::Reconfigurable);
        let total: f64 = profiles
            .iter()
            .map(|app| {
                let ipc = self.perf.ipc(app, CoreConfig::widest(), 1.0, 0.0);
                let bips = Bips::new(ipc * self.params.reconfig_frequency_ghz());
                reconf
                    .job_core_watts(app, CoreConfig::widest(), crate::CacheAlloc::One, ipc, bips)
                    .get()
            })
            .sum();
        Watts::new(total / profiles.len() as f64 * self.params.num_cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheAlloc;

    fn simple_setup() -> (Chip, Vec<AppProfile>, LlcPartition) {
        let chip = Chip::new(SystemParams::default(), CoreKind::Reconfigurable);
        let profiles = vec![
            AppProfile::balanced(),
            AppProfile::compute_bound(),
            AppProfile::memory_bound(),
        ];
        let partition: LlcPartition = (0..3).map(|i| (JobId(i), CacheAlloc::Two)).collect();
        (chip, profiles, partition)
    }

    #[test]
    fn frame_accounts_every_core() {
        let (chip, profiles, partition) = simple_setup();
        let cores = vec![
            CoreState::Active {
                job: JobId(0),
                config: CoreConfig::widest(),
            },
            CoreState::Active {
                job: JobId(1),
                config: CoreConfig::narrowest(),
            },
            CoreState::Gated,
            CoreState::Idle,
        ];
        let r = chip.simulate_frame(&cores, &profiles, &partition, 1.0);
        assert_eq!(r.per_core_bips.len(), 4);
        assert_eq!(r.per_core_watts.len(), 4);
        assert!(r.per_core_bips[0].get() > 0.0);
        assert_eq!(r.per_core_bips[2].get(), 0.0);
        assert_eq!(r.per_core_bips[3].get(), 0.0);
        assert!(r.per_core_watts[2].get() < r.per_core_watts[3].get());
    }

    #[test]
    fn multi_core_job_aggregates_throughput() {
        let (chip, profiles, partition) = simple_setup();
        let one = vec![CoreState::Active {
            job: JobId(0),
            config: CoreConfig::widest(),
        }];
        let two = vec![
            CoreState::Active {
                job: JobId(0),
                config: CoreConfig::widest(),
            },
            CoreState::Active {
                job: JobId(0),
                config: CoreConfig::widest(),
            },
        ];
        let r1 = chip.simulate_frame(&one, &profiles, &partition, 1.0);
        let r2 = chip.simulate_frame(&two, &profiles, &partition, 1.0);
        let ratio = r2.per_job_bips[0] / r1.per_job_bips[0];
        assert!(ratio > 1.8 && ratio <= 2.0 + 1e-9);
    }

    #[test]
    fn chip_power_is_sum_of_parts() {
        let (chip, profiles, partition) = simple_setup();
        let cores = vec![
            CoreState::Active {
                job: JobId(0),
                config: CoreConfig::widest(),
            },
            CoreState::Active {
                job: JobId(2),
                config: CoreConfig::widest(),
            },
            CoreState::Gated,
        ];
        let r = chip.simulate_frame(&cores, &profiles, &partition, 100.0);
        let core_sum: f64 = r.per_core_watts.iter().map(|w| w.get()).sum();
        assert!(
            r.chip_watts.get() > core_sum,
            "chip power must include LLC power"
        );
    }

    #[test]
    fn saturating_the_chip_raises_contention() {
        let (chip, profiles, _) = simple_setup();
        let partition: LlcPartition = (0..3).map(|i| (JobId(i), CacheAlloc::Half)).collect();
        let light = vec![CoreState::Active {
            job: JobId(2),
            config: CoreConfig::widest(),
        }];
        let heavy: Vec<CoreState> = (0..32)
            .map(|_| CoreState::Active {
                job: JobId(2),
                config: CoreConfig::widest(),
            })
            .collect();
        let r_light = chip.simulate_frame(&light, &profiles, &partition, 1.0);
        let r_heavy = chip.simulate_frame(&heavy, &profiles, &partition, 1.0);
        assert_eq!(r_light.contention, 0.0);
        assert!(
            r_heavy.contention > 0.0,
            "32 memory-bound cores should contend"
        );
        assert!(r_heavy.per_core_bips[0].get() < r_light.per_core_bips[0].get());
    }

    #[test]
    fn instructions_scale_with_duration() {
        let (chip, profiles, partition) = simple_setup();
        let cores = vec![CoreState::Active {
            job: JobId(0),
            config: CoreConfig::widest(),
        }];
        let r1 = chip.simulate_frame(&cores, &profiles, &partition, 1.0);
        let r100 = chip.simulate_frame(&cores, &profiles, &partition, 100.0);
        let ratio = r100.core_instructions(0) / r1.core_instructions(0);
        assert!((ratio - 100.0).abs() < 1e-6);
        assert!((r1.total_instructions() - r1.job_instructions(JobId(0))).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown job")]
    fn unknown_job_panics() {
        let (chip, profiles, partition) = simple_setup();
        let cores = vec![CoreState::Active {
            job: JobId(9),
            config: CoreConfig::widest(),
        }];
        let _ = chip.simulate_frame(&cores, &profiles, &partition, 1.0);
    }

    #[test]
    #[should_panic(expected = "cores but chip has")]
    fn too_many_cores_panics() {
        let chip = Chip::new(SystemParams::paper_16core(), CoreKind::Fixed);
        let cores = vec![CoreState::Gated; 17];
        let _ = chip.simulate_frame(&cores, &[], &LlcPartition::new(), 1.0);
    }

    #[test]
    fn fixed_cores_outrun_reconfigurable_at_same_config() {
        let params = SystemParams::default();
        let profiles = vec![AppProfile::balanced()];
        let partition: LlcPartition = [(JobId(0), CacheAlloc::Two)].into_iter().collect();
        let cores = vec![CoreState::Active {
            job: JobId(0),
            config: CoreConfig::widest(),
        }];
        let reconf = Chip::new(params, CoreKind::Reconfigurable)
            .simulate_frame(&cores, &profiles, &partition, 1.0);
        let fixed =
            Chip::new(params, CoreKind::Fixed).simulate_frame(&cores, &profiles, &partition, 1.0);
        assert!(fixed.per_job_bips[0].get() > reconf.per_job_bips[0].get());
        assert!(fixed.per_job_watts[0].get() < reconf.per_job_watts[0].get());
    }

    #[test]
    fn nominal_budget_scales_with_core_count() {
        let profiles = vec![AppProfile::balanced()];
        let b32 = Chip::new(SystemParams::default(), CoreKind::Reconfigurable)
            .nominal_power_budget(&profiles);
        let b16 = Chip::new(SystemParams::paper_16core(), CoreKind::Reconfigurable)
            .nominal_power_budget(&profiles);
        assert!((b32.get() / b16.get() - 2.0).abs() < 1e-9);
    }
}
