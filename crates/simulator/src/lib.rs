//! Reconfigurable multicore simulator substrate.
//!
//! This crate stands in for the zsim + McPAT v1.3 infrastructure used by the
//! CuttleSys paper (MICRO 2020). It models a multicore in which every core is
//! split into three sections — front-end (FE), back-end (BE), and load/store
//! (LS) — each independently configurable to six-, four-, or two-wide, for a
//! total of 27 core configurations, plus a way-partitioned last level cache.
//!
//! The simulator is *analytic* rather than cycle-accurate: it produces the
//! same interface the CuttleSys runtime consumes — throughput (BIPS), power
//! (Watts), and per-core instruction counts as a function of the assigned
//! application, core configuration, LLC way allocation, and chip-level
//! contention — with the qualitative shapes the paper's evaluation depends on
//! (section-width bottlenecks, cache miss curves, bandwidth contention, and
//! the energy/frequency tax of reconfigurable cores).
//!
//! # Quick example
//!
//! ```
//! use simulator::{AppProfile, CoreConfig, CacheAlloc, SystemParams, PerfModel};
//!
//! let params = SystemParams::default();
//! let perf = PerfModel::new(params);
//! let app = AppProfile::balanced();
//! let wide = perf.bips(&app, CoreConfig::widest(), CacheAlloc::Four, 0.0);
//! let narrow = perf.bips(&app, CoreConfig::narrowest(), CacheAlloc::Half, 0.0);
//! assert!(wide.get() > narrow.get());
//! ```

pub mod cache;
pub mod chip;
pub mod config;
pub mod dvfs;
pub mod fault;
pub mod metrics;
pub mod params;
pub mod perf;
pub mod power;
pub mod profile;

pub use cache::{BandwidthModel, LlcPartition};
pub use chip::{Chip, CoreAssignment, CoreState, FrameResult, JobId};
pub use config::{
    CacheAlloc, CoreConfig, JobConfig, Section, SectionWidth, NUM_CACHE_ALLOCS, NUM_CORE_CONFIGS,
    NUM_JOB_CONFIGS,
};
pub use dvfs::{DvfsLadder, DvfsModel, DvfsState};
pub use fault::{Corruption, FaultStream};
pub use metrics::{Bips, Millis, Watts};
pub use params::SystemParams;
pub use perf::PerfModel;
pub use power::PowerModel;
pub use profile::AppProfile;
