//! Synthetic workload models for the CuttleSys reproduction.
//!
//! The paper evaluates on SPEC CPU2006 binaries (batch) and TailBench
//! interactive services (latency-critical), neither of which can run inside
//! an analytic simulator. This crate supplies the closest synthetic
//! equivalents:
//!
//! * [`batch`] — a catalog of 28 named SPEC CPU2006 application profiles with
//!   hand-assigned microarchitectural characteristics, split 16/12 into the
//!   training and testing sets of §VII-A, plus the multiprogrammed mix
//!   generator.
//! * [`latency`] — the five TailBench services with the paper's saturation
//!   loads, each mapped to a queueing model whose per-request service rate is
//!   driven by the simulator's performance model.
//! * [`queueing`] — an analytic M/M/k tail-latency model with explicit
//!   saturation behaviour.
//! * [`des`] — a discrete-event M/G/k queue simulator used to validate the
//!   analytic model and to produce noisy runtime measurements.
//! * [`loadgen`] — constant, diurnal, step, and spike input-load patterns
//!   (§VIII-D).
//! * [`phase`] — slow application phase drift, the source of runtime
//!   prediction error in Fig. 5(b).
//!
//! # Quick example
//!
//! ```
//! use workloads::{batch, latency};
//!
//! assert_eq!(batch::catalog().len(), 28);
//! assert_eq!(batch::training_set().len(), 16);
//! assert_eq!(batch::testing_set().len(), 12);
//! let xapian = latency::service_by_name("xapian").unwrap();
//! assert_eq!(xapian.max_qps, 22_000.0);
//! ```

pub mod batch;
pub mod des;
pub mod latency;
pub mod loadgen;
pub mod oracle;
pub mod phase;
pub mod queueing;

pub use batch::{SpecBenchmark, SpecMix};
pub use des::DesQueue;
pub use latency::LcService;
pub use loadgen::LoadPattern;
pub use oracle::Oracle;
pub use phase::PhasedProfile;
pub use queueing::MmcQueue;
