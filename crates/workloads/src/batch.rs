//! Synthetic SPEC CPU2006 batch application catalog.
//!
//! The paper's batch jobs are multiprogrammed mixes drawn from 28 SPEC
//! CPU2006 benchmarks (§VII-A). We cannot run the binaries, so each benchmark
//! gets a hand-assigned [`AppProfile`] reflecting its published
//! characterization (memory-bound vs. compute-bound, branchy front-ends,
//! cache working sets). What matters for reproducing the paper is not each
//! profile's absolute accuracy but that the catalog spans a *diverse,
//! correlated* space: collaborative filtering works precisely because unseen
//! applications resemble linear mixtures of previously seen ones.
//!
//! As in the paper, 16 benchmarks form the offline training set for the
//! reconstruction algorithm and the remaining 12 are the testing set from
//! which multiprogrammed mixes are drawn, so training and testing never
//! overlap.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use simulator::AppProfile;

/// A named synthetic SPEC CPU2006 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SpecBenchmark {
    /// The SPEC benchmark name, e.g. `"mcf"`.
    pub name: &'static str,
    /// Its microarchitectural profile.
    pub profile: AppProfile,
}

/// A multiprogrammed mix: one benchmark per batch core.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpecMix {
    /// Seed the mix was drawn with (for reproducibility in reports).
    pub seed: u64,
    /// The benchmarks in core order.
    pub apps: Vec<SpecBenchmark>,
}

impl SpecMix {
    /// Profiles of the mix in core order.
    pub fn profiles(&self) -> Vec<AppProfile> {
        self.apps.iter().map(|a| a.profile).collect()
    }

    /// Names of the mix in core order.
    pub fn names(&self) -> Vec<&'static str> {
        self.apps.iter().map(|a| a.name).collect()
    }
}

#[allow(clippy::too_many_arguments)] // positional catalog-row constructor, used table-style
fn p(
    ilp: f64,
    fe: f64,
    be: f64,
    ls: f64,
    mem: f64,
    l1m: f64,
    floor: f64,
    ws: f64,
    mlp: f64,
    act: f64,
) -> AppProfile {
    AppProfile {
        ilp,
        fe_sensitivity: fe,
        be_sensitivity: be,
        ls_sensitivity: ls,
        mem_fraction: mem,
        l1_miss_rate: l1m,
        llc_miss_floor: floor,
        llc_working_set_ways: ws,
        mlp,
        activity: act,
    }
}

/// The full 28-benchmark catalog in a fixed order.
///
/// Profiles follow the standard SPEC CPU2006 characterization literature:
/// `mcf`/`lbm`/`libquantum`/`milc` are memory-bound with large working sets,
/// `povray`/`gamess`/`namd` are compute-bound with tiny footprints,
/// `perlbench`/`gcc`/`sjeng`/`gobmk` are branchy and front-end sensitive, and
/// the rest sit in between.
pub fn catalog() -> Vec<SpecBenchmark> {
    let b = |name, profile| SpecBenchmark { name, profile };
    vec![
        // --- branchy / front-end sensitive integer codes ---
        b(
            "perlbench",
            p(2.8, 0.85, 0.45, 0.30, 0.32, 0.060, 0.10, 1.6, 2.2, 1.05),
        ),
        b(
            "gcc",
            p(2.4, 0.80, 0.40, 0.35, 0.34, 0.090, 0.18, 2.6, 2.5, 0.95),
        ),
        b(
            "sjeng",
            p(2.2, 0.75, 0.50, 0.25, 0.26, 0.050, 0.08, 1.2, 1.8, 1.00),
        ),
        b(
            "gobmk",
            p(2.0, 0.78, 0.48, 0.22, 0.28, 0.055, 0.09, 1.4, 1.9, 0.98),
        ),
        b(
            "xalancbmk",
            p(2.3, 0.72, 0.42, 0.40, 0.36, 0.110, 0.16, 3.0, 2.8, 0.92),
        ),
        b(
            "astar",
            p(1.9, 0.60, 0.38, 0.45, 0.38, 0.120, 0.20, 2.8, 2.4, 0.88),
        ),
        // --- compute-bound floating point ---
        b(
            "povray",
            p(4.6, 0.70, 0.92, 0.15, 0.16, 0.015, 0.04, 0.6, 1.6, 1.25),
        ),
        b(
            "gamess",
            p(4.3, 0.60, 0.88, 0.18, 0.20, 0.020, 0.05, 0.7, 1.8, 1.20),
        ),
        b(
            "namd",
            p(4.0, 0.50, 0.85, 0.22, 0.24, 0.025, 0.06, 0.9, 2.0, 1.18),
        ),
        b(
            "gromacs",
            p(3.7, 0.52, 0.80, 0.25, 0.26, 0.030, 0.07, 1.0, 2.1, 1.12),
        ),
        b(
            "calculix",
            p(3.5, 0.48, 0.78, 0.28, 0.27, 0.035, 0.08, 1.2, 2.2, 1.10),
        ),
        b(
            "h264ref",
            p(3.8, 0.65, 0.82, 0.24, 0.25, 0.030, 0.06, 0.9, 2.0, 1.15),
        ),
        b(
            "hmmer",
            p(3.6, 0.45, 0.84, 0.20, 0.28, 0.028, 0.05, 0.8, 1.9, 1.14),
        ),
        // --- memory-bound ---
        b(
            "mcf",
            p(1.1, 0.18, 0.22, 0.92, 0.44, 0.300, 0.42, 6.5, 5.5, 0.62),
        ),
        b(
            "lbm",
            p(1.4, 0.15, 0.30, 0.88, 0.46, 0.260, 0.55, 8.0, 7.0, 0.70),
        ),
        b(
            "libquantum",
            p(1.3, 0.12, 0.25, 0.90, 0.40, 0.280, 0.70, 10.0, 7.5, 0.65),
        ),
        b(
            "milc",
            p(1.5, 0.20, 0.35, 0.80, 0.42, 0.220, 0.45, 6.0, 5.0, 0.72),
        ),
        b(
            "soplex",
            p(1.7, 0.30, 0.40, 0.70, 0.38, 0.180, 0.30, 4.5, 4.0, 0.78),
        ),
        b(
            "omnetpp",
            p(1.6, 0.40, 0.35, 0.65, 0.40, 0.160, 0.28, 4.0, 3.2, 0.80),
        ),
        b(
            "GemsFDTD",
            p(1.8, 0.22, 0.45, 0.75, 0.41, 0.200, 0.38, 5.5, 5.2, 0.76),
        ),
        b(
            "leslie3d",
            p(2.0, 0.25, 0.50, 0.68, 0.39, 0.170, 0.32, 4.8, 4.6, 0.82),
        ),
        b(
            "bwaves",
            p(1.9, 0.18, 0.48, 0.72, 0.43, 0.190, 0.40, 5.8, 5.8, 0.75),
        ),
        // --- mixed behaviour ---
        b(
            "bzip2",
            p(2.6, 0.55, 0.55, 0.45, 0.33, 0.080, 0.14, 2.2, 2.6, 0.96),
        ),
        b(
            "cactusADM",
            p(2.5, 0.35, 0.65, 0.55, 0.35, 0.100, 0.22, 3.2, 3.4, 0.90),
        ),
        b(
            "zeusmp",
            p(2.7, 0.38, 0.68, 0.50, 0.34, 0.090, 0.18, 2.8, 3.0, 0.94),
        ),
        b(
            "sphinx3",
            p(2.3, 0.58, 0.52, 0.52, 0.36, 0.120, 0.24, 3.4, 3.0, 0.88),
        ),
        b(
            "wrf",
            p(2.9, 0.42, 0.70, 0.42, 0.32, 0.075, 0.15, 2.4, 2.8, 1.00),
        ),
        b(
            "specrand",
            p(3.1, 0.30, 0.60, 0.30, 0.22, 0.040, 0.10, 1.5, 2.0, 1.02),
        ),
    ]
}

/// Names of the 16 offline-training benchmarks (§VIII-A2).
///
/// The split is fixed (the paper selected randomly once) and chosen to keep
/// each behavioural family represented on both sides, which is what makes
/// collaborative filtering work for the held-out testing set.
pub const TRAINING_NAMES: [&str; 16] = [
    "perlbench",
    "sjeng",
    "xalancbmk",
    "povray",
    "namd",
    "calculix",
    "hmmer",
    "mcf",
    "libquantum",
    "soplex",
    "GemsFDTD",
    "bwaves",
    "bzip2",
    "zeusmp",
    "wrf",
    "specrand",
];

/// Names of the 12 held-out testing benchmarks used to build mixes.
pub const TESTING_NAMES: [&str; 12] = [
    "gcc",
    "gobmk",
    "astar",
    "gamess",
    "gromacs",
    "h264ref",
    "lbm",
    "milc",
    "omnetpp",
    "leslie3d",
    "cactusADM",
    "sphinx3",
];

fn by_names(names: &[&str]) -> Vec<SpecBenchmark> {
    let cat = catalog();
    names
        .iter()
        .map(|n| {
            *cat.iter()
                .find(|b| &b.name == n)
                .unwrap_or_else(|| panic!("unknown benchmark {n}"))
        })
        .collect()
}

/// The 16 offline-training benchmarks.
pub fn training_set() -> Vec<SpecBenchmark> {
    by_names(&TRAINING_NAMES)
}

/// The 12 held-out testing benchmarks.
pub fn testing_set() -> Vec<SpecBenchmark> {
    by_names(&TESTING_NAMES)
}

/// Draws a multiprogrammed mix of `size` benchmarks by sampling the testing
/// set with replacement, as in §VII-A ("randomly selecting one of the
/// remaining SPEC CPU2006 benchmarks to run on each core").
pub fn mix(size: usize, seed: u64) -> SpecMix {
    let testing = testing_set();
    let mut rng = StdRng::seed_from_u64(seed);
    let apps = (0..size)
        .map(|_| testing[rng.random_range(0..testing.len())])
        .collect();
    SpecMix { seed, apps }
}

/// The paper's 10 standard 16-app mixes (co-scheduled with each TailBench
/// service for the 50-mix evaluation).
pub fn standard_mixes() -> Vec<SpecMix> {
    (0..10).map(|i| mix(16, 0xC0FFEE + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_28_unique_valid_benchmarks() {
        let cat = catalog();
        assert_eq!(cat.len(), 28);
        let names: HashSet<_> = cat.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 28);
        for b in &cat {
            b.profile
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn split_is_disjoint_and_exhaustive() {
        let train: HashSet<_> = TRAINING_NAMES.iter().collect();
        let test: HashSet<_> = TESTING_NAMES.iter().collect();
        assert_eq!(train.len(), 16);
        assert_eq!(test.len(), 12);
        assert!(train.is_disjoint(&test));
        let all: HashSet<_> = catalog().iter().map(|b| b.name).collect();
        for n in train.iter().chain(test.iter()) {
            assert!(all.contains(**n), "{n} missing from catalog");
        }
    }

    #[test]
    fn mixes_are_reproducible_and_drawn_from_testing_set() {
        let m1 = mix(16, 42);
        let m2 = mix(16, 42);
        assert_eq!(m1, m2);
        assert_eq!(m1.apps.len(), 16);
        let testing: HashSet<_> = TESTING_NAMES.iter().copied().collect();
        for a in &m1.apps {
            assert!(testing.contains(a.name), "{} not in testing set", a.name);
        }
        assert_ne!(mix(16, 1).names(), mix(16, 2).names());
    }

    #[test]
    fn standard_mixes_match_paper_shape() {
        let mixes = standard_mixes();
        assert_eq!(mixes.len(), 10);
        assert!(mixes.iter().all(|m| m.apps.len() == 16));
        // The mixes should differ from one another.
        assert_ne!(mixes[0].names(), mixes[1].names());
    }

    #[test]
    fn catalog_spans_diverse_behaviour() {
        let cat = catalog();
        let max_ilp = cat.iter().map(|b| b.profile.ilp).fold(0.0, f64::max);
        let min_ilp = cat.iter().map(|b| b.profile.ilp).fold(f64::MAX, f64::min);
        assert!(
            max_ilp / min_ilp > 3.0,
            "catalog must span a wide ILP range"
        );
        let mem_bound = cat
            .iter()
            .filter(|b| b.profile.llc_miss_floor > 0.3)
            .count();
        let cpu_bound = cat.iter().filter(|b| b.profile.ilp > 3.4).count();
        assert!(mem_bound >= 4);
        assert!(cpu_bound >= 4);
    }

    #[test]
    fn mix_profiles_matches_apps() {
        let m = mix(8, 7);
        assert_eq!(m.profiles().len(), 8);
        assert_eq!(m.profiles()[0], m.apps[0].profile);
    }
}
