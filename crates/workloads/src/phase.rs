//! Application phase behaviour.
//!
//! Real applications drift through execution phases, so a 1 ms profiling
//! sample is not perfectly representative of the following 100 ms timeslice —
//! the paper names this as one of the two sources of increased runtime
//! prediction error in Fig. 5(b). A [`PhasedProfile`] wraps a base
//! [`AppProfile`] with slow, seeded sinusoidal modulation of its
//! performance-relevant parameters.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use simulator::AppProfile;

/// A profile whose behaviour drifts over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasedProfile {
    /// The time-averaged profile.
    pub base: AppProfile,
    /// Relative modulation amplitude applied to ILP and memory intensity.
    pub amplitude: f64,
    /// Phase period in seconds.
    pub period_s: f64,
    /// Initial phase offset in radians.
    pub phase_offset: f64,
}

impl PhasedProfile {
    /// Wraps a profile with drift parameters drawn from `seed`: amplitude in
    /// `[0.04, 0.12]`, period in `[0.15 s, 0.6 s]` so several phases occur
    /// within a one-second experiment.
    pub fn with_seed(base: AppProfile, seed: u64) -> PhasedProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        PhasedProfile {
            base,
            amplitude: rng.random_range(0.04..0.12),
            period_s: rng.random_range(0.15..0.6),
            phase_offset: rng.random_range(0.0..std::f64::consts::TAU),
        }
    }

    /// A drift-free wrapper (useful to disable phases in ablations).
    pub fn steady(base: AppProfile) -> PhasedProfile {
        PhasedProfile {
            base,
            amplitude: 0.0,
            period_s: 1.0,
            phase_offset: 0.0,
        }
    }

    /// The instantaneous profile at time `t_s`.
    ///
    /// Modulates ILP (inversely) and memory intensity: a "memory phase" has
    /// lower ILP and more LLC traffic, which is how phases move both the
    /// performance and power rows the reconstruction learned from profiling.
    ///
    /// A modulated field that escapes its calibrated range (possible only
    /// for a base profile already near a boundary) is rejected and resampled
    /// from the base via [`AppProfile::rejecting_out_of_range`] — the models
    /// were never validated at clamped boundary values, and the rejection is
    /// counted rather than silent.
    pub fn at(&self, t_s: f64) -> AppProfile {
        if self.amplitude == 0.0 {
            return self.base;
        }
        let s = (std::f64::consts::TAU * t_s / self.period_s + self.phase_offset).sin();
        let mut p = self.base;
        p.ilp *= 1.0 - self.amplitude * s;
        p.l1_miss_rate *= 1.0 + self.amplitude * s;
        p.activity *= 1.0 + 0.5 * self.amplitude * s;
        p.rejecting_out_of_range(&self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_profile_never_moves() {
        let p = PhasedProfile::steady(AppProfile::balanced());
        assert_eq!(p.at(0.0), p.at(0.37));
    }

    #[test]
    fn phased_profile_oscillates_and_stays_valid() {
        let p = PhasedProfile::with_seed(AppProfile::memory_bound(), 5);
        let mut distinct = 0;
        let p0 = p.at(0.0);
        for i in 1..20 {
            let pi = p.at(i as f64 * 0.05);
            pi.validate().expect("drifted profile must stay valid");
            if pi != p0 {
                distinct += 1;
            }
        }
        assert!(distinct > 10, "profile should actually drift");
    }

    #[test]
    fn drift_is_bounded_by_amplitude() {
        let p = PhasedProfile::with_seed(AppProfile::balanced(), 9);
        for i in 0..100 {
            let pi = p.at(i as f64 * 0.01);
            let rel = (pi.ilp - p.base.ilp).abs() / p.base.ilp;
            assert!(rel <= p.amplitude + 1e-9);
        }
    }

    #[test]
    fn drift_past_a_calibrated_boundary_rejects_to_base() {
        let mut base = AppProfile::balanced();
        base.ilp = 5.8; // only 3% headroom under the calibrated 6.0 ceiling
        let p = PhasedProfile {
            base,
            amplitude: 0.12,
            period_s: 0.4,
            phase_offset: 0.0,
        };
        // At t = 3/4 period the sine is -1, so ILP would modulate to
        // 5.8 · 1.12 = 6.5: out of range, so the field falls back to base.
        let pi = p.at(0.3);
        assert_eq!(pi.ilp, base.ilp, "escaped field must resample from base");
        pi.validate().expect("rejected profile is valid again");
    }

    #[test]
    fn seeds_give_different_phases() {
        let a = PhasedProfile::with_seed(AppProfile::balanced(), 1);
        let b = PhasedProfile::with_seed(AppProfile::balanced(), 2);
        assert_ne!(a.phase_offset, b.phase_offset);
    }
}
