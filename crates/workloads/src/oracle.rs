//! Ground-truth per-(job, configuration) tables.
//!
//! The oracle exhaustively evaluates the simulator across all 108 job
//! configurations. It serves three distinct roles, mirroring the paper:
//!
//! 1. **Offline characterization** of the "known" training applications that
//!    seed the reconstruction matrices (§V): the paper ran these once,
//!    offline, on the real simulator; we call the analytic models directly.
//! 2. **Accuracy ground truth** for Fig. 5/9: predictions are compared
//!    against these tables.
//! 3. **Oracle baselines** (§VII-C): the oracle-like asymmetric multicore is
//!    defined as having perfect knowledge, which is exactly these tables.
//!
//! Rows are *uncontended* (single job, no co-runners): that is what isolated
//! offline characterization measures, and the gap to contended execution is
//! precisely the runtime error source the paper discusses in Fig. 5(b).

use simulator::{AppProfile, Chip, JobConfig, NUM_JOB_CONFIGS};

use crate::latency::LcService;

/// Exhaustive ground-truth evaluator for one chip.
#[derive(Debug, Clone, Copy)]
pub struct Oracle {
    chip: Chip,
}

impl Oracle {
    /// Creates an oracle over `chip` (the chip's core kind determines
    /// whether rows include the reconfigurable-core taxes).
    pub fn new(chip: Chip) -> Oracle {
        Oracle { chip }
    }

    /// The chip being evaluated.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Per-core throughput (BIPS) of `app` in every job configuration,
    /// indexed by [`JobConfig::index`].
    pub fn bips_row(&self, app: &AppProfile) -> Vec<f64> {
        JobConfig::all()
            .map(|jc| {
                self.chip
                    .core_bips(app, jc.core, jc.cache.ways(), 0.0)
                    .get()
            })
            .collect()
    }

    /// Per-core power (Watts, core plus LLC share) of `app` in every job
    /// configuration.
    pub fn power_row(&self, app: &AppProfile) -> Vec<f64> {
        JobConfig::all()
            .map(|jc| {
                let ipc = self.chip.perf().ipc(app, jc.core, jc.cache.ways(), 0.0);
                let bips = self.chip.core_bips(app, jc.core, jc.cache.ways(), 0.0);
                self.chip
                    .power()
                    .job_core_watts(app, jc.core, jc.cache, ipc, bips)
                    .get()
            })
            .collect()
    }

    /// 99th-percentile latency (ms) of `service` on `cores` cores at `load`
    /// (fraction of its max QPS) in every job configuration.
    pub fn tail_row(&self, service: &LcService, cores: usize, load: f64) -> Vec<f64> {
        JobConfig::all()
            .map(|jc| {
                service
                    .tail_latency_ms(self.chip.perf(), cores, jc.core, jc.cache, load, 0.0)
                    .get()
            })
            .collect()
    }

    /// Single-configuration lookups, convenient for spot checks.
    pub fn bips_at(&self, app: &AppProfile, config: JobConfig) -> f64 {
        self.chip
            .core_bips(app, config.core, config.cache.ways(), 0.0)
            .get()
    }

    /// Per-core power of `app` at one configuration.
    pub fn power_at(&self, app: &AppProfile, config: JobConfig) -> f64 {
        let ipc = self
            .chip
            .perf()
            .ipc(app, config.core, config.cache.ways(), 0.0);
        let bips = self
            .chip
            .core_bips(app, config.core, config.cache.ways(), 0.0);
        self.chip
            .power()
            .job_core_watts(app, config.core, config.cache, ipc, bips)
            .get()
    }

    /// Tail latency of `service` at one configuration.
    pub fn tail_at(&self, service: &LcService, cores: usize, load: f64, config: JobConfig) -> f64 {
        service
            .tail_latency_ms(
                self.chip.perf(),
                cores,
                config.core,
                config.cache,
                load,
                0.0,
            )
            .get()
    }

    /// The number of columns all rows share.
    pub fn num_configs(&self) -> usize {
        NUM_JOB_CONFIGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency;
    use simulator::power::CoreKind;
    use simulator::SystemParams;

    fn oracle() -> Oracle {
        Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable))
    }

    #[test]
    fn rows_have_108_entries() {
        let o = oracle();
        let app = AppProfile::balanced();
        assert_eq!(o.bips_row(&app).len(), 108);
        assert_eq!(o.power_row(&app).len(), 108);
        let svc = latency::service_by_name("xapian").unwrap();
        assert_eq!(o.tail_row(&svc, 16, 0.8).len(), 108);
    }

    #[test]
    fn profiling_extremes_bracket_the_row() {
        let o = oracle();
        let app = AppProfile::balanced();
        let row = o.bips_row(&app);
        let hi = row[JobConfig::profiling_high().index()];
        let lo = row[JobConfig::profiling_low().index()];
        assert!(hi > lo);
        // The widest core with 4 ways must be the global max.
        let max = row.iter().cloned().fold(0.0, f64::max);
        let widest_4w = row[JobConfig::all().last().unwrap().index()];
        assert!((max - widest_4w).abs() < 1e-12);
    }

    #[test]
    fn rows_match_spot_lookups() {
        let o = oracle();
        let app = AppProfile::memory_bound();
        let row = o.power_row(&app);
        let jc = JobConfig::from_index(37);
        assert!((row[37] - o.power_at(&app, jc)).abs() < 1e-12);
    }

    #[test]
    fn fixed_chip_rows_differ_from_reconfigurable() {
        let params = SystemParams::default();
        let reconf = Oracle::new(Chip::new(params, CoreKind::Reconfigurable));
        let fixed = Oracle::new(Chip::new(params, CoreKind::Fixed));
        let app = AppProfile::balanced();
        assert!(fixed.bips_row(&app)[0] > reconf.bips_row(&app)[0]);
        assert!(fixed.power_row(&app)[0] < reconf.power_row(&app)[0]);
    }

    #[test]
    fn tail_row_is_load_sensitive() {
        let o = oracle();
        let svc = latency::service_by_name("silo").unwrap();
        let lo = o.tail_row(&svc, 16, 0.2);
        let hi = o.tail_row(&svc, 16, 0.9);
        let idx = JobConfig::profiling_high().index();
        assert!(hi[idx] > lo[idx]);
    }
}
