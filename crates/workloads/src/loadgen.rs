//! Input-load patterns for latency-critical services.
//!
//! The dynamic-behaviour experiments of §VIII-D vary the service's input
//! load over time (a diurnal pattern for Fig. 8(a), a load spike for the core
//! relocation example of Fig. 8(c)). A [`LoadPattern`] maps simulation time
//! to a load fraction of the service's calibrated maximum QPS.

use serde::{Deserialize, Serialize};

/// A time-varying input load, as a fraction of the service's maximum
/// sustainable QPS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadPattern {
    /// Constant load.
    Constant(f64),
    /// Sinusoidal diurnal pattern between `min` and `max` with the given
    /// period, starting at the minimum.
    Diurnal {
        /// Minimum load fraction.
        min: f64,
        /// Maximum load fraction.
        max: f64,
        /// Period in seconds.
        period_s: f64,
    },
    /// Piecewise-constant steps: `(start_time_s, load)` pairs in ascending
    /// time order; load before the first step is the first step's load.
    Steps(Vec<(f64, f64)>),
    /// A recorded load trace: samples at a fixed interval, linearly
    /// interpolated, holding the last sample afterwards. Built from
    /// production request-rate logs via [`LoadPattern::from_trace`].
    Trace {
        /// Seconds between consecutive samples.
        interval_s: f64,
        /// Load samples (fraction of max QPS).
        samples: Vec<f64>,
    },
    /// A square spike: `base` load, rising to `peak` during
    /// `[start_s, end_s)`.
    Spike {
        /// Load outside the spike.
        base: f64,
        /// Load during the spike.
        peak: f64,
        /// Spike start time in seconds.
        start_s: f64,
        /// Spike end time in seconds.
        end_s: f64,
    },
}

impl LoadPattern {
    /// Load fraction at time `t_s` seconds, clamped to `[0, 2]`.
    ///
    /// Fractions above 1.0 model overload beyond the calibrated maximum —
    /// the regime that forces core relocation in Fig. 8(c).
    pub fn load_at(&self, t_s: f64) -> f64 {
        let raw = match self {
            LoadPattern::Constant(l) => *l,
            LoadPattern::Diurnal { min, max, period_s } => {
                let phase = 2.0 * std::f64::consts::PI * t_s / period_s;
                // Starts at `min`, peaks at half period.
                min + (max - min) * 0.5 * (1.0 - phase.cos())
            }
            LoadPattern::Steps(steps) => {
                assert!(!steps.is_empty(), "step pattern needs at least one step");
                let mut load = steps[0].1;
                for (start, l) in steps {
                    if t_s >= *start {
                        load = *l;
                    }
                }
                load
            }
            LoadPattern::Trace {
                interval_s,
                samples,
            } => {
                assert!(!samples.is_empty(), "trace needs at least one sample");
                assert!(*interval_s > 0.0, "trace interval must be positive");
                let pos = (t_s / interval_s).max(0.0);
                let idx = pos.floor() as usize;
                if idx + 1 >= samples.len() {
                    *samples.last().expect("non-empty trace")
                } else {
                    let frac = pos - idx as f64;
                    samples[idx] * (1.0 - frac) + samples[idx + 1] * frac
                }
            }
            LoadPattern::Spike {
                base,
                peak,
                start_s,
                end_s,
            } => {
                if t_s >= *start_s && t_s < *end_s {
                    *peak
                } else {
                    *base
                }
            }
        };
        raw.clamp(0.0, 2.0)
    }

    /// The Fig. 8(a) diurnal pattern: 20 % to 100 % over one second of
    /// simulated time.
    pub fn paper_diurnal() -> LoadPattern {
        LoadPattern::Diurnal {
            min: 0.2,
            max: 1.0,
            period_s: 1.0,
        }
    }

    /// Builds a trace pattern from recorded samples.
    pub fn from_trace(interval_s: f64, samples: Vec<f64>) -> LoadPattern {
        LoadPattern::Trace {
            interval_s,
            samples,
        }
    }

    /// The Fig. 8(c) relocation spike: 20 % base load with a burst *past*
    /// the calibrated maximum (130 %) in `[0.3 s, 0.7 s)`, which no
    /// 16-core configuration can serve — forcing core relocation.
    pub fn paper_spike() -> LoadPattern {
        LoadPattern::Spike {
            base: 0.2,
            peak: 1.3,
            start_s: 0.3,
            end_s: 0.7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant_and_clamped() {
        assert_eq!(LoadPattern::Constant(0.8).load_at(0.0), 0.8);
        assert_eq!(LoadPattern::Constant(0.8).load_at(123.4), 0.8);
        assert_eq!(LoadPattern::Constant(1.7).load_at(0.0), 1.7);
        assert_eq!(LoadPattern::Constant(3.0).load_at(0.0), 2.0);
        assert_eq!(LoadPattern::Constant(-0.5).load_at(0.0), 0.0);
    }

    #[test]
    fn diurnal_starts_low_peaks_mid_period() {
        let p = LoadPattern::paper_diurnal();
        assert!((p.load_at(0.0) - 0.2).abs() < 1e-12);
        assert!((p.load_at(0.5) - 1.0).abs() < 1e-12);
        assert!((p.load_at(1.0) - 0.2).abs() < 1e-12);
        let quarter = p.load_at(0.25);
        assert!(quarter > 0.2 && quarter < 1.0);
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let p = LoadPattern::Steps(vec![(0.0, 0.3), (0.5, 0.9), (0.8, 0.1)]);
        assert_eq!(p.load_at(0.0), 0.3);
        assert_eq!(p.load_at(0.49), 0.3);
        assert_eq!(p.load_at(0.5), 0.9);
        assert_eq!(p.load_at(0.79), 0.9);
        assert_eq!(p.load_at(2.0), 0.1);
    }

    #[test]
    fn spike_has_sharp_edges() {
        let p = LoadPattern::paper_spike();
        assert_eq!(p.load_at(0.29), 0.2);
        assert_eq!(p.load_at(0.3), 1.3);
        assert_eq!(p.load_at(0.69), 1.3);
        assert_eq!(p.load_at(0.7), 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_steps_panic() {
        let _ = LoadPattern::Steps(vec![]).load_at(0.0);
    }

    #[test]
    fn trace_interpolates_and_holds_the_tail() {
        let p = LoadPattern::from_trace(0.1, vec![0.2, 0.4, 0.8]);
        assert!((p.load_at(0.0) - 0.2).abs() < 1e-12);
        assert!((p.load_at(0.05) - 0.3).abs() < 1e-12);
        assert!((p.load_at(0.1) - 0.4).abs() < 1e-12);
        assert!((p.load_at(0.15) - 0.6).abs() < 1e-12);
        assert!((p.load_at(5.0) - 0.8).abs() < 1e-12, "hold last sample");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        let _ = LoadPattern::from_trace(0.1, vec![]).load_at(0.0);
    }
}
