//! The five TailBench-like latency-critical services.
//!
//! Each service couples a microarchitectural [`AppProfile`] (which drives
//! the simulator's per-core IPC for its request-processing threads) with a
//! queueing model (which turns per-core service capacity and offered load
//! into a 99th-percentile latency). Maximum sustainable loads follow §VII-A:
//! Xapian 22 kQPS, Masstree 17 kQPS, ImgDNN 8 kQPS, Moses 8 kQPS, Silo
//! 24 kQPS, each measured at the knee before saturation on a 16-core system.
//!
//! Section sensitivities encode the paper's Fig. 1 findings: Xapian's tail is
//! set by the load/store queue, Moses' by the front-end, and
//! ImgDNN/Silo/Masstree need wide FE *and* LS sections.

use serde::Serialize;
use simulator::{AppProfile, CacheAlloc, CoreConfig, Millis, PerfModel};

use crate::queueing::MmcQueue;

/// The number of cores the per-service maximum load was calibrated on.
pub const CALIBRATION_CORES: usize = 16;

/// Utilization at the saturation knee used to derive base service times.
pub const KNEE_UTILIZATION: f64 = 0.8;

/// A latency-critical interactive service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LcService {
    /// Service name, e.g. `"xapian"`.
    pub name: &'static str,
    /// Microarchitectural profile of a request-serving thread.
    pub profile: AppProfile,
    /// Maximum sustainable load in queries per second on the 16-core
    /// calibration system (§VII-A).
    pub max_qps: f64,
    /// The QoS target on 99th-percentile latency, in milliseconds.
    pub qos_ms: f64,
}

impl LcService {
    /// Base per-request service time in milliseconds on the reference
    /// configuration ({6,6,6}, four LLC ways, uncontended), derived from the
    /// calibrated maximum load: at the knee, 16 cores at `KNEE_UTILIZATION`
    /// sustain `max_qps`.
    pub fn base_service_ms(&self) -> f64 {
        let max_per_ms = self.max_qps / 1000.0;
        CALIBRATION_CORES as f64 * KNEE_UTILIZATION / max_per_ms
    }

    /// Reference IPC anchoring the service-rate scaling.
    fn reference_ipc(&self, perf: &PerfModel) -> f64 {
        perf.ipc(
            &self.profile,
            CoreConfig::widest(),
            CacheAlloc::Four.ways(),
            0.0,
        )
    }

    /// Per-core service rate (requests per millisecond) at a configuration:
    /// requests complete proportionally faster when the core achieves higher
    /// IPC.
    pub fn service_rate_per_core(
        &self,
        perf: &PerfModel,
        config: CoreConfig,
        cache: CacheAlloc,
        contention: f64,
    ) -> f64 {
        let ipc = perf.ipc(&self.profile, config, cache.ways(), contention);
        let scale = ipc / self.reference_ipc(perf);
        scale / self.base_service_ms()
    }

    /// Arrival rate (requests per millisecond) at a load fraction of the
    /// calibrated maximum.
    pub fn arrival_rate_per_ms(&self, load: f64) -> f64 {
        (self.max_qps / 1000.0) * load.max(0.0)
    }

    /// The queueing model for this service on `cores` cores at the given
    /// configuration and load fraction.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn queue(
        &self,
        perf: &PerfModel,
        cores: usize,
        config: CoreConfig,
        cache: CacheAlloc,
        load: f64,
        contention: f64,
    ) -> MmcQueue {
        MmcQueue::new(
            cores,
            self.service_rate_per_core(perf, config, cache, contention),
            self.arrival_rate_per_ms(load),
        )
    }

    /// Ground-truth 99th-percentile latency for the given placement.
    pub fn tail_latency_ms(
        &self,
        perf: &PerfModel,
        cores: usize,
        config: CoreConfig,
        cache: CacheAlloc,
        load: f64,
        contention: f64,
    ) -> Millis {
        self.queue(perf, cores, config, cache, load, contention)
            .p99_ms()
    }

    /// Whether the placement meets QoS.
    pub fn meets_qos(
        &self,
        perf: &PerfModel,
        cores: usize,
        config: CoreConfig,
        cache: CacheAlloc,
        load: f64,
        contention: f64,
    ) -> bool {
        self.tail_latency_ms(perf, cores, config, cache, load, contention)
            .get()
            <= self.qos_ms
    }
}

/// The five TailBench services with paper-calibrated maximum loads.
pub fn services() -> Vec<LcService> {
    vec![
        LcService {
            name: "xapian",
            // Web search: pointer-chasing index traversal; the LS queue sets
            // the tail (Fig. 1: low latency requires a six-way LS queue).
            profile: AppProfile {
                ilp: 2.0,
                fe_sensitivity: 0.30,
                be_sensitivity: 0.30,
                ls_sensitivity: 0.95,
                mem_fraction: 0.42,
                l1_miss_rate: 0.16,
                llc_miss_floor: 0.22,
                llc_working_set_ways: 3.5,
                mlp: 5.0,
                activity: 0.85,
            },
            max_qps: 22_000.0,
            qos_ms: 6.0,
        },
        LcService {
            name: "masstree",
            // In-memory key-value store: needs wide FE and LS.
            profile: AppProfile {
                ilp: 2.4,
                fe_sensitivity: 0.70,
                be_sensitivity: 0.35,
                ls_sensitivity: 0.70,
                mem_fraction: 0.38,
                l1_miss_rate: 0.13,
                llc_miss_floor: 0.25,
                llc_working_set_ways: 3.0,
                mlp: 3.5,
                activity: 0.92,
            },
            max_qps: 17_000.0,
            qos_ms: 8.0,
        },
        LcService {
            name: "imgdnn",
            // Handwriting-recognition DNN: compute-heavy, FE and LS matter.
            profile: AppProfile {
                ilp: 3.4,
                fe_sensitivity: 0.75,
                be_sensitivity: 0.60,
                ls_sensitivity: 0.65,
                mem_fraction: 0.30,
                l1_miss_rate: 0.07,
                llc_miss_floor: 0.15,
                llc_working_set_ways: 2.0,
                mlp: 2.8,
                activity: 1.15,
            },
            max_qps: 8_000.0,
            qos_ms: 20.0,
        },
        LcService {
            name: "moses",
            // Statistical machine translation: big branchy phrase tables;
            // the tail primarily depends on the front-end (Fig. 1).
            profile: AppProfile {
                ilp: 2.6,
                fe_sensitivity: 0.92,
                be_sensitivity: 0.40,
                ls_sensitivity: 0.22,
                mem_fraction: 0.30,
                l1_miss_rate: 0.07,
                llc_miss_floor: 0.20,
                llc_working_set_ways: 2.5,
                mlp: 2.5,
                activity: 1.00,
            },
            max_qps: 8_000.0,
            qos_ms: 15.0,
        },
        LcService {
            name: "silo",
            // In-memory OLTP: short transactions, modest widths suffice but
            // FE and LS both show at high load.
            profile: AppProfile {
                ilp: 2.2,
                fe_sensitivity: 0.60,
                be_sensitivity: 0.35,
                ls_sensitivity: 0.60,
                mem_fraction: 0.36,
                l1_miss_rate: 0.11,
                llc_miss_floor: 0.18,
                llc_working_set_ways: 2.2,
                mlp: 3.0,
                activity: 0.95,
            },
            max_qps: 24_000.0,
            qos_ms: 5.0,
        },
    ]
}

/// Looks a service up by name.
pub fn service_by_name(name: &str) -> Option<LcService> {
    services().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simulator::{SectionWidth, SystemParams};

    fn perf() -> PerfModel {
        PerfModel::new(SystemParams::paper_16core())
    }

    #[test]
    fn five_services_with_paper_loads() {
        let svcs = services();
        assert_eq!(svcs.len(), 5);
        let qps: Vec<f64> = svcs.iter().map(|s| s.max_qps).collect();
        assert_eq!(qps, vec![22_000.0, 17_000.0, 8_000.0, 8_000.0, 24_000.0]);
        for s in &svcs {
            s.profile
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(s.qos_ms > 0.0);
        }
    }

    #[test]
    fn base_service_time_matches_knee_calibration() {
        let x = service_by_name("xapian").unwrap();
        // 16 cores * 0.8 / 22 req/ms ≈ 0.58 ms.
        assert!((x.base_service_ms() - 16.0 * 0.8 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn services_meet_qos_at_widest_config_and_80_percent_load() {
        let perf = perf();
        for s in services() {
            let p99 = s.tail_latency_ms(
                &perf,
                CALIBRATION_CORES,
                CoreConfig::widest(),
                CacheAlloc::Four,
                0.8,
                0.0,
            );
            assert!(
                p99.get() <= s.qos_ms,
                "{} violates QoS at widest config: {p99} vs {} ms",
                s.name,
                s.qos_ms
            );
        }
    }

    #[test]
    fn narrowest_config_saturates_at_high_load() {
        let perf = perf();
        for s in services() {
            let q = s.queue(
                &perf,
                CALIBRATION_CORES,
                CoreConfig::narrowest(),
                CacheAlloc::Half,
                0.8,
                0.0,
            );
            assert!(
                q.is_saturated() || q.p99_ms().get() > s.qos_ms,
                "{} should violate QoS in the narrowest config at 80% load",
                s.name
            );
        }
    }

    #[test]
    fn low_load_tolerates_narrow_configs() {
        // Fig. 1: at 20% load, tail latency stays low even for
        // lower-performing configurations.
        let perf = perf();
        for s in services() {
            let mid = CoreConfig::new(SectionWidth::Four, SectionWidth::Four, SectionWidth::Four);
            let p99 = s.tail_latency_ms(&perf, CALIBRATION_CORES, mid, CacheAlloc::One, 0.2, 0.0);
            assert!(
                p99.get() <= s.qos_ms,
                "{} should meet QoS at 20% load on {mid}: {p99}",
                s.name
            );
        }
    }

    #[test]
    fn xapian_is_ls_bound_moses_is_fe_bound() {
        let perf = perf();
        let xapian = service_by_name("xapian").unwrap();
        let moses = service_by_name("moses").unwrap();
        let ls_narrow = CoreConfig::new(SectionWidth::Six, SectionWidth::Six, SectionWidth::Two);
        let fe_narrow = CoreConfig::new(SectionWidth::Two, SectionWidth::Six, SectionWidth::Six);
        let x_ls = xapian
            .tail_latency_ms(&perf, 16, ls_narrow, CacheAlloc::Four, 0.8, 0.0)
            .get();
        let x_fe = xapian
            .tail_latency_ms(&perf, 16, fe_narrow, CacheAlloc::Four, 0.8, 0.0)
            .get();
        assert!(x_ls > x_fe, "xapian should suffer more from LS narrowing");
        let m_ls = moses
            .tail_latency_ms(&perf, 16, ls_narrow, CacheAlloc::Four, 0.8, 0.0)
            .get();
        let m_fe = moses
            .tail_latency_ms(&perf, 16, fe_narrow, CacheAlloc::Four, 0.8, 0.0)
            .get();
        assert!(m_fe > m_ls, "moses should suffer more from FE narrowing");
    }

    #[test]
    fn more_cores_reduce_tail_latency() {
        let perf = perf();
        let s = service_by_name("masstree").unwrap();
        let with_12 = s.tail_latency_ms(&perf, 12, CoreConfig::widest(), CacheAlloc::Two, 0.6, 0.0);
        let with_16 = s.tail_latency_ms(&perf, 16, CoreConfig::widest(), CacheAlloc::Two, 0.6, 0.0);
        assert!(with_16.get() < with_12.get());
    }

    #[test]
    fn lookup_by_name() {
        assert!(service_by_name("silo").is_some());
        assert!(service_by_name("nginx").is_none());
    }
}
