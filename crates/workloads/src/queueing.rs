//! Analytic M/M/k tail-latency model.
//!
//! Latency-critical services in the paper are load-balanced across their
//! cores, so we model each service as an M/M/k queue: Poisson arrivals at
//! rate λ, k identical servers whose per-request rate μ is set by the
//! simulator's performance model for the current core configuration and LLC
//! allocation. The 99th-percentile response time follows from the exact
//! M/M/k sojourn-time distribution; overload (ρ ≥ 1) maps to an explicit,
//! monotonically growing saturation latency so design-space search still has
//! a gradient to follow out of infeasible regions.

use serde::{Deserialize, Serialize};
use simulator::Millis;

/// Saturation latency scale: an overloaded queue reports this many
/// milliseconds per unit of overload, far above any realistic QoS target.
const SATURATION_MS: f64 = 50_000.0;

/// An M/M/k queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmcQueue {
    /// Number of servers (cores serving the service).
    pub servers: usize,
    /// Per-server service rate in requests per millisecond.
    pub service_rate_per_ms: f64,
    /// Arrival rate in requests per millisecond.
    pub arrival_rate_per_ms: f64,
}

impl MmcQueue {
    /// Creates a queue.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or either rate is non-positive/non-finite.
    pub fn new(servers: usize, service_rate_per_ms: f64, arrival_rate_per_ms: f64) -> MmcQueue {
        assert!(servers > 0, "queue needs at least one server");
        assert!(
            service_rate_per_ms > 0.0 && service_rate_per_ms.is_finite(),
            "service rate must be positive"
        );
        assert!(
            arrival_rate_per_ms >= 0.0 && arrival_rate_per_ms.is_finite(),
            "arrival rate must be non-negative"
        );
        MmcQueue {
            servers,
            service_rate_per_ms,
            arrival_rate_per_ms,
        }
    }

    /// Offered load per server, ρ = λ / (kμ).
    pub fn utilization(&self) -> f64 {
        self.arrival_rate_per_ms / (self.servers as f64 * self.service_rate_per_ms)
    }

    /// Whether the queue is overloaded (ρ ≥ 1) and has no steady state.
    pub fn is_saturated(&self) -> bool {
        self.utilization() >= 1.0
    }

    /// Erlang-C probability that an arriving request must wait.
    ///
    /// Computed with the standard numerically stable recurrence on the
    /// Erlang-B blocking probability, valid for large `k` without factorial
    /// overflow. Returns 1.0 when saturated.
    pub fn probability_of_wait(&self) -> f64 {
        if self.is_saturated() {
            return 1.0;
        }
        let a = self.arrival_rate_per_ms / self.service_rate_per_ms; // offered load in Erlangs
        let k = self.servers;
        // Erlang-B recurrence: B(0) = 1; B(n) = a·B(n−1) / (n + a·B(n−1)).
        let mut b = 1.0;
        for n in 1..=k {
            b = a * b / (n as f64 + a * b);
        }
        let rho = self.utilization();
        b / (1.0 - rho + rho * b)
    }

    /// Mean response (sojourn) time in milliseconds.
    pub fn mean_response_ms(&self) -> Millis {
        if self.is_saturated() {
            return self.saturated_latency();
        }
        let mu = self.service_rate_per_ms;
        let k = self.servers as f64;
        let pw = self.probability_of_wait();
        let wq = pw / (k * mu - self.arrival_rate_per_ms);
        Millis::new(wq + 1.0 / mu)
    }

    /// Survival function of the response time, P(T > t).
    ///
    /// T = W + S where S ~ Exp(μ) and W is zero with probability 1 − P_wait,
    /// else Exp(kμ − λ). The convolution has a closed form; the θ = μ corner
    /// case degenerates to a gamma tail handled separately.
    pub fn response_survival(&self, t_ms: f64) -> f64 {
        if self.is_saturated() {
            return 1.0;
        }
        let mu = self.service_rate_per_ms;
        let theta = self.servers as f64 * mu - self.arrival_rate_per_ms;
        let pw = self.probability_of_wait();
        let s_tail = (-mu * t_ms).exp();
        if (theta - mu).abs() < 1e-9 * mu {
            // Exp(μ) + Exp(μ) = Gamma(2, μ): P(T > t) = e^{-μt}(1 + μt).
            let conv_tail = s_tail * (1.0 + mu * t_ms);
            return ((1.0 - pw) * s_tail + pw * conv_tail).clamp(0.0, 1.0);
        }
        let conv_tail = (theta * s_tail - mu * (-theta * t_ms).exp()) / (theta - mu);
        ((1.0 - pw) * s_tail + pw * conv_tail).clamp(0.0, 1.0)
    }

    /// The `q`-quantile of the response time in milliseconds (e.g. `0.99`
    /// for the paper's tail latency), found by bisection on the survival
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1)`.
    pub fn response_quantile(&self, q: f64) -> Millis {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        if self.is_saturated() {
            return self.saturated_latency();
        }
        let target = 1.0 - q;
        let mut lo = 0.0;
        let mut hi = 1.0 / self.service_rate_per_ms;
        while self.response_survival(hi) > target {
            hi *= 2.0;
            if hi > 1e9 {
                break;
            }
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.response_survival(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Millis::new(0.5 * (lo + hi))
    }

    /// 99th-percentile response time, the paper's tail-latency metric.
    pub fn p99_ms(&self) -> Millis {
        self.response_quantile(0.99)
    }

    /// Latency reported under overload: grows monotonically with ρ so search
    /// algorithms can still rank infeasible configurations.
    fn saturated_latency(&self) -> Millis {
        Millis::new(SATURATION_MS * self.utilization().min(100.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(servers: usize, mu: f64, lambda: f64) -> MmcQueue {
        MmcQueue::new(servers, mu, lambda)
    }

    #[test]
    fn single_server_matches_mm1_closed_forms() {
        // M/M/1: P_wait = ρ, mean T = 1/(μ−λ), P(T>t) = e^{−(μ−λ)t}.
        let queue = q(1, 2.0, 1.0);
        assert!((queue.probability_of_wait() - 0.5).abs() < 1e-9);
        assert!((queue.mean_response_ms().get() - 1.0).abs() < 1e-9);
        let p99 = queue.p99_ms().get();
        let expected = (100.0_f64).ln() / (2.0 - 1.0);
        assert!((p99 - expected).abs() < 1e-6, "p99 {p99} vs {expected}");
    }

    #[test]
    fn utilization_and_saturation() {
        assert!(!q(16, 1.0, 12.0).is_saturated());
        assert!(q(16, 1.0, 16.0).is_saturated());
        assert!((q(16, 1.0, 12.8).utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn p99_grows_with_load() {
        let mut prev = 0.0;
        for load in [0.2, 0.5, 0.8, 0.9, 0.95] {
            let p99 = q(16, 1.0, 16.0 * load).p99_ms().get();
            assert!(p99 > prev, "p99 must grow with load");
            prev = p99;
        }
    }

    #[test]
    fn p99_shrinks_with_faster_service() {
        let slow = q(16, 0.5, 4.0).p99_ms().get();
        let fast = q(16, 2.0, 4.0).p99_ms().get();
        assert!(fast < slow);
    }

    #[test]
    fn saturated_latency_is_huge_and_monotone() {
        let a = q(4, 1.0, 4.0).p99_ms().get();
        let b = q(4, 1.0, 8.0).p99_ms().get();
        assert!(a >= SATURATION_MS);
        assert!(b > a);
    }

    #[test]
    fn survival_is_decreasing_in_t() {
        let queue = q(8, 1.0, 6.0);
        let mut prev = 1.0;
        for i in 0..50 {
            let s = queue.response_survival(i as f64 * 0.2);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn quantile_inverts_survival() {
        let queue = q(16, 1.2, 14.0);
        for qq in [0.5, 0.9, 0.99] {
            let t = queue.response_quantile(qq).get();
            let s = queue.response_survival(t);
            assert!((s - (1.0 - qq)).abs() < 1e-6, "q={qq}: survival {s}");
        }
    }

    #[test]
    fn theta_equals_mu_corner_case() {
        // k=1: θ = μ − λ; pick λ so θ ≈ μ is impossible for k=1 (θ<μ), use
        // k=2, μ=1, λ=1 → θ = 2−1 = 1 = μ.
        let queue = q(2, 1.0, 1.0);
        let s = queue.response_survival(1.0);
        assert!(s > 0.0 && s < 1.0);
        let p99 = queue.p99_ms().get();
        assert!(p99 > 0.0 && p99.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = MmcQueue::new(0, 1.0, 0.5);
    }

    #[test]
    fn erlang_c_matches_reference_values() {
        // Reference: k=2, a=1 (ρ=0.5) → C = 1/3.
        let queue = q(2, 1.0, 1.0);
        assert!((queue.probability_of_wait() - 1.0 / 3.0).abs() < 1e-9);
    }
}
