//! Discrete-event M/G/k queue simulator.
//!
//! Complements the analytic [`crate::queueing::MmcQueue`] model: the
//! discrete-event simulation draws actual arrival and service times, so it
//! (a) validates the closed forms, and (b) produces *noisy* tail-latency
//! measurements the way a real 100 ms monitoring window would, which is what
//! the CuttleSys runtime observes when it folds measured values back into the
//! reconstruction matrices.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use simulator::Millis;

/// Service-time distribution shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceDistribution {
    /// Exponential service times (matches M/M/k exactly).
    Exponential,
    /// Log-normal service times with the given coefficient of variation;
    /// closer to measured TailBench request-size distributions.
    LogNormal {
        /// Coefficient of variation (σ/μ) of the service time.
        cv: f64,
    },
}

/// A k-server FIFO queue driven by sampled arrivals.
///
/// Owns its RNG, so runs are deterministic per seed; create a fresh queue to
/// replay a run.
#[derive(Debug)]
pub struct DesQueue {
    servers: usize,
    service_rate_per_ms: f64,
    arrival_rate_per_ms: f64,
    distribution: ServiceDistribution,
    rng: StdRng,
}

/// Latency statistics from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of completed requests.
    pub completed: usize,
    /// Mean response time.
    pub mean: Millis,
    /// 50th percentile response time.
    pub p50: Millis,
    /// 95th percentile response time.
    pub p95: Millis,
    /// 99th percentile response time (the paper's tail metric).
    pub p99: Millis,
}

impl DesQueue {
    /// Creates a queue simulator.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `service_rate_per_ms <= 0`.
    pub fn new(
        servers: usize,
        service_rate_per_ms: f64,
        arrival_rate_per_ms: f64,
        distribution: ServiceDistribution,
        seed: u64,
    ) -> DesQueue {
        assert!(servers > 0, "queue needs at least one server");
        assert!(service_rate_per_ms > 0.0, "service rate must be positive");
        DesQueue {
            servers,
            service_rate_per_ms,
            arrival_rate_per_ms,
            distribution,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn sample_interarrival(&mut self) -> f64 {
        if self.arrival_rate_per_ms <= 0.0 {
            return f64::INFINITY;
        }
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.arrival_rate_per_ms
    }

    fn sample_service(&mut self) -> f64 {
        let mean = 1.0 / self.service_rate_per_ms;
        match self.distribution {
            ServiceDistribution::Exponential => {
                let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                -u.ln() * mean
            }
            ServiceDistribution::LogNormal { cv } => {
                let sigma2 = (1.0 + cv * cv).ln();
                let mu = mean.ln() - sigma2 / 2.0;
                // Box–Muller.
                let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma2.sqrt() * z).exp()
            }
        }
    }

    /// Runs `requests` requests through the queue and reports latency
    /// statistics.
    ///
    /// Simulation uses the standard Lindley recursion for multi-server FIFO
    /// queues: each arrival is dispatched to the earliest-free server.
    pub fn run(&mut self, requests: usize) -> LatencyStats {
        let mut server_free = vec![0.0_f64; self.servers];
        let mut latencies = Vec::with_capacity(requests);
        let mut now = 0.0;
        for _ in 0..requests {
            now += self.sample_interarrival();
            if !now.is_finite() {
                break;
            }
            // Earliest-free server.
            let (idx, free_at) = server_free
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one server");
            let start = now.max(free_at);
            let service = self.sample_service();
            server_free[idx] = start + service;
            latencies.push(start + service - now);
        }
        Self::stats(latencies)
    }

    /// Runs the queue for a fixed wall-clock window (milliseconds), as the
    /// runtime's monitoring loop does, returning stats over the completed
    /// requests. Returns `None` if no request completed inside the window.
    pub fn run_window(&mut self, window_ms: f64) -> Option<LatencyStats> {
        let mut server_free = vec![0.0_f64; self.servers];
        let mut latencies = Vec::new();
        let mut now = 0.0;
        loop {
            now += self.sample_interarrival();
            if now > window_ms || !now.is_finite() {
                break;
            }
            let (idx, free_at) = server_free
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one server");
            let start = now.max(free_at);
            let service = self.sample_service();
            let done = start + service;
            server_free[idx] = done;
            if done <= window_ms {
                latencies.push(done - now);
            }
        }
        if latencies.is_empty() {
            None
        } else {
            Some(Self::stats(latencies))
        }
    }

    fn stats(mut latencies: Vec<f64>) -> LatencyStats {
        if latencies.is_empty() {
            return LatencyStats {
                completed: 0,
                mean: Millis::ZERO,
                p50: Millis::ZERO,
                p95: Millis::ZERO,
                p99: Millis::ZERO,
            };
        }
        latencies.sort_by(f64::total_cmp);
        let n = latencies.len();
        let mean = latencies.iter().sum::<f64>() / n as f64;
        let pct = |q: f64| -> Millis {
            let idx = ((n as f64 * q).ceil() as usize).clamp(1, n) - 1;
            Millis::new(latencies[idx])
        };
        LatencyStats {
            completed: n,
            mean: Millis::new(mean),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queueing::MmcQueue;

    #[test]
    fn des_matches_analytic_mm1_mean() {
        let mut des = DesQueue::new(1, 2.0, 1.0, ServiceDistribution::Exponential, 7);
        let stats = des.run(200_000);
        let analytic = MmcQueue::new(1, 2.0, 1.0).mean_response_ms().get();
        let ratio = stats.mean.get() / analytic;
        assert!((0.95..1.05).contains(&ratio), "mean ratio {ratio}");
    }

    #[test]
    fn des_matches_analytic_mmk_p99() {
        let mut des = DesQueue::new(16, 1.0, 12.8, ServiceDistribution::Exponential, 11);
        let stats = des.run(300_000);
        let analytic = MmcQueue::new(16, 1.0, 12.8).p99_ms().get();
        let ratio = stats.p99.get() / analytic;
        assert!((0.9..1.1).contains(&ratio), "p99 ratio {ratio}");
    }

    #[test]
    fn lognormal_heavier_cv_raises_tail() {
        let p99_low = DesQueue::new(4, 1.0, 3.0, ServiceDistribution::LogNormal { cv: 0.5 }, 3)
            .run(100_000)
            .p99;
        let p99_high = DesQueue::new(4, 1.0, 3.0, ServiceDistribution::LogNormal { cv: 2.0 }, 3)
            .run(100_000)
            .p99;
        assert!(p99_high.get() > p99_low.get());
    }

    #[test]
    fn window_run_reports_completions() {
        let mut des = DesQueue::new(8, 1.0, 4.0, ServiceDistribution::Exponential, 5);
        let stats = des.run_window(100.0).expect("requests complete in 100 ms");
        // ~4 req/ms over 100 ms → ~400 arrivals.
        assert!(stats.completed > 200 && stats.completed < 600);
        assert!(stats.p99.get() >= stats.p50.get());
    }

    #[test]
    fn zero_arrival_rate_yields_no_requests() {
        let mut des = DesQueue::new(2, 1.0, 0.0, ServiceDistribution::Exponential, 1);
        assert!(des.run_window(10.0).is_none());
        let stats = des.run(100);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut des = DesQueue::new(4, 1.0, 3.5, ServiceDistribution::Exponential, 9);
        let s = des.run(50_000);
        assert!(s.p50.get() <= s.p95.get());
        assert!(s.p95.get() <= s.p99.get());
        assert!(s.mean.get() > 0.0);
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let a = DesQueue::new(4, 1.0, 3.0, ServiceDistribution::Exponential, 42).run(10_000);
        let b = DesQueue::new(4, 1.0, 3.0, ServiceDistribution::Exponential, 42).run(10_000);
        assert_eq!(a, b);
    }
}
