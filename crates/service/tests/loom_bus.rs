#![cfg(loom)]
//! Loom model of the broadcast [`service::bus::Bus`].
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p service --test loom_bus
//! ```
//!
//! The hazards modeled (see bus.rs for the design):
//!
//! * **lossy-but-accounted delivery** — a subscriber that falls behind a
//!   small ring must see `Lagged(missed)` with the *exact* count, so for
//!   every subscriber that drains to close,
//!   `received + lagged == published`;
//! * **never-blocking publish** — the publisher runs to completion and
//!   closes regardless of subscriber progress (a wedged publisher would
//!   deadlock the model);
//! * **independent cursors** — concurrent subscribers each account for the
//!   full stream independently.
//!
//! Under the vendored loom stand-in this explores a bounded set of
//! randomized interleavings; with the real loom it becomes exhaustive.

use service::bus::{Bus, Received};

/// Drains a subscriber until close; returns (events_received, lag_total)
/// and asserts events arrive in strictly increasing order.
fn drain(mut sub: service::bus::Subscriber<u64>) -> (u64, u64) {
    let mut received = 0u64;
    let mut lagged = 0u64;
    let mut last: Option<u64> = None;
    loop {
        match sub.recv() {
            Ok(Received::Event(v)) => {
                if let Some(prev) = last {
                    assert!(v > prev, "out of order: {prev} then {v}");
                }
                last = Some(v);
                received += 1;
            }
            Ok(Received::Lagged(n)) => lagged += n,
            Err(_closed) => return (received, lagged),
        }
    }
}

#[test]
fn every_event_is_received_or_accounted_as_lag() {
    loom::model(|| {
        // Capacity 2 against 6 events forces real overwrites in most
        // interleavings; the accounting must hold in all of them.
        let published = 6u64;
        let bus: Bus<u64> = Bus::new(2);
        let sub = bus.subscribe();
        let consumer = loom::thread::spawn(move || drain(sub));
        for i in 0..published {
            bus.publish(i);
            loom::thread::yield_now();
        }
        bus.close();
        let (received, lagged) = consumer.join().unwrap();
        assert_eq!(
            received + lagged,
            published,
            "every published event is delivered or counted as lag"
        );
        // A subscriber can only miss events the ring actually overwrote.
        assert!(lagged <= bus.overwrites());
    });
}

#[test]
fn concurrent_subscribers_account_independently() {
    loom::model(|| {
        let published = 4u64;
        let bus: Bus<u64> = Bus::new(2);
        let subs = [bus.subscribe(), bus.subscribe()];
        let consumers: Vec<_> = subs
            .into_iter()
            .map(|sub| loom::thread::spawn(move || drain(sub)))
            .collect();
        for i in 0..published {
            bus.publish(i);
        }
        bus.close();
        for consumer in consumers {
            let (received, lagged) = consumer.join().unwrap();
            assert_eq!(received + lagged, published);
        }
    });
}

#[test]
fn publisher_never_blocks_on_a_stalled_subscriber() {
    loom::model(|| {
        let bus: Bus<u64> = Bus::new(1);
        // This subscriber never receives; the publisher must still finish.
        let stalled = bus.subscribe();
        for i in 0..8 {
            bus.publish(i);
        }
        bus.close();
        // The stalled subscriber still accounts for the full stream.
        let (received, lagged) = drain(stalled);
        assert_eq!(received + lagged, 8);
        assert!(received <= 1, "capacity-1 ring retains at most one event");
    });
}
