//! Registration traces: record the control-plane request sequence, replay
//! it bit-for-bit.
//!
//! The control core is a pure function of the scenario seed and the
//! request sequence, so the request sequence *is* the state of a live
//! service. A [`RegistrationTrace`] captures that sequence — register,
//! deregister, step — and [`RegistrationTrace::replay`] reproduces the
//! whole run through a fresh [`ControlCore`]: same seed, same trace, same
//! [`RunRecord`], bit for bit (modulo the wall-clock stage timings that
//! are nondeterministic even in a static run). `tests/control_plane.rs`
//! pins this against the static-`Scenario` equivalent.
//!
//! Traces export as JSON ([`RegistrationTrace::to_json`]) for run
//! artifacts; replay works from the in-memory form.

use cuttlesys::control::{ControlCore, ControlError, TenantId};
use cuttlesys::types::{RunRecord, Scenario};
use util::json::JsonValue;
use workloads::batch::SpecBenchmark;

/// One recorded control-plane request.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// A batch tenant registration (admission control applies on replay
    /// exactly as it did live — a rejection is deterministic behavior, not
    /// a replay error).
    Register {
        /// The registered name.
        name: String,
        /// The workload to admit.
        app: SpecBenchmark,
    },
    /// A batch tenant deregistration, by the id the registration order
    /// assigns (ids are deterministic, so recorded ids replay verbatim).
    Deregister {
        /// The tenant drained.
        tenant: TenantId,
    },
    /// One decision quantum.
    Step,
}

/// An append-only record of control-plane requests, in arrival order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrationTrace {
    ops: Vec<TraceOp>,
}

impl RegistrationTrace {
    /// An empty trace.
    pub fn new() -> RegistrationTrace {
        RegistrationTrace::default()
    }

    /// Appends a registration.
    pub fn register(&mut self, name: &str, app: SpecBenchmark) {
        self.ops.push(TraceOp::Register {
            name: name.to_string(),
            app,
        });
    }

    /// Appends a deregistration.
    pub fn deregister(&mut self, tenant: TenantId) {
        self.ops.push(TraceOp::Deregister { tenant });
    }

    /// Appends one quantum.
    pub fn step(&mut self) {
        self.ops.push(TraceOp::Step);
    }

    /// The recorded requests, in order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replays the trace through a fresh control core over `scenario` and
    /// returns the completed run.
    ///
    /// Admission rejections replay as rejections (they are part of the
    /// recorded behavior, not errors); everything else is propagated.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError`] if a deregistration or quantum fails —
    /// which a faithful trace over the same scenario never does.
    pub fn replay(&self, scenario: &Scenario) -> Result<RunRecord, ControlError> {
        let mut core = ControlCore::new(scenario);
        for op in &self.ops {
            match op {
                TraceOp::Register { name, app } => {
                    // A rejected registration still records its tenant row
                    // and event, exactly as it did live.
                    let _ = core.register_batch(name, *app);
                }
                TraceOp::Deregister { tenant } => core.deregister(*tenant)?,
                TraceOp::Step => {
                    core.step_quantum()?;
                }
            }
        }
        Ok(core.into_record())
    }

    /// The trace as a JSON document (a run artifact, not a replay input:
    /// replay works from the in-memory form).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![(
            "ops".into(),
            JsonValue::Arr(
                self.ops
                    .iter()
                    .map(|op| match op {
                        TraceOp::Register { name, app } => JsonValue::Obj(vec![
                            ("op".into(), JsonValue::Str("register".into())),
                            ("name".into(), JsonValue::Str(name.clone())),
                            ("app".into(), JsonValue::Str(app.name.to_string())),
                        ]),
                        TraceOp::Deregister { tenant } => JsonValue::Obj(vec![
                            ("op".into(), JsonValue::Str("deregister".into())),
                            ("tenant".into(), JsonValue::Num(tenant.index() as f64)),
                        ]),
                        TraceOp::Step => {
                            JsonValue::Obj(vec![("op".into(), JsonValue::Str("step".into()))])
                        }
                    })
                    .collect(),
            ),
        )])
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use workloads::batch;

    #[test]
    fn replay_is_self_deterministic() {
        let scenario = Scenario::quick_demo();
        let mut trace = RegistrationTrace::new();
        for _ in 0..scenario.duration_slices {
            trace.step();
        }
        let a = crate::comparable(trace.replay(&scenario).unwrap());
        let b = crate::comparable(trace.replay(&scenario).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn exports_json() {
        let mut trace = RegistrationTrace::new();
        trace.register("newcomer", batch::mix(1, 0xBEEF).apps[0]);
        trace.step();
        trace.deregister(TenantId::from_index(0));
        let json = trace.to_json().to_string();
        assert!(json.contains("\"op\":\"register\""), "{json}");
        assert!(json.contains("\"op\":\"step\""), "{json}");
        assert!(json.contains("\"tenant\":0"), "{json}");
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
    }
}
