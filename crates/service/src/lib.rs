//! The CuttleSys control-plane service: the sans-io [`ControlCore`] run as
//! a long-lived process component.
//!
//! The `cuttlesys` crate ends at a deliberately austere boundary: a core
//! that is a pure function of the scenario seed and the request sequence —
//! no clocks, no threads, no sockets (`cargo xtask lint` enforces the
//! boundary). This crate is everything on the other side of it:
//!
//! * [`reactor`] — a dedicated thread owns the core; callers talk to it
//!   over a bounded command channel (backpressure, not queues). Pacing is
//!   [`Pacing::Manual`] (deterministic; tests, replays, benchmarks) or
//!   [`Pacing::Interval`] (wall-clock quanta, the paper's 100 ms cadence).
//! * [`bus`] — a bounded broadcast bus for lifecycle, admission, breaker,
//!   and degradation events. Publishing never blocks a quantum; lagged
//!   subscribers observably drop ([`bus::Received::Lagged`]).
//! * [`metrics`] + an HTTP endpoint — `GET /metrics` renders a
//!   Prometheus-style document from the telemetry the pipeline already
//!   collects; `GET /state` serves the tenant-table snapshot as JSON.
//! * [`trace`] — record the request sequence, replay it bit-for-bit.
//!
//! ```
//! use cuttlesys::types::Scenario;
//! use service::ServiceBuilder;
//!
//! let service = ServiceBuilder::new(&Scenario::quick_demo()).start().unwrap();
//! let mut events = service.subscribe();
//! service.step_quantum().unwrap();
//! let text = service.metrics().unwrap();
//! assert!(text.contains("cuttlesys_quanta_total 1"));
//! let record = service.shutdown().unwrap();
//! assert_eq!(record.slices.len(), 1);
//! assert!(events.recv().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod bus;
pub mod cluster;
mod http;
pub mod metrics;
pub mod pacing;
mod reactor;
pub mod trace;

use std::io;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

use cuttlesys::control::{
    AdmissionError, ControlCore, ControlError, ControlEvent, ControlSnapshot, TenantId,
};
use cuttlesys::types::{RunRecord, Scenario, SliceRecord};
use workloads::batch::SpecBenchmark;

use crate::bus::{Bus, Subscriber};
use crate::http::{ask, HttpServer, Routes};
use crate::reactor::Command;
use crate::trace::{RegistrationTrace, TraceOp};

pub use crate::pacing::Pacing;

/// Why a service request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The reactor has stopped (the service was shut down or its thread
    /// panicked); no further requests can be served.
    Stopped,
    /// Admission control rejected the registration.
    Admission(AdmissionError),
    /// The control core refused the request.
    Control(ControlError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Stopped => write!(f, "control plane stopped"),
            ServiceError::Admission(e) => write!(f, "{e}"),
            ServiceError::Control(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<AdmissionError> for ServiceError {
    fn from(e: AdmissionError) -> ServiceError {
        ServiceError::Admission(e)
    }
}

impl From<ControlError> for ServiceError {
    fn from(e: ControlError) -> ServiceError {
        ServiceError::Control(e)
    }
}

/// Configures and starts a [`Service`].
pub struct ServiceBuilder {
    scenario: Scenario,
    pacing: Pacing,
    bus_capacity: usize,
    metrics_addr: Option<String>,
}

impl ServiceBuilder {
    /// Defaults: manual pacing, a 256-event bus, no HTTP endpoint.
    pub fn new(scenario: &Scenario) -> ServiceBuilder {
        ServiceBuilder {
            scenario: scenario.clone(),
            pacing: Pacing::Manual,
            bus_capacity: 256,
            metrics_addr: None,
        }
    }

    /// How quanta are paced (manual requests vs. a wall-clock interval).
    pub fn pacing(mut self, pacing: Pacing) -> ServiceBuilder {
        self.pacing = pacing;
        self
    }

    /// Events the broadcast bus retains for slow subscribers.
    pub fn bus_capacity(mut self, capacity: usize) -> ServiceBuilder {
        self.bus_capacity = capacity;
        self
    }

    /// Serve `GET /metrics` and `GET /state` on this address (use
    /// `"127.0.0.1:0"` for an ephemeral port; see [`Service::metrics_addr`]).
    pub fn metrics_addr(mut self, addr: &str) -> ServiceBuilder {
        self.metrics_addr = Some(addr.to_string());
        self
    }

    /// Builds the control core and starts the reactor (and, if configured,
    /// the HTTP endpoint).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the metrics address cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ControlCore::new`].
    pub fn start(self) -> io::Result<Service> {
        let core = ControlCore::new(&self.scenario);
        let bus = Bus::new(self.bus_capacity);
        let (commands, reactor) = reactor::spawn(core, self.pacing, bus.clone());
        let http = match &self.metrics_addr {
            Some(addr) => Some(HttpServer::spawn(
                addr,
                NodeRoutes {
                    commands: commands.clone(),
                },
            )?),
            None => None,
        };
        Ok(Service {
            commands,
            bus,
            http,
            reactor: Some(reactor),
        })
    }
}

/// Routes the HTTP endpoint through the single-node reactor.
struct NodeRoutes {
    commands: SyncSender<Command>,
}

impl Routes for NodeRoutes {
    fn metrics(&self) -> Option<String> {
        ask(&self.commands, |reply| Command::Metrics { reply })
    }

    fn state_json(&self) -> Option<String> {
        let snap = ask(&self.commands, |reply| Command::Snapshot { reply })?;
        let mut body = snap.to_json().to_string();
        body.push('\n');
        Some(body)
    }
}

/// A running control plane: reactor thread, event bus, optional metrics
/// endpoint.
///
/// Dropping the service without [`Service::shutdown`] stops the threads
/// but discards the run record and skips the tenant drain.
pub struct Service {
    commands: SyncSender<Command>,
    bus: Bus<ControlEvent>,
    http: Option<HttpServer>,
    reactor: Option<JoinHandle<()>>,
}

impl Service {
    /// Round-trips one command to the reactor.
    fn ask<T>(&self, make: impl FnOnce(SyncSender<T>) -> Command) -> Result<T, ServiceError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.commands
            .send(make(reply_tx))
            .map_err(|_| ServiceError::Stopped)?;
        reply_rx.recv().map_err(|_| ServiceError::Stopped)
    }

    /// Registers a batch tenant through admission control.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Admission`] when the tenant's worst-case power does
    /// not fit the steady-state budget; [`ServiceError::Stopped`] after
    /// shutdown.
    pub fn register_batch(&self, name: &str, app: SpecBenchmark) -> Result<TenantId, ServiceError> {
        self.ask(|reply| Command::Register {
            name: name.to_string(),
            app,
            reply,
        })?
        .map_err(ServiceError::from)
    }

    /// Drains a batch tenant; it retires once its last slice has run.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Control`] for LC tenants, unknown ids, or tenants
    /// not in a drainable state; [`ServiceError::Stopped`] after shutdown.
    pub fn deregister(&self, tenant: TenantId) -> Result<(), ServiceError> {
        self.ask(|reply| Command::Deregister { tenant, reply })?
            .map_err(ServiceError::from)
    }

    /// Runs one decision quantum now (works in any pacing mode).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Control`] on a lifecycle logic bug;
    /// [`ServiceError::Stopped`] after shutdown.
    pub fn step_quantum(&self) -> Result<SliceRecord, ServiceError> {
        self.ask(|reply| Command::Step { reply })?
            .map_err(ServiceError::from)
    }

    /// A point-in-time view of the tenant table.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] after shutdown.
    pub fn snapshot(&self) -> Result<ControlSnapshot, ServiceError> {
        self.ask(|reply| Command::Snapshot { reply })
    }

    /// The Prometheus-style metrics document (what `GET /metrics` serves).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] after shutdown.
    pub fn metrics(&self) -> Result<String, ServiceError> {
        self.ask(|reply| Command::Metrics { reply })
    }

    /// Subscribes to control-plane events published after this call.
    pub fn subscribe(&self) -> Subscriber<ControlEvent> {
        self.bus.subscribe()
    }

    /// Events overwritten in the bus ring before delivery.
    pub fn bus_overwrites(&self) -> u64 {
        self.bus.overwrites()
    }

    /// The bound metrics endpoint address, when one was configured.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(HttpServer::addr)
    }

    /// Applies a recorded trace, op by op, through the live service.
    /// Admission rejections are recorded behavior, not errors.
    ///
    /// # Errors
    ///
    /// Propagates the first non-admission failure.
    pub fn apply_trace(&self, trace: &RegistrationTrace) -> Result<(), ServiceError> {
        for op in trace.ops() {
            match op {
                TraceOp::Register { name, app } => match self.register_batch(name, *app) {
                    Ok(_) | Err(ServiceError::Admission(_)) => {}
                    Err(e) => return Err(e),
                },
                TraceOp::Deregister { tenant } => self.deregister(*tenant)?,
                TraceOp::Step => {
                    self.step_quantum()?;
                }
            }
        }
        Ok(())
    }

    /// Drains every tenant to Retired, closes the bus, stops the threads,
    /// and returns the completed run record.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the reactor already stopped;
    /// [`ServiceError::Control`] on a lifecycle logic bug during the drain.
    pub fn shutdown(mut self) -> Result<RunRecord, ServiceError> {
        let record = self
            .ask(|reply| Command::Shutdown { reply })?
            .map_err(ServiceError::from)?;
        self.join();
        Ok(*record)
    }

    /// Stops the HTTP endpoint and joins the reactor thread.
    fn join(&mut self) {
        if let Some(http) = self.http.as_mut() {
            http.shutdown();
        }
        self.http = None;
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Stop the endpoint first: it holds a clone of the command sender,
        // and the reactor only exits once every sender is gone (or after an
        // explicit Shutdown command).
        if let Some(http) = self.http.as_mut() {
            http.shutdown();
        }
        self.http = None;
        // Dropping our sender disconnects the reactor's receiver; the
        // reactor closes the bus and exits.
        let (dead_tx, _) = sync_channel(1);
        let _ = std::mem::replace(&mut self.commands, dead_tx);
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

/// Zeroes the wall-clock stage timings (and the wall-clock-budgeted cache
/// counters) in a [`RunRecord`] so runs compare on simulated quantities
/// only — the convention every determinism test in this workspace uses.
pub fn comparable(record: RunRecord) -> RunRecord {
    record.comparable()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::bus::Received;
    use cuttlesys::lifecycle::LifecycleState;

    fn quiet(slices: usize) -> Scenario {
        Scenario {
            noise: 0.0,
            phases: false,
            duration_slices: slices,
            ..Scenario::quick_demo()
        }
    }

    #[test]
    fn manual_service_runs_a_scenario_and_returns_the_record() {
        let scenario = quiet(3);
        let service = ServiceBuilder::new(&scenario).start().unwrap();
        for _ in 0..scenario.duration_slices {
            service.step_quantum().unwrap();
        }
        let record = service.shutdown().unwrap();
        assert_eq!(record.slices.len(), scenario.duration_slices);
    }

    #[test]
    fn events_flow_to_subscribers() {
        let service = ServiceBuilder::new(&quiet(2)).start().unwrap();
        let mut events = service.subscribe();
        service.step_quantum().unwrap();
        drop(service);
        // Dropping the service closes the bus; drain everything published.
        // The stream carries the construction-time admissions and, from the
        // first quantum, every pre-admitted tenant's promotion to Running.
        let mut saw_running = false;
        while let Ok(got) = events.recv() {
            if matches!(
                got,
                Received::Event(ControlEvent::Lifecycle {
                    to: LifecycleState::Running,
                    ..
                })
            ) {
                saw_running = true;
            }
        }
        assert!(saw_running);
    }

    #[test]
    fn requests_after_shutdown_report_stopped() {
        let service = ServiceBuilder::new(&quiet(2)).start().unwrap();
        let extra_sender_probe = {
            let service_ref = &service;
            service_ref.metrics().unwrap()
        };
        assert!(extra_sender_probe.contains("cuttlesys_quanta_total 0"));
        let _record = service.shutdown().unwrap();
    }

    #[test]
    fn http_endpoint_serves_metrics_and_state() {
        use std::io::{Read, Write};
        let service = ServiceBuilder::new(&quiet(2))
            .metrics_addr("127.0.0.1:0")
            .start()
            .unwrap();
        service.step_quantum().unwrap();
        let addr = service.metrics_addr().unwrap();
        let scrape = |path: &str| {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut body = String::new();
            conn.read_to_string(&mut body).unwrap();
            body
        };
        let metrics = scrape("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("cuttlesys_quanta_total 1"), "{metrics}");
        let state = scrape("/state");
        assert!(state.contains("\"tenants\":["), "{state}");
        let missing = scrape("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let record = service.shutdown().unwrap();
        assert_eq!(record.slices.len(), 1);
    }

    #[test]
    fn live_service_matches_trace_replay() {
        let scenario = quiet(3);
        let mut trace = trace::RegistrationTrace::new();
        for _ in 0..scenario.duration_slices {
            trace.step();
        }
        let service = ServiceBuilder::new(&scenario).start().unwrap();
        service.apply_trace(&trace).unwrap();
        let live = service.shutdown().unwrap();
        let replayed = trace.replay(&scenario).unwrap();
        assert_eq!(comparable(live), comparable(replayed));
    }
}
