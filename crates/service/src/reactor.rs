//! The reactor: one thread that owns the control core and serializes every
//! request through a bounded command channel.
//!
//! The sans-io [`ControlCore`] is single-threaded by design — admission,
//! lifecycle settling, and the decision quantum all mutate one state
//! machine. Rather than wrap it in a lock (and let a slow scrape stall a
//! quantum waiting for the mutex), the service runs it on a dedicated
//! reactor thread and talks to it over a bounded `sync_channel` of
//! [`Command`]s, each carrying a rendezvous reply channel. The channel
//! bound ([`COMMAND_QUEUE_DEPTH`]) is the service's backpressure: callers
//! that outrun the reactor block in `send`, they do not grow an unbounded
//! queue.
//!
//! Pacing:
//!
//! * [`Pacing::Manual`] — the reactor blocks on the command channel and
//!   quanta run only on [`Command::Step`]. Fully deterministic; the mode
//!   every test, replay, and benchmark uses.
//! * [`Pacing::Interval`] — the reactor waits with
//!   `recv_timeout(ticker.remaining())`, so commands are served between
//!   quanta and a quantum fires whenever the deadline arrives.
//!
//! After every operation that can queue [`ControlEvent`]s the reactor
//! drains the core's pending queue and publishes onto the broadcast
//! [`Bus`] — which never blocks, so subscribers cannot stretch a quantum.
//!
//! This file (with `http.rs`) is the service's thread boundary: the
//! per-rule allowed-paths table in `cargo xtask lint` exempts exactly
//! these files from `DET-RAW-SPAWN`.

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;

use cluster::{
    ClusterCoordinator, ClusterError, ClusterEvent, ClusterRecord, ClusterSnapshot,
    ClusterTenantId, MigrateError, NodeId, PlacementError,
};
use cuttlesys::control::{
    AdmissionError, ControlCore, ControlError, ControlEvent, ControlSnapshot, TenantId,
};
use cuttlesys::types::{RunRecord, SliceRecord};
use util::WorkerPool;
use workloads::batch::SpecBenchmark;

use crate::bus::Bus;
use crate::metrics;
use crate::pacing::{Pacing, Ticker};

/// Commands the reactor accepts. Each carries a rendezvous reply channel;
/// the reactor never blocks on a reply (a caller that gave up is skipped).
pub(crate) enum Command {
    /// Register a batch tenant through admission control.
    Register {
        name: String,
        app: SpecBenchmark,
        reply: SyncSender<Result<TenantId, AdmissionError>>,
    },
    /// Drain and retire a batch tenant.
    Deregister {
        tenant: TenantId,
        reply: SyncSender<Result<(), ControlError>>,
    },
    /// Run one decision quantum now (any pacing mode).
    Step {
        reply: SyncSender<Result<SliceRecord, ControlError>>,
    },
    /// Snapshot the tenant table.
    Snapshot { reply: SyncSender<ControlSnapshot> },
    /// Render the Prometheus-style metrics document.
    Metrics { reply: SyncSender<String> },
    /// Drain every tenant, close the bus, and return the completed run.
    Shutdown {
        reply: SyncSender<Result<Box<RunRecord>, ControlError>>,
    },
}

/// Commands the channel buffers before `send` blocks the caller.
pub(crate) const COMMAND_QUEUE_DEPTH: usize = 64;

/// Spawns the reactor thread over an already-built core.
// Thread spawning can only fail on OS resource exhaustion, at which point
// the service cannot exist; surfacing the panic is correct.
#[allow(clippy::expect_used)]
pub(crate) fn spawn(
    core: ControlCore,
    pacing: Pacing,
    bus: Bus<ControlEvent>,
) -> (SyncSender<Command>, JoinHandle<()>) {
    let (tx, rx) = mpsc::sync_channel(COMMAND_QUEUE_DEPTH);
    let handle = std::thread::Builder::new()
        .name("cuttlesys-reactor".into())
        .spawn(move || run(core, pacing, bus, rx))
        .expect("spawn the reactor thread");
    (tx, handle)
}

/// Drains the core's pending events onto the bus.
fn publish_pending(core: &mut ControlCore, bus: &Bus<ControlEvent>) {
    for event in core.drain_events() {
        bus.publish(event);
    }
}

fn step_now(core: &mut ControlCore, bus: &Bus<ControlEvent>) -> Result<SliceRecord, ControlError> {
    let result = core.step_quantum();
    publish_pending(core, bus);
    result
}

fn run(mut core: ControlCore, pacing: Pacing, bus: Bus<ControlEvent>, rx: Receiver<Command>) {
    let mut ticker = match pacing {
        Pacing::Manual => None,
        Pacing::Interval(period) => Some(Ticker::new(period)),
    };
    loop {
        let cmd = match ticker.as_mut() {
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
            Some(t) => {
                if t.due() {
                    if let Err(e) = step_now(&mut core, &bus) {
                        // A settle error is a control-plane logic bug
                        // (illegal lifecycle transitions are hard errors by
                        // contract) and in interval mode there is no caller
                        // to hand it to.
                        panic!("paced quantum failed: {e}");
                    }
                    t.advance();
                    continue;
                }
                match rx.recv_timeout(t.remaining()) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        match cmd {
            Command::Register { name, app, reply } => {
                let result = core.register_batch(&name, app);
                publish_pending(&mut core, &bus);
                let _ = reply.send(result);
            }
            Command::Deregister { tenant, reply } => {
                let result = core.deregister(tenant);
                publish_pending(&mut core, &bus);
                let _ = reply.send(result);
            }
            Command::Step { reply } => {
                let _ = reply.send(step_now(&mut core, &bus));
            }
            Command::Snapshot { reply } => {
                let _ = reply.send(core.snapshot());
            }
            Command::Metrics { reply } => {
                let text = metrics::render(&core.snapshot(), core.records(), bus.overwrites());
                let _ = reply.send(text);
            }
            Command::Shutdown { reply } => {
                let result = core.shutdown();
                publish_pending(&mut core, &bus);
                bus.close();
                let _ = reply.send(result.map(|()| Box::new(core.into_record())));
                return;
            }
        }
    }
    // Every service handle dropped without a shutdown: the run record is
    // unreachable now, but subscribers still deserve a clean close.
    bus.close();
}

// --- cluster reactor -------------------------------------------------------

/// Commands the cluster reactor accepts: the [`ClusterCoordinator`]'s
/// public surface, serialized through the same bounded-channel discipline
/// as the single-node [`Command`]s.
pub(crate) enum ClusterCommand {
    /// Register a batch tenant, letting placement choose the node.
    Register {
        name: String,
        app: SpecBenchmark,
        reply: SyncSender<Result<ClusterTenantId, PlacementError>>,
    },
    /// Register a batch tenant on a specific node, bypassing placement.
    RegisterOn {
        node: NodeId,
        name: String,
        app: SpecBenchmark,
        reply: SyncSender<Result<ClusterTenantId, ClusterError>>,
    },
    /// Drain and retire a batch tenant on its node.
    Deregister {
        tenant: ClusterTenantId,
        reply: SyncSender<Result<(), ClusterError>>,
    },
    /// Start migrating a batch tenant to another node.
    Migrate {
        tenant: ClusterTenantId,
        dest: NodeId,
        reply: SyncSender<Result<(), MigrateError>>,
    },
    /// Deliberately drain a node for maintenance: evacuate its tenants,
    /// shut its control plane down, declare it Down.
    DrainNode {
        node: NodeId,
        reply: SyncSender<Result<(), ClusterError>>,
    },
    /// Run one lockstep quantum across the fleet now.
    Step {
        reply: SyncSender<Result<(), ClusterError>>,
    },
    /// Snapshot the whole cluster.
    Snapshot { reply: SyncSender<ClusterSnapshot> },
    /// Render the cluster metrics document (per-node `node=` labels).
    Metrics { reply: SyncSender<String> },
    /// Drain every node, close the bus, and return the completed run.
    Shutdown {
        reply: SyncSender<Result<Box<ClusterRecord>, ClusterError>>,
    },
}

/// Spawns the cluster reactor thread over an already-built coordinator.
/// When `pool` is `Some`, quanta step the fleet over that worker pool
/// (bit-identical to serial stepping — nodes share nothing mid-quantum).
// Thread spawning can only fail on OS resource exhaustion, at which point
// the service cannot exist; surfacing the panic is correct.
#[allow(clippy::expect_used)]
pub(crate) fn spawn_cluster(
    coordinator: ClusterCoordinator,
    pacing: Pacing,
    bus: Bus<ClusterEvent>,
    pool: Option<WorkerPool>,
) -> (SyncSender<ClusterCommand>, JoinHandle<()>) {
    let (tx, rx) = mpsc::sync_channel(COMMAND_QUEUE_DEPTH);
    let handle = std::thread::Builder::new()
        .name("cuttlesys-cluster-reactor".into())
        .spawn(move || run_cluster(coordinator, pacing, bus, pool, rx))
        .expect("spawn the cluster reactor thread");
    (tx, handle)
}

/// Drains the coordinator's pending cluster events onto the bus.
fn publish_cluster_pending(coordinator: &mut ClusterCoordinator, bus: &Bus<ClusterEvent>) {
    for event in coordinator.drain_events() {
        bus.publish(event);
    }
}

fn cluster_step_now(
    coordinator: &mut ClusterCoordinator,
    bus: &Bus<ClusterEvent>,
    pool: Option<&WorkerPool>,
) -> Result<(), ClusterError> {
    let result = match pool {
        Some(pool) => coordinator.step_quantum_pooled(pool),
        None => coordinator.step_quantum(),
    };
    publish_cluster_pending(coordinator, bus);
    result
}

fn run_cluster(
    mut coordinator: ClusterCoordinator,
    pacing: Pacing,
    bus: Bus<ClusterEvent>,
    pool: Option<WorkerPool>,
    rx: Receiver<ClusterCommand>,
) {
    let mut ticker = match pacing {
        Pacing::Manual => None,
        Pacing::Interval(period) => Some(Ticker::new(period)),
    };
    loop {
        let cmd = match ticker.as_mut() {
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
            Some(t) => {
                if t.due() {
                    if let Err(e) = cluster_step_now(&mut coordinator, &bus, pool.as_ref()) {
                        // Same contract as the single-node reactor: a
                        // stepping error is a control-plane logic bug and
                        // interval mode has no caller to hand it to.
                        panic!("paced cluster quantum failed: {e}");
                    }
                    t.advance();
                    continue;
                }
                match rx.recv_timeout(t.remaining()) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        match cmd {
            ClusterCommand::Register { name, app, reply } => {
                let result = coordinator.register_batch(&name, app);
                publish_cluster_pending(&mut coordinator, &bus);
                let _ = reply.send(result);
            }
            ClusterCommand::RegisterOn {
                node,
                name,
                app,
                reply,
            } => {
                let result = coordinator.register_batch_on(node, &name, app);
                publish_cluster_pending(&mut coordinator, &bus);
                let _ = reply.send(result);
            }
            ClusterCommand::Deregister { tenant, reply } => {
                let result = coordinator.deregister(tenant);
                publish_cluster_pending(&mut coordinator, &bus);
                let _ = reply.send(result);
            }
            ClusterCommand::Migrate {
                tenant,
                dest,
                reply,
            } => {
                let result = coordinator.migrate(tenant, dest);
                publish_cluster_pending(&mut coordinator, &bus);
                let _ = reply.send(result);
            }
            ClusterCommand::DrainNode { node, reply } => {
                let result = coordinator.drain_node(node);
                publish_cluster_pending(&mut coordinator, &bus);
                let _ = reply.send(result);
            }
            ClusterCommand::Step { reply } => {
                let _ = reply.send(cluster_step_now(&mut coordinator, &bus, pool.as_ref()));
            }
            ClusterCommand::Snapshot { reply } => {
                let _ = reply.send(coordinator.snapshot());
            }
            ClusterCommand::Metrics { reply } => {
                let text = metrics::render_cluster(&coordinator, bus.overwrites());
                let _ = reply.send(text);
            }
            ClusterCommand::Shutdown { reply } => {
                let result = coordinator.shutdown();
                publish_cluster_pending(&mut coordinator, &bus);
                bus.close();
                let _ = reply.send(result.map(|()| Box::new(coordinator.into_record())));
                return;
            }
        }
    }
    bus.close();
}
