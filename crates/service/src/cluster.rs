//! The cluster control plane run as a long-lived process component.
//!
//! [`ClusterService`] is to [`cluster::ClusterCoordinator`] what
//! [`Service`](crate::Service) is to `ControlCore`: a dedicated reactor
//! thread owns the coordinator, callers talk to it over a bounded command
//! channel, cluster events broadcast on a [`Bus`], and the optional HTTP
//! endpoint serves the fleet's `/metrics` (per-node `node=` labels) and a
//! cluster-wide `/state` rendered from [`ClusterSnapshot::to_json`].
//!
//! ```
//! use cluster::ClusterScenario;
//! use cuttlesys::types::Scenario;
//! use service::cluster::ClusterServiceBuilder;
//!
//! let scenario = ClusterScenario::uniform(&Scenario::quick_demo(), 2);
//! let service = ClusterServiceBuilder::new(&scenario).start().unwrap();
//! service.step_quantum().unwrap();
//! let snap = service.snapshot().unwrap();
//! assert_eq!(snap.quantum, 1);
//! let record = service.shutdown().unwrap();
//! assert_eq!(record.nodes.len(), 2);
//! ```

use std::io;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

use cluster::{
    ClusterConfig, ClusterCoordinator, ClusterError, ClusterEvent, ClusterRecord, ClusterScenario,
    ClusterSnapshot, ClusterTenantId, FleetFaultPlan, MigrateError, NodeId, PlacementError,
};
use util::WorkerPool;
use workloads::batch::SpecBenchmark;

use crate::bus::{Bus, Subscriber};
use crate::http::{ask, HttpServer, Routes};
use crate::pacing::Pacing;
use crate::reactor::{self, ClusterCommand};

/// Why a cluster service request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterServiceError {
    /// The cluster reactor has stopped; no further requests can be served.
    Stopped,
    /// Placement found no node with capacity for the tenant.
    Placement(PlacementError),
    /// The coordinator refused the request.
    Cluster(ClusterError),
    /// A migration request was refused.
    Migrate(MigrateError),
}

impl std::fmt::Display for ClusterServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterServiceError::Stopped => write!(f, "cluster control plane stopped"),
            ClusterServiceError::Placement(e) => write!(f, "{e}"),
            ClusterServiceError::Cluster(e) => write!(f, "{e}"),
            ClusterServiceError::Migrate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterServiceError {}

impl From<PlacementError> for ClusterServiceError {
    fn from(e: PlacementError) -> ClusterServiceError {
        ClusterServiceError::Placement(e)
    }
}

impl From<ClusterError> for ClusterServiceError {
    fn from(e: ClusterError) -> ClusterServiceError {
        ClusterServiceError::Cluster(e)
    }
}

impl From<MigrateError> for ClusterServiceError {
    fn from(e: MigrateError) -> ClusterServiceError {
        ClusterServiceError::Migrate(e)
    }
}

/// Configures and starts a [`ClusterService`].
pub struct ClusterServiceBuilder {
    scenario: ClusterScenario,
    config: ClusterConfig,
    faults: FleetFaultPlan,
    pacing: Pacing,
    bus_capacity: usize,
    metrics_addr: Option<String>,
    pool_threads: Option<usize>,
}

impl ClusterServiceBuilder {
    /// Defaults: default policies, no fleet faults, manual pacing, a
    /// 256-event bus, no HTTP endpoint, serial stepping.
    pub fn new(scenario: &ClusterScenario) -> ClusterServiceBuilder {
        ClusterServiceBuilder {
            scenario: scenario.clone(),
            config: ClusterConfig::default(),
            faults: FleetFaultPlan::none(),
            pacing: Pacing::Manual,
            bus_capacity: 256,
            metrics_addr: None,
            pool_threads: None,
        }
    }

    /// Placement, migration, balance, and health policies.
    pub fn config(mut self, config: ClusterConfig) -> ClusterServiceBuilder {
        self.config = config;
        self
    }

    /// Fleet fault plan injected deterministically each quantum.
    /// [`FleetFaultPlan::none`] (the default) is bit-identical to a
    /// coordinator with no fault machinery at all.
    pub fn faults(mut self, plan: FleetFaultPlan) -> ClusterServiceBuilder {
        self.faults = plan;
        self
    }

    /// How quanta are paced (manual requests vs. a wall-clock interval).
    pub fn pacing(mut self, pacing: Pacing) -> ClusterServiceBuilder {
        self.pacing = pacing;
        self
    }

    /// Events the broadcast bus retains for slow subscribers.
    pub fn bus_capacity(mut self, capacity: usize) -> ClusterServiceBuilder {
        self.bus_capacity = capacity;
        self
    }

    /// Serve `GET /metrics` and `GET /state` on this address (use
    /// `"127.0.0.1:0"` for an ephemeral port).
    pub fn metrics_addr(mut self, addr: &str) -> ClusterServiceBuilder {
        self.metrics_addr = Some(addr.to_string());
        self
    }

    /// Step the fleet over a worker pool of this many threads instead of
    /// serially. Bit-identical results at any width: nodes share nothing
    /// within a quantum.
    pub fn pool_threads(mut self, threads: usize) -> ClusterServiceBuilder {
        self.pool_threads = Some(threads);
        self
    }

    /// Builds the coordinator and starts the cluster reactor (and, if
    /// configured, the HTTP endpoint).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the metrics address cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ClusterCoordinator::new`].
    pub fn start(self) -> io::Result<ClusterService> {
        let coordinator = ClusterCoordinator::with_faults(&self.scenario, self.config, self.faults);
        let bus = Bus::new(self.bus_capacity);
        let pool = self.pool_threads.map(WorkerPool::new);
        let (commands, reactor) =
            reactor::spawn_cluster(coordinator, self.pacing, bus.clone(), pool);
        let http = match &self.metrics_addr {
            Some(addr) => Some(HttpServer::spawn(
                addr,
                ClusterRoutes {
                    commands: commands.clone(),
                },
            )?),
            None => None,
        };
        Ok(ClusterService {
            commands,
            bus,
            http,
            reactor: Some(reactor),
        })
    }
}

/// Routes the HTTP endpoint through the cluster reactor.
struct ClusterRoutes {
    commands: SyncSender<ClusterCommand>,
}

impl Routes for ClusterRoutes {
    fn metrics(&self) -> Option<String> {
        ask(&self.commands, |reply| ClusterCommand::Metrics { reply })
    }

    fn state_json(&self) -> Option<String> {
        let snap = ask(&self.commands, |reply| ClusterCommand::Snapshot { reply })?;
        let mut body = snap.to_json().to_string();
        body.push('\n');
        Some(body)
    }
}

/// A running cluster control plane: reactor thread, event bus, optional
/// metrics endpoint.
///
/// Dropping the service without [`ClusterService::shutdown`] stops the
/// threads but discards the cluster record and skips the fleet drain.
pub struct ClusterService {
    commands: SyncSender<ClusterCommand>,
    bus: Bus<ClusterEvent>,
    http: Option<HttpServer>,
    reactor: Option<JoinHandle<()>>,
}

impl ClusterService {
    /// Round-trips one command to the cluster reactor.
    fn ask<T>(
        &self,
        make: impl FnOnce(SyncSender<T>) -> ClusterCommand,
    ) -> Result<T, ClusterServiceError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.commands
            .send(make(reply_tx))
            .map_err(|_| ClusterServiceError::Stopped)?;
        reply_rx.recv().map_err(|_| ClusterServiceError::Stopped)
    }

    /// Registers a batch tenant, letting placement choose the node.
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Placement`] when no node has capacity;
    /// [`ClusterServiceError::Stopped`] after shutdown.
    pub fn register_batch(
        &self,
        name: &str,
        app: SpecBenchmark,
    ) -> Result<ClusterTenantId, ClusterServiceError> {
        self.ask(|reply| ClusterCommand::Register {
            name: name.to_string(),
            app,
            reply,
        })?
        .map_err(ClusterServiceError::from)
    }

    /// Registers a batch tenant on a specific node, bypassing placement.
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Cluster`] for an unknown node or an
    /// admission rejection; [`ClusterServiceError::Stopped`] after
    /// shutdown.
    pub fn register_batch_on(
        &self,
        node: NodeId,
        name: &str,
        app: SpecBenchmark,
    ) -> Result<ClusterTenantId, ClusterServiceError> {
        self.ask(|reply| ClusterCommand::RegisterOn {
            node,
            name: name.to_string(),
            app,
            reply,
        })?
        .map_err(ClusterServiceError::from)
    }

    /// Drains a batch tenant on its node; it retires once its last slice
    /// has run.
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Cluster`] for LC tenants, unknown ids, or
    /// mid-migration tenants; [`ClusterServiceError::Stopped`] after
    /// shutdown.
    pub fn deregister(&self, tenant: ClusterTenantId) -> Result<(), ClusterServiceError> {
        self.ask(|reply| ClusterCommand::Deregister { tenant, reply })?
            .map_err(ClusterServiceError::from)
    }

    /// Starts migrating a batch tenant to `dest` (drain now, admit after
    /// the modeled cost in quanta).
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Migrate`] when the tenant cannot move;
    /// [`ClusterServiceError::Stopped`] after shutdown.
    pub fn migrate(
        &self,
        tenant: ClusterTenantId,
        dest: NodeId,
    ) -> Result<(), ClusterServiceError> {
        self.ask(|reply| ClusterCommand::Migrate {
            tenant,
            dest,
            reply,
        })?
        .map_err(ClusterServiceError::from)
    }

    /// Deliberately drains a node for maintenance: its tenants evacuate
    /// with warning (batch re-enters admission elsewhere, LC traffic
    /// folds onto surviving replicas), its control plane shuts down
    /// cleanly, and it is declared Down.
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Cluster`] for an unknown node or one that
    /// is already down, drained, or crashed;
    /// [`ClusterServiceError::Stopped`] after shutdown.
    pub fn drain_node(&self, node: NodeId) -> Result<(), ClusterServiceError> {
        self.ask(|reply| ClusterCommand::DrainNode { node, reply })?
            .map_err(ClusterServiceError::from)
    }

    /// Runs one lockstep quantum across the fleet now (any pacing mode).
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Cluster`] on a control-plane logic bug;
    /// [`ClusterServiceError::Stopped`] after shutdown.
    pub fn step_quantum(&self) -> Result<(), ClusterServiceError> {
        self.ask(|reply| ClusterCommand::Step { reply })?
            .map_err(ClusterServiceError::from)
    }

    /// A point-in-time view of the whole cluster.
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Stopped`] after shutdown.
    pub fn snapshot(&self) -> Result<ClusterSnapshot, ClusterServiceError> {
        self.ask(|reply| ClusterCommand::Snapshot { reply })
    }

    /// The cluster metrics document (what `GET /metrics` serves), with
    /// per-node samples under `node=` labels.
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Stopped`] after shutdown.
    pub fn metrics(&self) -> Result<String, ClusterServiceError> {
        self.ask(|reply| ClusterCommand::Metrics { reply })
    }

    /// Subscribes to cluster events published after this call.
    pub fn subscribe(&self) -> Subscriber<ClusterEvent> {
        self.bus.subscribe()
    }

    /// Events overwritten in the bus ring before delivery.
    pub fn bus_overwrites(&self) -> u64 {
        self.bus.overwrites()
    }

    /// The bound metrics endpoint address, when one was configured.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(HttpServer::addr)
    }

    /// Drains every node to retirement, closes the bus, stops the
    /// threads, and returns the completed cluster record.
    ///
    /// # Errors
    ///
    /// [`ClusterServiceError::Stopped`] if the reactor already stopped;
    /// [`ClusterServiceError::Cluster`] on a logic bug during the drain.
    pub fn shutdown(mut self) -> Result<ClusterRecord, ClusterServiceError> {
        let record = self
            .ask(|reply| ClusterCommand::Shutdown { reply })?
            .map_err(ClusterServiceError::from)?;
        self.join();
        Ok(*record)
    }

    /// Stops the HTTP endpoint and joins the reactor thread.
    fn join(&mut self) {
        if let Some(http) = self.http.as_mut() {
            http.shutdown();
        }
        self.http = None;
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        // Same teardown order as the single-node service: the endpoint
        // holds a clone of the command sender, so stop it first, then
        // disconnect the reactor by dropping our own sender.
        if let Some(http) = self.http.as_mut() {
            http.shutdown();
        }
        self.http = None;
        let (dead_tx, _) = sync_channel(1);
        let _ = std::mem::replace(&mut self.commands, dead_tx);
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cuttlesys::types::Scenario;

    fn quiet(slices: usize) -> ClusterScenario {
        let base = Scenario {
            noise: 0.0,
            phases: false,
            duration_slices: slices,
            ..Scenario::quick_demo()
        };
        ClusterScenario::uniform(&base, 2)
    }

    #[test]
    fn manual_cluster_service_runs_a_scenario() {
        let scenario = quiet(3);
        let service = ClusterServiceBuilder::new(&scenario).start().unwrap();
        for _ in 0..3 {
            service.step_quantum().unwrap();
        }
        let record = service.shutdown().unwrap();
        assert_eq!(record.quanta, 3);
        assert_eq!(record.nodes.len(), 2);
        for node in &record.nodes {
            assert_eq!(node.slices.len(), 3);
        }
    }

    #[test]
    fn pooled_service_matches_serial_service() {
        let scenario = quiet(3);
        let serial = ClusterServiceBuilder::new(&scenario).start().unwrap();
        let pooled = ClusterServiceBuilder::new(&scenario)
            .pool_threads(2)
            .start()
            .unwrap();
        for _ in 0..3 {
            serial.step_quantum().unwrap();
            pooled.step_quantum().unwrap();
        }
        assert_eq!(
            serial.shutdown().unwrap().comparable(),
            pooled.shutdown().unwrap().comparable()
        );
    }

    #[test]
    fn http_endpoint_serves_cluster_metrics_and_state() {
        use std::io::{Read, Write};
        let service = ClusterServiceBuilder::new(&quiet(2))
            .metrics_addr("127.0.0.1:0")
            .start()
            .unwrap();
        service.step_quantum().unwrap();
        let addr = service.metrics_addr().unwrap();
        let scrape = |path: &str| {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut body = String::new();
            conn.read_to_string(&mut body).unwrap();
            body
        };
        let metrics = scrape("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("cuttlesys_cluster_nodes 2"), "{metrics}");
        assert!(
            metrics.contains("cuttlesys_quanta_total{node=\"n1\"} 1"),
            "{metrics}"
        );
        let state = scrape("/state");
        assert!(state.contains("\"quantum\":1"), "{state}");
        assert!(state.contains("\"nodes\":["), "{state}");
        let record = service.shutdown().unwrap();
        assert_eq!(record.quanta, 1);
    }

    #[test]
    fn requests_after_shutdown_report_stopped() {
        let service = ClusterServiceBuilder::new(&quiet(2)).start().unwrap();
        let probe = service.metrics().unwrap();
        assert!(
            probe.contains("cuttlesys_cluster_quanta_total 0"),
            "{probe}"
        );
        let _record = service.shutdown().unwrap();
    }
}
