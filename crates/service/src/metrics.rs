//! Prometheus-style text rendering of the control plane's telemetry.
//!
//! The facade computes nothing new: everything is re-expressed from the
//! per-slice [`SliceRecord`]s (and their [`TelemetrySummary`] aggregate)
//! that the decision loop already produces, plus the tenant table snapshot.
//! Rendering happens on the reactor thread between quanta, on demand — a
//! scrape costs one string build, never a measurement.
//!
//! The exposition format is the Prometheus text format, version 0.0.4:
//! `# HELP` / `# TYPE` comment pairs followed by `name{labels} value`
//! samples. Only counters and gauges are used.

use cluster::ClusterCoordinator;
use cuttlesys::control::ControlSnapshot;
use cuttlesys::lifecycle::LifecycleState;
use cuttlesys::telemetry::{TelemetrySummary, STAGE_NAMES};
use cuttlesys::types::SliceRecord;
use std::fmt::Write as _;

/// One metric family: help text, type, then samples.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample(out: &mut String, name: &str, labels: &str, value: f64) {
    // Prometheus has no NaN-free guarantee, but our sources do: guard
    // anyway so a blackout slice cannot poison the whole scrape.
    let value = if value.is_finite() { value } else { 0.0 };
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Renders the full `/metrics` document.
pub fn render(snapshot: &ControlSnapshot, records: &[SliceRecord], bus_overwrites: u64) -> String {
    let mut out = String::with_capacity(4096);

    family(
        &mut out,
        "cuttlesys_quanta_total",
        "counter",
        "Decision quanta run since the service started.",
    );
    sample(&mut out, "cuttlesys_quanta_total", "", records.len() as f64);

    family(
        &mut out,
        "cuttlesys_qos_violations_total",
        "counter",
        "Slices in which any latency-critical tenant violated its QoS.",
    );
    sample(
        &mut out,
        "cuttlesys_qos_violations_total",
        "",
        records.iter().filter(|s| s.qos_violation()).count() as f64,
    );

    family(
        &mut out,
        "cuttlesys_power_violations_total",
        "counter",
        "Slices whose average chip power exceeded the cap.",
    );
    sample(
        &mut out,
        "cuttlesys_power_violations_total",
        "",
        records.iter().filter(|s| s.power_violation).count() as f64,
    );

    family(
        &mut out,
        "cuttlesys_batch_instructions_total",
        "counter",
        "Instructions executed by batch jobs (the paper's throughput metric).",
    );
    sample(
        &mut out,
        "cuttlesys_batch_instructions_total",
        "",
        records.iter().map(|s| s.batch_instructions).sum(),
    );

    family(
        &mut out,
        "cuttlesys_chip_watts",
        "gauge",
        "Time-weighted average chip power over the most recent slice.",
    );
    family(
        &mut out,
        "cuttlesys_cap_watts",
        "gauge",
        "Power cap in effect during the most recent slice.",
    );
    if let Some(last) = records.last() {
        sample(&mut out, "cuttlesys_chip_watts", "", last.chip_watts);
        sample(&mut out, "cuttlesys_cap_watts", "", last.cap_watts);

        family(
            &mut out,
            "cuttlesys_lc_tail_ms",
            "gauge",
            "Per-tenant 99th-percentile latency over the most recent slice.",
        );
        family(
            &mut out,
            "cuttlesys_lc_cores",
            "gauge",
            "Cores held by each latency-critical tenant in the most recent slice.",
        );
        for lc in &last.lc {
            let labels = format!("service=\"{}\"", lc.service);
            sample(&mut out, "cuttlesys_lc_tail_ms", &labels, lc.tail_ms);
            sample(&mut out, "cuttlesys_lc_cores", &labels, lc.cores as f64);
        }
    }

    let summary = TelemetrySummary::over(records.iter().filter_map(|s| s.telemetry.as_ref()));
    if let Some(t) = summary {
        family(
            &mut out,
            "cuttlesys_stage_wall_ms",
            "gauge",
            "Manager compute per pipeline stage (ms), mean and max over the run.",
        );
        for (i, stage) in STAGE_NAMES.iter().enumerate() {
            sample(
                &mut out,
                "cuttlesys_stage_wall_ms",
                &format!("stage=\"{stage}\",stat=\"mean\""),
                t.mean_wall_ms[i],
            );
            sample(
                &mut out,
                "cuttlesys_stage_wall_ms",
                &format!("stage=\"{stage}\",stat=\"max\""),
                t.max_wall_ms[i],
            );
        }

        family(
            &mut out,
            "cuttlesys_search_cache_hit_rate",
            "gauge",
            "Fraction of DDS objective evaluations answered from the memoizing cache.",
        );
        sample(
            &mut out,
            "cuttlesys_search_cache_hit_rate",
            "",
            t.cache_hit_rate(),
        );

        family(
            &mut out,
            "cuttlesys_degraded_quanta_total",
            "counter",
            "Quanta served from the degradation ladder in any way.",
        );
        sample(
            &mut out,
            "cuttlesys_degraded_quanta_total",
            "",
            t.degraded_quanta as f64,
        );

        family(
            &mut out,
            "cuttlesys_samples_rejected_total",
            "counter",
            "Profiling samples rejected by the plausibility gate.",
        );
        sample(
            &mut out,
            "cuttlesys_samples_rejected_total",
            "",
            t.samples_rejected as f64,
        );

        family(
            &mut out,
            "cuttlesys_sample_retries_total",
            "counter",
            "Profiling frames re-sampled after a rejection.",
        );
        sample(
            &mut out,
            "cuttlesys_sample_retries_total",
            "",
            t.sample_retries as f64,
        );

        family(
            &mut out,
            "cuttlesys_last_good_replays_total",
            "counter",
            "Quanta that replayed the last-good plan instead of deciding.",
        );
        sample(
            &mut out,
            "cuttlesys_last_good_replays_total",
            "",
            t.last_good_replays as f64,
        );

        family(
            &mut out,
            "cuttlesys_safe_mode_quanta_total",
            "counter",
            "Quanta served by the safe-mode allocation (safe-mode residency).",
        );
        sample(
            &mut out,
            "cuttlesys_safe_mode_quanta_total",
            "",
            t.safe_mode_quanta as f64,
        );

        family(
            &mut out,
            "cuttlesys_breaker_open_quanta_total",
            "counter",
            "Quanta during which the safe-mode circuit breaker was open.",
        );
        sample(
            &mut out,
            "cuttlesys_breaker_open_quanta_total",
            "",
            t.breaker_open_quanta as f64,
        );
    }

    family(
        &mut out,
        "cuttlesys_breaker_open",
        "gauge",
        "Whether the safe-mode circuit breaker is currently open.",
    );
    sample(
        &mut out,
        "cuttlesys_breaker_open",
        "",
        f64::from(u8::from(snapshot.breaker_open)),
    );

    family(
        &mut out,
        "cuttlesys_tenants",
        "gauge",
        "Tenants per lifecycle state.",
    );
    for state in LifecycleState::ALL {
        let n = snapshot
            .tenants
            .iter()
            .filter(|t| t.state.same_kind(state))
            .count();
        sample(
            &mut out,
            "cuttlesys_tenants",
            &format!("state=\"{}\"", state.name()),
            n as f64,
        );
    }

    family(
        &mut out,
        "cuttlesys_tenant_state",
        "gauge",
        "One sample per tenant, value 1, state carried in the label.",
    );
    for t in &snapshot.tenants {
        sample(
            &mut out,
            "cuttlesys_tenant_state",
            &format!(
                "tenant=\"{}\",kind=\"{}\",state=\"{}\"",
                t.name,
                t.kind,
                t.state.name()
            ),
            1.0,
        );
    }

    family(
        &mut out,
        "cuttlesys_bus_overwrites_total",
        "counter",
        "Events overwritten in the broadcast ring before delivery.",
    );
    sample(
        &mut out,
        "cuttlesys_bus_overwrites_total",
        "",
        bus_overwrites as f64,
    );

    out
}

/// Renders the cluster `/metrics` document: fleet-level counters plus the
/// same per-node families the single-node document exposes, each sample
/// tagged with a `node="nK"` label. The single-node renderer above is
/// untouched — its output stays byte-identical for existing scrapers.
pub fn render_cluster(cluster: &ClusterCoordinator, bus_overwrites: u64) -> String {
    let snapshot = cluster.snapshot();
    let mut out = String::with_capacity(4096 * snapshot.nodes.len().max(1));

    family(
        &mut out,
        "cuttlesys_cluster_nodes",
        "gauge",
        "Nodes under this coordinator.",
    );
    sample(
        &mut out,
        "cuttlesys_cluster_nodes",
        "",
        cluster.num_nodes() as f64,
    );

    family(
        &mut out,
        "cuttlesys_cluster_quanta_total",
        "counter",
        "Lockstep quanta the coordinator has run.",
    );
    sample(
        &mut out,
        "cuttlesys_cluster_quanta_total",
        "",
        cluster.quantum() as f64,
    );

    family(
        &mut out,
        "cuttlesys_cluster_migrations_in_flight",
        "gauge",
        "Tenants currently mid-migration between nodes.",
    );
    sample(
        &mut out,
        "cuttlesys_cluster_migrations_in_flight",
        "",
        snapshot.in_flight as f64,
    );

    family(
        &mut out,
        "cuttlesys_node_up",
        "gauge",
        "Whether each node is serving (1) or declared down (0), with its health state in a label.",
    );
    for (i, health) in snapshot.node_health.iter().enumerate() {
        let up = if *health == "down" { 0.0 } else { 1.0 };
        sample(
            &mut out,
            "cuttlesys_node_up",
            &format!("node=\"n{i}\",health=\"{health}\""),
            up,
        );
    }

    family(
        &mut out,
        "cuttlesys_evacuations_total",
        "counter",
        "Tenants moved off failed or draining nodes (batch re-placements plus LC traffic foldings).",
    );
    sample(
        &mut out,
        "cuttlesys_evacuations_total",
        "",
        snapshot.evacuations as f64,
    );

    family(
        &mut out,
        "cuttlesys_displaced_tenants",
        "gauge",
        "Evacuated tenants parked without a home, awaiting their backoff retry.",
    );
    sample(
        &mut out,
        "cuttlesys_displaced_tenants",
        "",
        snapshot.displaced as f64,
    );

    family(
        &mut out,
        "cuttlesys_fleet_degraded",
        "gauge",
        "Whether the fleet is shedding load because lost capacity left tenants unplaceable.",
    );
    sample(
        &mut out,
        "cuttlesys_fleet_degraded",
        "",
        f64::from(u8::from(snapshot.degraded)),
    );

    family(
        &mut out,
        "cuttlesys_quanta_total",
        "counter",
        "Decision quanta run per node.",
    );
    family(
        &mut out,
        "cuttlesys_qos_violations_total",
        "counter",
        "Slices in which any latency-critical tenant violated its QoS, per node.",
    );
    family(
        &mut out,
        "cuttlesys_batch_instructions_total",
        "counter",
        "Instructions executed by batch jobs, per node.",
    );
    let agents: Vec<_> = (0..cluster.num_nodes())
        .filter_map(|i| cluster.node(cluster::NodeId::from_index(i)))
        .collect();
    for agent in &agents {
        let node = format!("node=\"{}\"", agent.id());
        let records = agent.core().records();
        sample(
            &mut out,
            "cuttlesys_quanta_total",
            &node,
            records.len() as f64,
        );
        sample(
            &mut out,
            "cuttlesys_qos_violations_total",
            &node,
            records.iter().filter(|s| s.qos_violation()).count() as f64,
        );
        sample(
            &mut out,
            "cuttlesys_batch_instructions_total",
            &node,
            records.iter().map(|s| s.batch_instructions).sum(),
        );
    }

    family(
        &mut out,
        "cuttlesys_chip_watts",
        "gauge",
        "Time-weighted average chip power over each node's most recent slice.",
    );
    family(
        &mut out,
        "cuttlesys_lc_tail_ms",
        "gauge",
        "Per-tenant 99th-percentile latency over each node's most recent slice.",
    );
    family(
        &mut out,
        "cuttlesys_lc_cores",
        "gauge",
        "Cores held by each latency-critical tenant in each node's most recent slice.",
    );
    for agent in &agents {
        let node = format!("node=\"{}\"", agent.id());
        if let Some(last) = agent.core().records().last() {
            sample(&mut out, "cuttlesys_chip_watts", &node, last.chip_watts);
            for lc in &last.lc {
                let labels = format!("{node},service=\"{}\"", lc.service);
                sample(&mut out, "cuttlesys_lc_tail_ms", &labels, lc.tail_ms);
                sample(&mut out, "cuttlesys_lc_cores", &labels, lc.cores as f64);
            }
        }
    }

    family(
        &mut out,
        "cuttlesys_lc_traffic_share",
        "gauge",
        "Fraction of an LC service's reference load routed to each node.",
    );
    for (i, shares) in snapshot.lc_shares.iter().enumerate() {
        for (lc_index, share) in shares.iter().enumerate() {
            sample(
                &mut out,
                "cuttlesys_lc_traffic_share",
                &format!("node=\"n{i}\",lc=\"{lc_index}\""),
                *share,
            );
        }
    }

    family(
        &mut out,
        "cuttlesys_tenants",
        "gauge",
        "Cluster tenants per lifecycle state.",
    );
    for state in LifecycleState::ALL {
        let n = snapshot
            .tenants
            .iter()
            .filter(|t| t.state.same_kind(state))
            .count();
        sample(
            &mut out,
            "cuttlesys_tenants",
            &format!("state=\"{}\"", state.name()),
            n as f64,
        );
    }

    family(
        &mut out,
        "cuttlesys_tenant_state",
        "gauge",
        "One sample per cluster tenant, value 1, node and state in the labels.",
    );
    for t in &snapshot.tenants {
        sample(
            &mut out,
            "cuttlesys_tenant_state",
            &format!(
                "tenant=\"{}\",kind=\"{}\",node=\"{}\",state=\"{}\"",
                t.name,
                t.kind,
                t.node,
                t.state.name()
            ),
            1.0,
        );
    }

    family(
        &mut out,
        "cuttlesys_bus_overwrites_total",
        "counter",
        "Events overwritten in the broadcast ring before delivery.",
    );
    sample(
        &mut out,
        "cuttlesys_bus_overwrites_total",
        "",
        bus_overwrites as f64,
    );

    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cuttlesys::control::ControlCore;
    use cuttlesys::types::Scenario;

    #[test]
    fn renders_the_exposition_format() {
        let mut core = ControlCore::new(&Scenario::quick_demo());
        core.step_quantum().unwrap();
        let text = render(&core.snapshot(), core.records(), 2);
        assert!(text.contains("# TYPE cuttlesys_quanta_total counter"));
        assert!(text.contains("cuttlesys_quanta_total 1"));
        assert!(text.contains("cuttlesys_stage_wall_ms{stage=\"search\",stat=\"mean\"}"));
        assert!(text.contains("cuttlesys_tenants{state=\"running\"}"));
        assert!(text.contains("cuttlesys_bus_overwrites_total 2"));
        assert!(text.contains("cuttlesys_lc_tail_ms{service=\"xapian\"}"));
        // Every non-comment line is `name value` or `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed sample line: {line}"
            );
        }
    }

    #[test]
    fn renders_per_node_labels_for_a_cluster() {
        use cluster::ClusterScenario;
        let scenario = ClusterScenario::uniform(&Scenario::quick_demo(), 2);
        let mut coordinator = ClusterCoordinator::new(&scenario);
        coordinator.step_quantum().unwrap();
        let text = render_cluster(&coordinator, 3);
        assert!(text.contains("cuttlesys_cluster_nodes 2"));
        assert!(text.contains("cuttlesys_cluster_quanta_total 1"));
        assert!(text.contains("cuttlesys_quanta_total{node=\"n0\"} 1"));
        assert!(text.contains("cuttlesys_quanta_total{node=\"n1\"} 1"));
        assert!(text.contains("cuttlesys_lc_tail_ms{node=\"n0\",service=\"xapian\"}"));
        assert!(text.contains("cuttlesys_lc_traffic_share{node=\"n1\",lc=\"0\"} 1"));
        assert!(text.contains("cuttlesys_bus_overwrites_total 3"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed sample line: {line}"
            );
        }
    }
}
