//! A bounded broadcast bus: one publisher, many subscribers, drop-oldest.
//!
//! The control plane publishes lifecycle, breaker, and degradation events
//! from the reactor thread — the thread that runs decision quanta. The one
//! invariant that matters more than delivery is therefore: **publishing
//! never blocks**. A slow or stalled subscriber must not be able to stretch
//! a 100 ms quantum.
//!
//! The design is a sequence-numbered ring: the bus keeps the last
//! `capacity` events and a monotone next-sequence counter. Publishing
//! appends and, at capacity, overwrites the oldest event — O(1), lock held
//! for a push, no waiting on consumers. Each [`Subscriber`] remembers the
//! next sequence number it wants; when the ring has already overwritten it,
//! the subscriber *observably* lags: its next receive returns
//! [`Received::Lagged`] with the exact number of events it missed, then
//! resumes from the oldest retained event. Losing events silently and
//! blocking the producer are both bugs; losing them *loudly* is the
//! contract.
//!
//! The bus is deliberately primitive-free beyond `Mutex` + `Condvar`, so
//! the loom model in `tests/loom_bus.rs` can drive real publishers and
//! subscribers through randomized interleavings and check the accounting
//! invariant: `received + lagged == published` for every subscriber that
//! drains to close.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// What a subscriber gets from one receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Received<T> {
    /// The next event in sequence.
    Event(T),
    /// The subscriber fell behind and the ring overwrote `missed` events;
    /// the next receive resumes from the oldest retained event.
    Lagged(u64),
}

/// The bus is closed and fully drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bus closed")
    }
}

impl std::error::Error for Closed {}

struct State<T> {
    ring: VecDeque<T>,
    /// Sequence number of `ring[0]`.
    first_seq: u64,
    /// Sequence number the next published event will take.
    next_seq: u64,
    /// Total events overwritten before any subscriber saw the slot expire
    /// (the `bus_overwrites_total` metric).
    overwrites: u64,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

/// The publishing handle. Clone freely; all clones share one ring.
pub struct Bus<T> {
    shared: Arc<Shared<T>>,
    capacity: usize,
}

impl<T> Clone for Bus<T> {
    fn clone(&self) -> Bus<T> {
        Bus {
            shared: Arc::clone(&self.shared),
            capacity: self.capacity,
        }
    }
}

impl<T: Clone> Bus<T> {
    /// A bus retaining at most `capacity` undelivered events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Bus<T> {
        assert!(capacity > 0, "a zero-capacity bus could never deliver");
        Bus {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    ring: VecDeque::with_capacity(capacity),
                    first_seq: 0,
                    next_seq: 0,
                    overwrites: 0,
                    closed: false,
                }),
                cond: Condvar::new(),
            }),
            capacity,
        }
    }

    /// Publishes an event. Never blocks: at capacity the oldest retained
    /// event is overwritten (subscribers behind it will observe the lag).
    /// Publishing on a closed bus is a no-op.
    // Mutex poisoning means a panicked holder; propagating the panic to the
    // publisher is the correct response.
    #[allow(clippy::unwrap_used)]
    pub fn publish(&self, event: T) {
        let mut s = self.shared.state.lock().unwrap();
        if s.closed {
            return;
        }
        if s.ring.len() == self.capacity {
            s.ring.pop_front();
            s.first_seq += 1;
            s.overwrites += 1;
        }
        s.ring.push_back(event);
        s.next_seq += 1;
        drop(s);
        self.shared.cond.notify_all();
    }

    /// A new subscriber, seeing only events published after this call.
    // See `publish` on poisoning.
    #[allow(clippy::unwrap_used)]
    pub fn subscribe(&self) -> Subscriber<T> {
        let s = self.shared.state.lock().unwrap();
        Subscriber {
            shared: Arc::clone(&self.shared),
            next: s.next_seq,
        }
    }

    /// Closes the bus: publishes stop, subscribers drain what is retained
    /// and then see [`Closed`].
    // See `publish` on poisoning.
    #[allow(clippy::unwrap_used)]
    pub fn close(&self) {
        let mut s = self.shared.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.shared.cond.notify_all();
    }

    /// Total ring slots overwritten before delivery, across all time.
    // See `publish` on poisoning.
    #[allow(clippy::unwrap_used)]
    pub fn overwrites(&self) -> u64 {
        self.shared.state.lock().unwrap().overwrites
    }
}

/// One subscriber's cursor into the ring.
pub struct Subscriber<T> {
    shared: Arc<Shared<T>>,
    next: u64,
}

impl<T: Clone> Subscriber<T> {
    fn poll(next: &mut u64, s: &State<T>) -> Option<Received<T>> {
        if *next < s.first_seq {
            let missed = s.first_seq - *next;
            *next = s.first_seq;
            return Some(Received::Lagged(missed));
        }
        if *next < s.next_seq {
            let idx = (*next - s.first_seq) as usize;
            let event = s.ring[idx].clone();
            *next += 1;
            return Some(Received::Event(event));
        }
        None
    }

    /// Blocks for the next event (or lag notice).
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] once the bus is closed and this subscriber has
    /// drained everything it can still see.
    // See `Bus::publish` on poisoning.
    #[allow(clippy::unwrap_used)]
    pub fn recv(&mut self) -> Result<Received<T>, Closed> {
        let mut s = self.shared.state.lock().unwrap();
        loop {
            if let Some(got) = Self::poll(&mut self.next, &s) {
                return Ok(got);
            }
            if s.closed {
                return Err(Closed);
            }
            s = self.shared.cond.wait(s).unwrap();
        }
    }

    /// Non-blocking receive: `Ok(None)` when nothing is pending.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] once the bus is closed and drained.
    // See `Bus::publish` on poisoning.
    #[allow(clippy::unwrap_used)]
    pub fn try_recv(&mut self) -> Result<Option<Received<T>>, Closed> {
        let s = self.shared.state.lock().unwrap();
        match Self::poll(&mut self.next, &s) {
            Some(got) => Ok(Some(got)),
            None if s.closed => Err(Closed),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order() {
        let bus = Bus::new(8);
        let mut sub = bus.subscribe();
        for i in 0..3 {
            bus.publish(i);
        }
        for i in 0..3 {
            assert_eq!(sub.recv().unwrap(), Received::Event(i));
        }
        assert_eq!(sub.try_recv().unwrap(), None);
    }

    #[test]
    fn lagged_subscribers_observe_the_exact_drop_count() {
        let bus = Bus::new(2);
        let mut sub = bus.subscribe();
        for i in 0..5 {
            bus.publish(i);
        }
        // Ring holds [3, 4]; events 0..3 were overwritten.
        assert_eq!(sub.recv().unwrap(), Received::Lagged(3));
        assert_eq!(sub.recv().unwrap(), Received::Event(3));
        assert_eq!(sub.recv().unwrap(), Received::Event(4));
        assert_eq!(bus.overwrites(), 3);
    }

    #[test]
    fn subscribe_sees_only_the_future() {
        let bus = Bus::new(8);
        bus.publish(1);
        let mut sub = bus.subscribe();
        bus.publish(2);
        assert_eq!(sub.recv().unwrap(), Received::Event(2));
    }

    #[test]
    fn close_drains_then_errors() {
        let bus = Bus::new(8);
        let mut sub = bus.subscribe();
        bus.publish(7);
        bus.close();
        assert_eq!(sub.recv().unwrap(), Received::Event(7));
        assert_eq!(sub.recv(), Err(Closed));
        // Publishing after close is a silent no-op.
        bus.publish(8);
        assert_eq!(sub.try_recv(), Err(Closed));
    }

    #[test]
    fn independent_subscribers_have_independent_cursors() {
        let bus = Bus::new(8);
        let mut a = bus.subscribe();
        let mut b = bus.subscribe();
        bus.publish("x");
        assert_eq!(a.recv().unwrap(), Received::Event("x"));
        assert_eq!(b.recv().unwrap(), Received::Event("x"));
    }
}
