//! The wall-clock boundary of the service.
//!
//! Everything below the service layer — the control core, the driver, the
//! manager — is a pure function of the seed and the request sequence; the
//! `DET-WALLCLOCK` lint bans clock reads there. A *live* service, though,
//! has to anchor its 100 ms decision quanta to real time. This module is
//! the one place the service reads the clock, and the per-rule allowed-
//! paths table in `cargo xtask lint` names exactly this file.
//!
//! [`Pacing::Manual`] keeps the whole stack clock-free: quanta run only
//! when the caller asks (tests, replays, benchmarks). [`Pacing::Interval`]
//! drives a quantum every `period` of wall time, absorbing jitter by
//! anchoring deadlines to the previous deadline rather than to "now".

use std::time::{Duration, Instant};

/// How the reactor decides when to run the next quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Quanta run only on explicit `step_quantum` requests. Deterministic;
    /// the mode every test and trace replay uses.
    Manual,
    /// A quantum fires every `period` of wall time (the paper's 100 ms
    /// cadence would be `Duration::from_millis(100)`).
    Interval(Duration),
}

/// Deadline bookkeeping for [`Pacing::Interval`].
pub struct Ticker {
    period: Duration,
    deadline: Instant,
}

impl Ticker {
    /// A ticker whose first quantum is due `period` from now.
    pub fn new(period: Duration) -> Ticker {
        Ticker {
            period,
            deadline: Instant::now() + period,
        }
    }

    /// Time remaining until the next quantum is due; zero when overdue.
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }

    /// Whether the next quantum is due.
    pub fn due(&self) -> bool {
        Instant::now() >= self.deadline
    }

    /// Advances the deadline by one period. Anchored to the previous
    /// deadline, not to "now": a late quantum shortens the next wait
    /// instead of letting lateness accumulate.
    pub fn advance(&mut self) {
        self.deadline += self.period;
        // If the reactor fell more than a full period behind (e.g. a
        // stop-the-world pause), re-anchor rather than firing a burst of
        // catch-up quanta into a simulator that has no concept of them.
        let now = Instant::now();
        if self.deadline < now {
            self.deadline = now + self.period;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticker_becomes_due_and_advances() {
        let mut t = Ticker::new(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.due());
        t.advance();
        assert!(t.remaining() <= Duration::from_millis(1));
    }
}
