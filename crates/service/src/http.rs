//! A minimal scrape endpoint: `GET /metrics` and `GET /state` over plain
//! `std::net`.
//!
//! There is no async runtime in this workspace, and a metrics endpoint
//! does not need one: scrapes are rare (seconds apart), tiny (one
//! request line in, one document out), and tolerant of milliseconds of
//! latency. The server is a single thread around a non-blocking
//! [`TcpListener`]: it polls `accept` with a short sleep, serves one
//! connection at a time, and forwards each request to a [`Routes`]
//! implementation — which round-trips a command to the owning reactor
//! (single-node or cluster), so a scrape costs the reactor one rendered
//! string between quanta and can never race the control core.
//!
//! Unknown paths get 404, non-GET methods 405, and a request that
//! arrives while the reactor is shutting down gets 503.
//!
//! This file (with `reactor.rs`) is on the `DET-RAW-SPAWN` allowlist in
//! `cargo xtask lint`; the deterministic stack below the service crate
//! never spawns.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the endpoint serves: each hook renders one document, or `None`
/// when the backing reactor has stopped (the scraper gets 503). The
/// single-node service and the cluster service each supply one
/// implementation over their own command channel.
pub(crate) trait Routes: Send + 'static {
    /// The `GET /metrics` body (Prometheus text format).
    fn metrics(&self) -> Option<String>;
    /// The `GET /state` body (a JSON document, newline-terminated).
    fn state_json(&self) -> Option<String>;
}

/// How long the accept loop sleeps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Per-connection read/write deadline: a stalled scraper cannot wedge the
/// endpoint (the next poll iteration serves the next connection).
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// The metrics endpoint thread and its shutdown flag.
pub(crate) struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Returns the bind error verbatim.
    pub(crate) fn spawn<R: Routes>(addr: &str, routes: R) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cuttlesys-metrics-http".into())
            .spawn(move || accept_loop(&listener, &routes, &stop_flag))?;
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<R: Routes>(listener: &TcpListener, routes: &R, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => serve(stream, routes),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // Transient accept errors (e.g. ECONNABORTED) are not fatal to
            // the endpoint; back off and keep listening.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads the request line, routes it, writes the response. Any I/O error
/// just drops the connection — the scraper retries on its next interval.
fn serve<R: Routes>(mut stream: TcpStream, routes: &R) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut buf = [0u8; 1024];
    let mut n = 0;
    // Read until the request line is complete (or the buffer fills — a
    // longer request line than 1 KiB is not one we route anyway).
    while !buf[..n].contains(&b'\n') && n < buf.len() {
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(m) => n += m,
            Err(_) => return,
        }
    }
    let request_line = match std::str::from_utf8(&buf[..n]) {
        Ok(text) => text.lines().next().unwrap_or("").to_string(),
        Err(_) => return,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
        return;
    }
    match path {
        "/metrics" => match routes.metrics() {
            Some(body) => respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body),
            None => unavailable(&mut stream),
        },
        "/state" => match routes.state_json() {
            Some(body) => respond(&mut stream, "200 OK", "application/json", &body),
            None => unavailable(&mut stream),
        },
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "try /metrics or /state\n",
        ),
    }
}

/// Round-trips one command to a reactor; `None` when it has stopped.
pub(crate) fn ask<C, T>(
    commands: &SyncSender<C>,
    make: impl FnOnce(SyncSender<T>) -> C,
) -> Option<T> {
    let (reply_tx, reply_rx) = sync_channel(1);
    commands.send(make(reply_tx)).ok()?;
    reply_rx.recv().ok()
}

fn unavailable(stream: &mut TcpStream) {
    respond(
        stream,
        "503 Service Unavailable",
        "text/plain",
        "control plane stopped\n",
    );
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}
