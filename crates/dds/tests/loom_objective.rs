#![cfg(loom)]
//! Loom model of [`dds::objective::CachedObjective`]'s
//! release-lock-during-eval protocol.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p dds --test loom_objective
//! ```
//!
//! The cache drops its map lock while the wrapped objective runs, so two
//! threads racing on the same unseen point may *both* evaluate it (a benign
//! double miss). The properties that must hold under every interleaving:
//!
//! * both racers return the same value (the objective is pure);
//! * `hits + misses` equals the number of `evaluate` calls — no event is
//!   lost or double-counted, and `misses` mirrors inner evaluations;
//! * the double miss stays bounded: the inner objective runs at most once
//!   per racing thread, and a post-race lookup is a pure hit.

use dds::objective::{CachedObjective, Objective};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;

struct Counting {
    calls: AtomicUsize,
}

impl Objective for Counting {
    fn evaluate(&self, point: &[usize]) -> f64 {
        self.calls.fetch_add(1, Ordering::SeqCst);
        loom::thread::yield_now(); // widen the unlocked window
        point.iter().sum::<usize>() as f64
    }
}

#[test]
fn racing_evaluations_agree_and_lose_no_events() {
    loom::model(|| {
        // The cache borrows its objective; `'static` borrows are the price
        // of crossing `spawn`, so the tiny per-iteration leak is accepted.
        let inner: &'static Counting = Box::leak(Box::new(Counting {
            calls: AtomicUsize::new(0),
        }));
        let cache = Arc::new(CachedObjective::new(inner));

        let a = {
            let cache = Arc::clone(&cache);
            loom::thread::spawn(move || cache.evaluate(&[1, 2, 3]))
        };
        let b = {
            let cache = Arc::clone(&cache);
            loom::thread::spawn(move || cache.evaluate(&[1, 2, 3]))
        };
        let (va, vb) = (a.join().unwrap(), b.join().unwrap());
        assert_eq!(va.to_bits(), vb.to_bits(), "racers must agree bit-for-bit");
        assert_eq!(va, 6.0);

        // A third, post-race evaluation must be a pure hit.
        let hits_before = cache.hits();
        assert_eq!(cache.evaluate(&[1, 2, 3]), 6.0);
        assert_eq!(cache.hits(), hits_before + 1, "post-race lookup must hit");

        assert_eq!(
            cache.hits() + cache.misses(),
            3,
            "every evaluate is either a hit or a miss"
        );
        let calls = inner.calls.load(Ordering::SeqCst);
        assert!(
            (1..=2).contains(&calls),
            "inner objective ran {calls} times for one point"
        );
        assert_eq!(cache.misses(), calls, "misses mirror inner evaluations");
    });
}
