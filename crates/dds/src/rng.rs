//! Seeded random-variate helpers.
//!
//! The `rand` crate alone (without `rand_distr`) provides only uniform
//! variates; DDS perturbations need standard normals, so we supply a small
//! Box–Muller transform.

use rand::RngExt;

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn tails_behave_like_a_gaussian() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let beyond_2 = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!(
            (beyond_2 - 0.0455).abs() < 0.01,
            "two-sigma mass {beyond_2}"
        );
    }
}
