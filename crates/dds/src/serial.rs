//! The reference single-threaded DDS.
//!
//! Tolson & Shoemaker's algorithm, specialized to the discrete configuration
//! spaces of §VI: each iteration perturbs every free dimension with
//! probability `p(i) = 1 − ln(i)/ln(maxIter)` (at least one), by
//! `r · #confs · N(0,1)` reflected back into range, and greedily keeps the
//! better point.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::objective::Objective;
use crate::rng::standard_normal;
use crate::{SearchResult, SearchSpace};

/// Parameters of the serial DDS run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdsParams {
    /// Iteration budget (Fig. 6: 40 for the parallel variant; the serial
    /// reference gets the equivalent sequential budget by default).
    pub max_iters: usize,
    /// Perturbation radius as a fraction of the choice range.
    pub r: f64,
    /// Number of uniformly random starting points (Fig. 6: 50).
    pub initial_points: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record every evaluated point (for the Fig. 10(a) scatter).
    pub record_explored: bool,
}

impl Default for DdsParams {
    fn default() -> Self {
        DdsParams {
            max_iters: 400,
            r: 0.2,
            initial_points: 50,
            seed: 0xDD5,
            record_explored: false,
        }
    }
}

/// Runs serial DDS, maximizing `objective` over `space`.
///
/// # Panics
///
/// Panics if `max_iters == 0` or `initial_points == 0`.
pub fn search(space: &SearchSpace, objective: &dyn Objective, params: &DdsParams) -> SearchResult {
    assert!(params.max_iters > 0, "need at least one iteration");
    assert!(params.initial_points > 0, "need at least one initial point");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let free = space.free_dims();
    let mut explored = Vec::new();
    let mut evaluations = 0;

    let record = |point: &[usize], value: f64, explored: &mut Vec<(Vec<usize>, f64)>| {
        if params.record_explored {
            explored.push((point.to_vec(), value));
        }
    };

    // Initial random population; best becomes the incumbent.
    let mut best_point = space.random_point(&mut rng);
    let mut best_value = objective.evaluate(&best_point);
    evaluations += 1;
    record(&best_point, best_value, &mut explored);
    for _ in 1..params.initial_points {
        let p = space.random_point(&mut rng);
        let v = objective.evaluate(&p);
        evaluations += 1;
        record(&p, v, &mut explored);
        if v > best_value {
            best_value = v;
            best_point = p;
        }
    }

    let ln_max = (params.max_iters as f64).ln().max(f64::MIN_POSITIVE);
    for i in 1..=params.max_iters {
        let p_select = 1.0 - (i as f64).ln() / ln_max;
        let mut candidate = best_point.clone();
        let mut perturbed_any = false;
        for &d in &free {
            if rng.random_range(0.0..1.0) < p_select {
                let delta = params.r * space.num_choices() as f64 * standard_normal(&mut rng);
                candidate[d] = space.reflect(candidate[d] as f64 + delta);
                perturbed_any = true;
            }
        }
        if !perturbed_any && !free.is_empty() {
            // DDS always perturbs at least one dimension.
            let d = free[rng.random_range(0..free.len())];
            let delta = params.r * space.num_choices() as f64 * standard_normal(&mut rng);
            candidate[d] = space.reflect(candidate[d] as f64 + delta);
        }
        let v = objective.evaluate(&candidate);
        evaluations += 1;
        record(&candidate, v, &mut explored);
        if v > best_value {
            best_value = v;
            best_point = candidate;
        }
    }

    SearchResult {
        best_point,
        best_value,
        evaluations,
        explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Separable objective with a unique optimum at `target` in every
    /// dimension.
    fn separable(target: usize) -> impl Fn(&[usize]) -> f64 + Sync {
        move |x: &[usize]| {
            -x.iter()
                .map(|&v| (v as f64 - target as f64).abs())
                .sum::<f64>()
        }
    }

    #[test]
    fn finds_separable_optimum() {
        let space = SearchSpace::new(10, 108);
        let result = search(&space, &separable(54), &DdsParams::default());
        // Perfect would be 0; DDS should land very close.
        assert!(
            result.best_value > -20.0,
            "best value {}",
            result.best_value
        );
    }

    #[test]
    fn respects_frozen_dimensions() {
        let mut space = SearchSpace::new(6, 50);
        space.freeze(0, 9);
        space.freeze(3, 11);
        let result = search(&space, &separable(40), &DdsParams::default());
        assert_eq!(result.best_point[0], 9);
        assert_eq!(result.best_point[3], 11);
        assert!(space.contains(&result.best_point));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let space = SearchSpace::new(8, 108);
        let a = search(&space, &separable(30), &DdsParams::default());
        let b = search(&space, &separable(30), &DdsParams::default());
        assert_eq!(a.best_point, b.best_point);
        assert_eq!(a.best_value, b.best_value);
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let space = SearchSpace::new(12, 108);
        let short = search(
            &space,
            &separable(100),
            &DdsParams {
                max_iters: 20,
                ..DdsParams::default()
            },
        );
        let long = search(
            &space,
            &separable(100),
            &DdsParams {
                max_iters: 2000,
                ..DdsParams::default()
            },
        );
        assert!(long.best_value >= short.best_value);
    }

    #[test]
    fn explored_points_are_recorded_when_asked() {
        let space = SearchSpace::new(4, 10);
        let params = DdsParams {
            record_explored: true,
            max_iters: 25,
            ..DdsParams::default()
        };
        let result = search(&space, &separable(5), &params);
        assert_eq!(result.explored.len(), result.evaluations);
        assert_eq!(result.evaluations, 50 + 25);
        let off = search(
            &space,
            &separable(5),
            &DdsParams {
                max_iters: 25,
                ..DdsParams::default()
            },
        );
        assert!(off.explored.is_empty());
    }

    #[test]
    fn handles_multimodal_objective() {
        // Two peaks; the global one is higher. DDS should not get stuck on
        // the local peak given its global early phase.
        let space = SearchSpace::new(6, 100);
        let objective = |x: &[usize]| {
            let d_local: f64 = x.iter().map(|&v| (v as f64 - 20.0).abs()).sum();
            let d_global: f64 = x.iter().map(|&v| (v as f64 - 80.0).abs()).sum();
            (10.0 - d_local / 10.0).max(20.0 - d_global / 10.0)
        };
        let result = search(&space, &objective, &DdsParams::default());
        assert!(
            result.best_value > 15.0,
            "should find the global basin, got {}",
            result.best_value
        );
    }
}
