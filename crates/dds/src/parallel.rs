//! Parallel DDS — the paper's Alg. 2.
//!
//! `N` worker threads share a global best point. Each iteration, every
//! thread generates `pointsPerIteration` candidates by perturbing the global
//! best, keeps its local best, and a barrier-synchronized reduction installs
//! the best local best as the next global best. To stop the threads from
//! exploring the same neighbourhood, thread groups use different perturbation
//! radii: the first quarter uses `r₁`, the next `r₂`, and so on
//! (`r = [0.2, 0.3, 0.4, 0.5]`, Fig. 6).

use std::sync::{Barrier, Mutex};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::objective::Objective;
use crate::rng::standard_normal;
use crate::{SearchResult, SearchSpace};

/// Parameters of the parallel DDS run, defaulting to the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelDdsParams {
    /// Iteration budget (Fig. 6: 40).
    pub max_iters: usize,
    /// Perturbation radii assigned to thread groups (Fig. 6:
    /// `[0.2, 0.3, 0.4, 0.5]`).
    pub r_values: Vec<f64>,
    /// Candidates each thread generates per iteration (Fig. 6: 10).
    pub points_per_iteration: usize,
    /// Number of uniformly random starting points (Fig. 6: 50).
    pub initial_points: usize,
    /// Worker threads; the paper uses one per core.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record every evaluated point (for the Fig. 10(a) scatter).
    pub record_explored: bool,
}

impl Default for ParallelDdsParams {
    fn default() -> Self {
        ParallelDdsParams {
            max_iters: 40,
            r_values: vec![0.2, 0.3, 0.4, 0.5],
            points_per_iteration: 10,
            initial_points: 50,
            threads: 8,
            seed: 0xDD5,
            record_explored: false,
        }
    }
}

struct Shared {
    best_point: Vec<usize>,
    best_value: f64,
}

/// Runs parallel DDS (Alg. 2), maximizing `objective` over `space`.
///
/// Deterministic for a fixed seed: candidate generation is seeded per
/// (thread, iteration) and the reduction breaks ties by thread index.
///
/// # Panics
///
/// Panics if any of `max_iters`, `points_per_iteration`, `initial_points`,
/// `threads`, or `r_values` is zero/empty.
pub fn parallel_search(
    space: &SearchSpace,
    objective: &dyn Objective,
    params: &ParallelDdsParams,
) -> SearchResult {
    assert!(params.max_iters > 0, "need at least one iteration");
    assert!(
        params.points_per_iteration > 0,
        "need at least one point per iteration"
    );
    assert!(params.initial_points > 0, "need at least one initial point");
    assert!(params.threads > 0, "need at least one thread");
    assert!(
        !params.r_values.is_empty(),
        "need at least one perturbation radius"
    );

    // Phase 1 (Alg. 2 lines 5-6): random initial points, best becomes the
    // incumbent. Done serially — it is a tiny fraction of the work.
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut best_point = space.random_point(&mut rng);
    let mut best_value = objective.evaluate(&best_point);
    let explored = Mutex::new(Vec::new());
    let mut evaluations = params.initial_points;
    if params.record_explored {
        explored
            .lock()
            .unwrap()
            .push((best_point.clone(), best_value));
    }
    for _ in 1..params.initial_points {
        let p = space.random_point(&mut rng);
        let v = objective.evaluate(&p);
        if params.record_explored {
            explored.lock().unwrap().push((p.clone(), v));
        }
        if v > best_value {
            best_value = v;
            best_point = p;
        }
    }

    let shared = Mutex::new(Shared {
        best_point,
        best_value,
    });
    let barrier = Barrier::new(params.threads);
    let free = space.free_dims();
    let ln_max = (params.max_iters as f64).ln().max(f64::MIN_POSITIVE);
    // Local bests posted by each thread every iteration, reduced by thread 0.
    type Post = Mutex<Option<(Vec<usize>, f64)>>;
    let posts: Vec<Post> = (0..params.threads).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for t in 0..params.threads {
            let (shared, barrier, posts, explored, free) =
                (&shared, &barrier, &posts, &explored, &free);
            let params = &params;
            scope.spawn(move |_| {
                // Alg. 2: the first N/4 threads use r₁, the next N/4 use r₂…
                let group = t * params.r_values.len() / params.threads;
                let r = params.r_values[group.min(params.r_values.len() - 1)];
                let mut rng = StdRng::seed_from_u64(
                    params.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)),
                );
                for i in 1..=params.max_iters {
                    let (global_point, global_value) = {
                        let g = shared.lock().unwrap();
                        (g.best_point.clone(), g.best_value)
                    };
                    let mut local_point = global_point.clone();
                    let mut local_value = global_value;
                    let p_select = 1.0 - (i as f64).ln() / ln_max;
                    for _ in 0..params.points_per_iteration {
                        let mut candidate = local_point.clone();
                        let mut perturbed_any = false;
                        for &d in free {
                            if rng.random_range(0.0..1.0) < p_select {
                                let delta =
                                    r * space.num_choices() as f64 * standard_normal(&mut rng);
                                candidate[d] = space.reflect(candidate[d] as f64 + delta);
                                perturbed_any = true;
                            }
                        }
                        if !perturbed_any && !free.is_empty() {
                            let d = free[rng.random_range(0..free.len())];
                            let delta = r * space.num_choices() as f64 * standard_normal(&mut rng);
                            candidate[d] = space.reflect(candidate[d] as f64 + delta);
                        }
                        let v = objective.evaluate(&candidate);
                        if params.record_explored {
                            explored.lock().unwrap().push((candidate.clone(), v));
                        }
                        if v > local_value {
                            local_value = v;
                            local_point = candidate;
                        }
                    }
                    *posts[t].lock().unwrap() = Some((local_point, local_value));
                    barrier.wait();
                    if t == 0 {
                        let mut g = shared.lock().unwrap();
                        for post in posts.iter() {
                            if let Some((p, v)) = post.lock().unwrap().take() {
                                if v > g.best_value {
                                    g.best_value = v;
                                    g.best_point = p;
                                }
                            }
                        }
                    }
                    barrier.wait();
                }
            });
        }
    })
    .expect("parallel DDS worker panicked");

    evaluations += params.max_iters * params.points_per_iteration * params.threads;
    let g = shared.into_inner().unwrap();
    SearchResult {
        best_point: g.best_point,
        best_value: g.best_value,
        evaluations,
        explored: explored.into_inner().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{search, DdsParams};

    fn separable(target: usize) -> impl Fn(&[usize]) -> f64 + Sync {
        move |x: &[usize]| {
            -x.iter()
                .map(|&v| (v as f64 - target as f64).abs())
                .sum::<f64>()
        }
    }

    #[test]
    fn finds_separable_optimum() {
        let space = SearchSpace::new(16, 108);
        let result = parallel_search(&space, &separable(54), &ParallelDdsParams::default());
        assert!(
            result.best_value > -40.0,
            "best value {}",
            result.best_value
        );
    }

    #[test]
    fn respects_frozen_dimensions() {
        let mut space = SearchSpace::new(8, 108);
        space.freeze(0, 100);
        space.freeze(7, 3);
        let result = parallel_search(&space, &separable(50), &ParallelDdsParams::default());
        assert_eq!(result.best_point[0], 100);
        assert_eq!(result.best_point[7], 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let space = SearchSpace::new(8, 108);
        let params = ParallelDdsParams {
            threads: 4,
            ..ParallelDdsParams::default()
        };
        let a = parallel_search(&space, &separable(30), &params);
        let b = parallel_search(&space, &separable(30), &params);
        assert_eq!(a.best_point, b.best_point);
    }

    #[test]
    fn parallel_matches_or_beats_budget_matched_serial() {
        // With the same total evaluation budget, the multi-radius parallel
        // search should be at least competitive on a rugged objective.
        let space = SearchSpace::new(16, 108);
        let objective = |x: &[usize]| {
            x.iter()
                .map(|&v| {
                    let d = (v as f64 - 70.0).abs();
                    (50.0 - d) + 5.0 * (v as f64 * 0.9).sin()
                })
                .sum::<f64>()
        };
        let par_params = ParallelDdsParams {
            threads: 4,
            ..ParallelDdsParams::default()
        };
        let par = parallel_search(&space, &objective, &par_params);
        let serial_budget = par.evaluations - par_params.initial_points;
        let ser = search(
            &space,
            &objective,
            &DdsParams {
                max_iters: serial_budget,
                ..DdsParams::default()
            },
        );
        assert!(
            par.best_value > ser.best_value * 0.95,
            "parallel {} vs serial {}",
            par.best_value,
            ser.best_value
        );
    }

    #[test]
    fn evaluation_count_matches_formula() {
        let space = SearchSpace::new(4, 10);
        let params = ParallelDdsParams {
            threads: 2,
            max_iters: 5,
            points_per_iteration: 3,
            initial_points: 7,
            record_explored: true,
            ..ParallelDdsParams::default()
        };
        let result = parallel_search(&space, &separable(5), &params);
        assert_eq!(result.evaluations, 7 + 5 * 3 * 2);
        assert_eq!(result.explored.len(), result.evaluations);
    }

    #[test]
    fn single_thread_works() {
        let space = SearchSpace::new(6, 20);
        let params = ParallelDdsParams {
            threads: 1,
            ..ParallelDdsParams::default()
        };
        let result = parallel_search(&space, &separable(10), &params);
        assert!(space.contains(&result.best_point));
    }
}
