//! Parallel DDS — the paper's Alg. 2.
//!
//! `N` worker threads share a global best point. Each iteration, every
//! thread generates `pointsPerIteration` candidates by perturbing the global
//! best, keeps its local best, and a synchronized reduction installs the
//! best local best as the next global best. To stop the threads from
//! exploring the same neighbourhood, thread groups use different perturbation
//! radii: the first quarter uses `r₁`, the next `r₂`, and so on
//! (`r = [0.2, 0.3, 0.4, 0.5]`, Fig. 6).
//!
//! Two execution back-ends produce bit-identical results:
//!
//! * [`parallel_search`] spawns one scoped OS thread per logical worker and
//!   synchronizes iterations with a barrier — the original shape, kept as
//!   the reference implementation;
//! * [`parallel_search_in`] with a [`WorkerPool`] keeps the iteration loop
//!   on the calling thread and fans each iteration's per-worker candidate
//!   batches out to the pool. Per-worker RNG streams persist across
//!   iterations and the reduction runs on the orchestrator in worker-index
//!   order, so the result does not depend on the pool's physical width —
//!   a 1-thread pool and an 8-thread pool return the same answer as the
//!   spawning back-end.

use std::sync::{Barrier, Mutex};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use util::WorkerPool;

use crate::objective::Objective;
use crate::rng::standard_normal;
use crate::{SearchResult, SearchSpace};

/// Parameters of the parallel DDS run, defaulting to the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelDdsParams {
    /// Iteration budget (Fig. 6: 40).
    pub max_iters: usize,
    /// Perturbation radii assigned to thread groups (Fig. 6:
    /// `[0.2, 0.3, 0.4, 0.5]`).
    pub r_values: Vec<f64>,
    /// Candidates each thread generates per iteration (Fig. 6: 10).
    pub points_per_iteration: usize,
    /// Number of uniformly random starting points (Fig. 6: 50).
    pub initial_points: usize,
    /// Logical worker threads; the paper uses one per core. With a pool
    /// back-end this is the number of RNG streams, not OS threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record every evaluated point (for the Fig. 10(a) scatter).
    pub record_explored: bool,
}

impl Default for ParallelDdsParams {
    fn default() -> Self {
        ParallelDdsParams {
            max_iters: 40,
            r_values: vec![0.2, 0.3, 0.4, 0.5],
            points_per_iteration: 10,
            initial_points: 50,
            threads: 8,
            seed: 0xDD5,
            record_explored: false,
        }
    }
}

struct Shared {
    best_point: Vec<usize>,
    best_value: f64,
}

/// Evaluated points, in evaluation order (only filled when
/// `record_explored` is set).
type ExploredLog = Vec<(Vec<usize>, f64)>;

fn validate(params: &ParallelDdsParams) {
    assert!(params.max_iters > 0, "need at least one iteration");
    assert!(
        params.points_per_iteration > 0,
        "need at least one point per iteration"
    );
    assert!(params.initial_points > 0, "need at least one initial point");
    assert!(params.threads > 0, "need at least one thread");
    assert!(
        !params.r_values.is_empty(),
        "need at least one perturbation radius"
    );
}

/// Phase 1 (Alg. 2 lines 5-6): random initial points, best becomes the
/// incumbent. Done serially — it is a tiny fraction of the work.
fn initial_phase(
    space: &SearchSpace,
    objective: &dyn Objective,
    params: &ParallelDdsParams,
) -> (Vec<usize>, f64, ExploredLog) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut best_point = space.random_point(&mut rng);
    let mut best_value = objective.evaluate(&best_point);
    let mut explored = Vec::new();
    if params.record_explored {
        explored.push((best_point.clone(), best_value));
    }
    for _ in 1..params.initial_points {
        let p = space.random_point(&mut rng);
        let v = objective.evaluate(&p);
        if params.record_explored {
            explored.push((p.clone(), v));
        }
        if v > best_value {
            best_value = v;
            best_point = p;
        }
    }
    (best_point, best_value, explored)
}

/// The seed of logical worker `t`, spread by the SplitMix64 golden gamma.
fn worker_seed(seed: u64, t: usize) -> u64 {
    seed ^ util::rng64::GOLDEN_GAMMA.wrapping_mul(t as u64 + 1)
}

/// The perturbation radius of logical worker `t` (Alg. 2: the first N/4
/// threads use r₁, the next N/4 use r₂, …).
fn worker_radius(params: &ParallelDdsParams, t: usize) -> f64 {
    let group = t * params.r_values.len() / params.threads;
    params.r_values[group.min(params.r_values.len() - 1)]
}

/// One logical worker's share of one iteration: `points_per_iteration`
/// candidates perturbed from the global best, greedily keeping the local
/// best. Shared verbatim by both back-ends so they cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn worker_iteration(
    space: &SearchSpace,
    objective: &dyn Objective,
    params: &ParallelDdsParams,
    free: &[usize],
    r: f64,
    p_select: f64,
    global_point: &[usize],
    global_value: f64,
    rng: &mut StdRng,
    explored: &mut Vec<(Vec<usize>, f64)>,
) -> (Vec<usize>, f64) {
    let mut local_point = global_point.to_vec();
    let mut local_value = global_value;
    for _ in 0..params.points_per_iteration {
        let mut candidate = local_point.clone();
        let mut perturbed_any = false;
        for &d in free {
            if rng.random_range(0.0..1.0) < p_select {
                let delta = r * space.num_choices() as f64 * standard_normal(rng);
                candidate[d] = space.reflect(candidate[d] as f64 + delta);
                perturbed_any = true;
            }
        }
        if !perturbed_any && !free.is_empty() {
            let d = free[rng.random_range(0..free.len())];
            let delta = r * space.num_choices() as f64 * standard_normal(rng);
            candidate[d] = space.reflect(candidate[d] as f64 + delta);
        }
        let v = objective.evaluate(&candidate);
        if params.record_explored {
            explored.push((candidate.clone(), v));
        }
        if v > local_value {
            local_value = v;
            local_point = candidate;
        }
    }
    (local_point, local_value)
}

/// Runs parallel DDS (Alg. 2), maximizing `objective` over `space`, with
/// one scoped OS thread per logical worker.
///
/// Deterministic for a fixed seed: candidate generation is seeded per
/// (thread, iteration) and the reduction breaks ties by thread index.
///
/// # Panics
///
/// Panics if any of `max_iters`, `points_per_iteration`, `initial_points`,
/// `threads`, or `r_values` is zero/empty.
pub fn parallel_search(
    space: &SearchSpace,
    objective: &dyn Objective,
    params: &ParallelDdsParams,
) -> SearchResult {
    validate(params);
    let (best_point, best_value, initial_explored) = initial_phase(space, objective, params);

    let shared = Mutex::new(Shared {
        best_point,
        best_value,
    });
    let barrier = Barrier::new(params.threads);
    let free = space.free_dims();
    let ln_max = (params.max_iters as f64).ln().max(f64::MIN_POSITIVE);
    // Local bests posted by each thread every iteration, reduced by thread 0.
    type Post = Mutex<Option<(Vec<usize>, f64)>>;
    let posts: Vec<Post> = (0..params.threads).map(|_| Mutex::new(None)).collect();
    // Per-thread explored logs, concatenated in thread order afterwards so
    // the record is deterministic despite the concurrent evaluation.
    let mut explored_parts: Vec<Vec<(Vec<usize>, f64)>> = vec![Vec::new(); params.threads];

    // lint:allow(DET-RAW-SPAWN, reason = "reference spawn-per-call back-end kept as the cross-check for the pooled back-end; tests/determinism.rs pins both to identical bits")
    crossbeam::scope(|scope| {
        for (t, part) in explored_parts.iter_mut().enumerate() {
            let (shared, barrier, posts, free) = (&shared, &barrier, &posts, &free);
            let params = &params;
            scope.spawn(move |_| {
                let r = worker_radius(params, t);
                let mut rng = StdRng::seed_from_u64(worker_seed(params.seed, t));
                for i in 1..=params.max_iters {
                    let (global_point, global_value) = {
                        // lint:allow(PANIC-POLICY, reason = "lock poisoning means a sibling worker already panicked; propagating tears down the scope, which the breaker absorbs")
                        let g = shared.lock().unwrap();
                        (g.best_point.clone(), g.best_value)
                    };
                    let p_select = 1.0 - (i as f64).ln() / ln_max;
                    let local = worker_iteration(
                        space,
                        objective,
                        params,
                        free,
                        r,
                        p_select,
                        &global_point,
                        global_value,
                        &mut rng,
                        part,
                    );
                    // lint:allow(PANIC-POLICY, reason = "poisoned post slot means a sibling panicked; propagate")
                    *posts[t].lock().unwrap() = Some(local);
                    barrier.wait();
                    if t == 0 {
                        // lint:allow(PANIC-POLICY, reason = "poisoned global best means a sibling panicked; propagate")
                        let mut g = shared.lock().unwrap();
                        for post in posts.iter() {
                            // lint:allow(PANIC-POLICY, reason = "poisoned post slot means a sibling panicked; propagate")
                            if let Some((p, v)) = post.lock().unwrap().take() {
                                if v > g.best_value {
                                    g.best_value = v;
                                    g.best_point = p;
                                }
                            }
                        }
                    }
                    barrier.wait();
                }
            });
        }
    })
    // Documented panic: a worker panic is a search-stage fault, and the
    // decision pipeline's circuit breaker catches it at the stage boundary.
    // lint:allow(PANIC-POLICY, reason = "worker panic surfaces as a stage fault for the circuit breaker; swallowing it would return a half-reduced best")
    .expect("parallel DDS worker panicked");

    // lint:allow(PANIC-POLICY, reason = "into_inner after the scope joined every worker; poisoning is impossible unless a panic already propagated above")
    let g = shared.into_inner().unwrap();
    let mut explored = initial_explored;
    explored.extend(util::reduce::ordered_concat(explored_parts));
    SearchResult {
        best_point: g.best_point,
        best_value: g.best_value,
        evaluations: params.initial_points
            + params.max_iters * params.points_per_iteration * params.threads,
        explored,
    }
}

/// Runs parallel DDS on an execution back-end: `Some(pool)` dispatches each
/// iteration's logical workers to the persistent pool, `None` falls back to
/// [`parallel_search`]'s spawn-per-call threads.
///
/// Bit-identical to [`parallel_search`] for the same `params`, whatever the
/// pool's physical thread count: per-worker RNG streams live on the
/// orchestrator across iterations, and the reduction happens on the
/// orchestrator in worker-index order.
pub fn parallel_search_in(
    pool: Option<&WorkerPool>,
    space: &SearchSpace,
    objective: &dyn Objective,
    params: &ParallelDdsParams,
) -> SearchResult {
    let Some(pool) = pool else {
        return parallel_search(space, objective, params);
    };
    validate(params);
    let (mut best_point, mut best_value, initial_explored) =
        initial_phase(space, objective, params);

    let free = space.free_dims();
    let ln_max = (params.max_iters as f64).ln().max(f64::MIN_POSITIVE);
    // Logical-worker state persists across iterations on the orchestrator.
    let mut rngs: Vec<StdRng> = (0..params.threads)
        .map(|t| StdRng::seed_from_u64(worker_seed(params.seed, t)))
        .collect();
    let radii: Vec<f64> = (0..params.threads)
        .map(|t| worker_radius(params, t))
        .collect();
    let mut explored_parts: Vec<Vec<(Vec<usize>, f64)>> = vec![Vec::new(); params.threads];

    for i in 1..=params.max_iters {
        let p_select = 1.0 - (i as f64).ln() / ln_max;
        let global_point = best_point.clone();
        let global_value = best_value;
        let mut locals: Vec<(Vec<usize>, f64)> =
            vec![(Vec::new(), f64::NEG_INFINITY); params.threads];
        pool.scope(|scope| {
            let worker_state = locals
                .iter_mut()
                .zip(rngs.iter_mut())
                .zip(explored_parts.iter_mut())
                .zip(radii.iter());
            for (((slot, rng), part), &r) in worker_state {
                let (global_point, free, params) = (&global_point, &free, &params);
                scope.spawn(move || {
                    *slot = worker_iteration(
                        space,
                        objective,
                        params,
                        free,
                        r,
                        p_select,
                        global_point,
                        global_value,
                        rng,
                        part,
                    );
                });
            }
        });
        // Reduction in worker-index order, exactly like thread 0's pass over
        // the posts in the spawning back-end.
        (best_point, best_value) = util::reduce::ordered_best(locals, (best_point, best_value));
    }

    let mut explored = initial_explored;
    explored.extend(util::reduce::ordered_concat(explored_parts));
    SearchResult {
        best_point,
        best_value,
        evaluations: params.initial_points
            + params.max_iters * params.points_per_iteration * params.threads,
        explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{search, DdsParams};

    fn separable(target: usize) -> impl Fn(&[usize]) -> f64 + Sync {
        move |x: &[usize]| {
            -x.iter()
                .map(|&v| (v as f64 - target as f64).abs())
                .sum::<f64>()
        }
    }

    #[test]
    fn finds_separable_optimum() {
        let space = SearchSpace::new(16, 108);
        let result = parallel_search(&space, &separable(54), &ParallelDdsParams::default());
        assert!(
            result.best_value > -40.0,
            "best value {}",
            result.best_value
        );
    }

    #[test]
    fn respects_frozen_dimensions() {
        let mut space = SearchSpace::new(8, 108);
        space.freeze(0, 100);
        space.freeze(7, 3);
        let result = parallel_search(&space, &separable(50), &ParallelDdsParams::default());
        assert_eq!(result.best_point[0], 100);
        assert_eq!(result.best_point[7], 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let space = SearchSpace::new(8, 108);
        let params = ParallelDdsParams {
            threads: 4,
            ..ParallelDdsParams::default()
        };
        let a = parallel_search(&space, &separable(30), &params);
        let b = parallel_search(&space, &separable(30), &params);
        assert_eq!(a.best_point, b.best_point);
    }

    #[test]
    fn pooled_backend_is_bit_identical_to_spawning_backend() {
        let space = SearchSpace::new(10, 108);
        let params = ParallelDdsParams {
            threads: 4,
            record_explored: true,
            ..ParallelDdsParams::default()
        };
        let objective = separable(66);
        let spawned = parallel_search(&space, &objective, &params);
        for pool_width in [1, 2, 8] {
            let pool = WorkerPool::new(pool_width);
            let pooled = parallel_search_in(Some(&pool), &space, &objective, &params);
            assert_eq!(pooled.best_point, spawned.best_point);
            assert_eq!(pooled.best_value.to_bits(), spawned.best_value.to_bits());
            assert_eq!(pooled.evaluations, spawned.evaluations);
            assert_eq!(pooled.explored, spawned.explored);
        }
    }

    #[test]
    fn parallel_search_in_without_pool_matches_spawning_backend() {
        let space = SearchSpace::new(6, 50);
        let params = ParallelDdsParams {
            threads: 2,
            ..ParallelDdsParams::default()
        };
        let objective = separable(25);
        let direct = parallel_search(&space, &objective, &params);
        let via_none = parallel_search_in(None, &space, &objective, &params);
        assert_eq!(direct.best_point, via_none.best_point);
        assert_eq!(direct.best_value.to_bits(), via_none.best_value.to_bits());
    }

    #[test]
    fn parallel_matches_or_beats_budget_matched_serial() {
        // With the same total evaluation budget, the multi-radius parallel
        // search should be at least competitive on a rugged objective.
        let space = SearchSpace::new(16, 108);
        let objective = |x: &[usize]| {
            x.iter()
                .map(|&v| {
                    let d = (v as f64 - 70.0).abs();
                    (50.0 - d) + 5.0 * (v as f64 * 0.9).sin()
                })
                .sum::<f64>()
        };
        let par_params = ParallelDdsParams {
            threads: 4,
            ..ParallelDdsParams::default()
        };
        let par = parallel_search(&space, &objective, &par_params);
        let serial_budget = par.evaluations - par_params.initial_points;
        let ser = search(
            &space,
            &objective,
            &DdsParams {
                max_iters: serial_budget,
                ..DdsParams::default()
            },
        );
        assert!(
            par.best_value > ser.best_value * 0.95,
            "parallel {} vs serial {}",
            par.best_value,
            ser.best_value
        );
    }

    #[test]
    fn evaluation_count_matches_formula() {
        let space = SearchSpace::new(4, 10);
        let params = ParallelDdsParams {
            threads: 2,
            max_iters: 5,
            points_per_iteration: 3,
            initial_points: 7,
            record_explored: true,
            ..ParallelDdsParams::default()
        };
        let result = parallel_search(&space, &separable(5), &params);
        assert_eq!(result.evaluations, 7 + 5 * 3 * 2);
        assert_eq!(result.explored.len(), result.evaluations);
    }

    #[test]
    fn single_thread_works() {
        let space = SearchSpace::new(6, 20);
        let params = ParallelDdsParams {
            threads: 1,
            ..ParallelDdsParams::default()
        };
        let result = parallel_search(&space, &separable(10), &params);
        assert!(space.contains(&result.best_point));
    }
}
