//! Dynamically Dimensioned Search (DDS) for discrete configuration spaces.
//!
//! DDS (Tolson & Shoemaker, 2007) is a stochastic single-solution search
//! designed for high-dimensional, expensive objective functions: each
//! iteration perturbs a randomly chosen *subset* of dimensions of the current
//! best point, and the expected subset size shrinks from all dimensions to
//! one as the iteration budget is spent — a built-in global-to-local
//! schedule with no tuning beyond the perturbation scale `r`.
//!
//! CuttleSys (§VI) adapts DDS to the co-scheduling problem: a point is a
//! vector assigning one of `m·p = 108` (core configuration, cache allocation)
//! pairs to every batch job, the latency-critical job's dimensions are frozen
//! to the QoS-safe configuration, and a penalty objective enforces the power
//! and cache budgets. The crate provides:
//!
//! * [`serial`] — the reference single-threaded DDS;
//! * [`parallel`] — the paper's parallel DDS (Alg. 2): thread groups with
//!   perturbation radii `r = [0.2, 0.3, 0.4, 0.5]`, `pointsPerIteration`
//!   candidates per thread per round, and a barrier-synchronized global-best
//!   exchange;
//! * [`objective`] — the objective abstraction and the soft-penalty
//!   combinator of §VI-A.
//!
//! # Quick example
//!
//! ```
//! use dds::{SearchSpace, serial::DdsParams, serial::search};
//!
//! // Pull every dimension toward 7 out of 10 choices.
//! let space = SearchSpace::new(16, 10);
//! let objective =
//!     |x: &[usize]| -x.iter().map(|&v| (v as f64 - 7.0).abs()).sum::<f64>();
//! let result = search(&space, &objective, &DdsParams::default());
//! assert!(result.best_value >= -8.0);
//! ```

pub mod objective;
pub mod parallel;
pub mod rng;
pub mod serial;

pub use objective::{CachedObjective, Objective, SoftPenalty};
pub use parallel::{parallel_search, parallel_search_in, ParallelDdsParams};
pub use serial::{search, DdsParams};

use serde::{Deserialize, Serialize};

/// A discrete search space: `dims` decision variables, each taking a value
/// in `0..num_choices`, with an optional set of frozen dimensions.
///
/// Frozen dimensions implement Alg. 2 line 5: cores assigned to the
/// latency-critical service keep the configuration chosen by the QoS scan
/// while DDS explores the batch jobs' dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    dims: usize,
    num_choices: usize,
    frozen: Vec<Option<usize>>,
}

impl SearchSpace {
    /// Creates a space with no frozen dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `num_choices == 0`.
    pub fn new(dims: usize, num_choices: usize) -> SearchSpace {
        assert!(dims > 0, "search space needs at least one dimension");
        assert!(num_choices > 0, "each dimension needs at least one choice");
        SearchSpace {
            dims,
            num_choices,
            frozen: vec![None; dims],
        }
    }

    /// Freezes dimension `dim` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `value` is out of range.
    pub fn freeze(&mut self, dim: usize, value: usize) {
        assert!(dim < self.dims, "dimension {dim} out of range");
        assert!(value < self.num_choices, "value {value} out of range");
        self.frozen[dim] = Some(value);
    }

    /// Number of decision variables.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of choices per dimension (the paper's `#confs`).
    pub fn num_choices(&self) -> usize {
        self.num_choices
    }

    /// The frozen value of `dim`, if any.
    pub fn frozen_value(&self, dim: usize) -> Option<usize> {
        self.frozen[dim]
    }

    /// Indices of the dimensions DDS may perturb.
    pub fn free_dims(&self) -> Vec<usize> {
        (0..self.dims)
            .filter(|&d| self.frozen[d].is_none())
            .collect()
    }

    /// Whether `point` lies in the space and honours the frozen values.
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.dims
            && point.iter().all(|&v| v < self.num_choices)
            && self
                .frozen
                .iter()
                .zip(point)
                .all(|(f, &v)| f.is_none_or(|fv| fv == v))
    }

    /// Draws a uniformly random point honouring the frozen dimensions.
    pub fn random_point(&self, rng: &mut impl rand::RngExt) -> Vec<usize> {
        (0..self.dims)
            .map(|d| self.frozen[d].unwrap_or_else(|| rng.random_range(0..self.num_choices)))
            .collect()
    }

    /// Reflects a continuous-valued coordinate back into `[0, num_choices)`
    /// and rounds it to a valid choice (Alg. 2 lines 14-15).
    pub fn reflect(&self, value: f64) -> usize {
        let n = self.num_choices as f64;
        let mut v = value;
        // Mirror about the boundaries until inside; a couple of passes cover
        // any realistic perturbation magnitude.
        for _ in 0..64 {
            if v < 0.0 {
                v = -v;
            } else if v >= n {
                v = 2.0 * n - v - 1.0;
            } else {
                break;
            }
        }
        (v.round().max(0.0) as usize).min(self.num_choices - 1)
    }
}

/// Result of a DDS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The best point found.
    pub best_point: Vec<usize>,
    /// Objective value at the best point.
    pub best_value: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
    /// Every point evaluated, with its objective value, when recording was
    /// requested (Fig. 10(a)); empty otherwise.
    pub explored: Vec<(Vec<usize>, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_accessors() {
        let mut s = SearchSpace::new(4, 10);
        assert_eq!(s.dims(), 4);
        assert_eq!(s.num_choices(), 10);
        s.freeze(1, 7);
        assert_eq!(s.frozen_value(1), Some(7));
        assert_eq!(s.free_dims(), vec![0, 2, 3]);
    }

    #[test]
    fn contains_checks_bounds_and_frozen() {
        let mut s = SearchSpace::new(3, 5);
        s.freeze(0, 2);
        assert!(s.contains(&[2, 4, 0]));
        assert!(!s.contains(&[1, 4, 0]), "frozen value violated");
        assert!(!s.contains(&[2, 5, 0]), "out of range");
        assert!(!s.contains(&[2, 4]), "wrong length");
    }

    #[test]
    fn random_points_honour_frozen_dims() {
        let mut s = SearchSpace::new(6, 108);
        s.freeze(0, 42);
        s.freeze(5, 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = s.random_point(&mut rng);
            assert!(s.contains(&p));
            assert_eq!(p[0], 42);
            assert_eq!(p[5], 3);
        }
    }

    #[test]
    fn reflection_stays_in_bounds() {
        let s = SearchSpace::new(1, 108);
        for v in [-250.0, -107.9, -0.4, 0.0, 53.7, 107.4, 108.0, 250.0, 1e6] {
            let r = s.reflect(v);
            assert!(r < 108, "reflect({v}) = {r} out of bounds");
        }
        // Interior values round.
        assert_eq!(s.reflect(53.4), 53);
        assert_eq!(s.reflect(-2.0), 2);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_space_rejected() {
        let _ = SearchSpace::new(0, 5);
    }
}
