//! Objective functions and the soft-penalty combinator of §VI-A.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A maximization objective over discrete configuration vectors.
///
/// Implemented for closures, so ad-hoc objectives read naturally:
///
/// ```
/// use dds::Objective;
/// let o = |x: &[usize]| x.iter().sum::<usize>() as f64;
/// assert_eq!(o.evaluate(&[1, 2, 3]), 6.0);
/// ```
pub trait Objective: Sync {
    /// Returns the objective value at `point`; higher is better.
    fn evaluate(&self, point: &[usize]) -> f64;
}

impl<F> Objective for F
where
    F: Fn(&[usize]) -> f64 + Sync,
{
    fn evaluate(&self, point: &[usize]) -> f64 {
        self(point)
    }
}

/// The paper's constrained objective (§VI-A):
///
/// ```text
/// objective(x) = BIPS(x)
///              − penalty_power · max(0, Power(x)  − maxPower)
///              − penalty_cache · max(0, Ways(x)   − maxWays)
/// ```
///
/// Soft penalties keep slightly-infeasible points rankable ("points with
/// slightly higher power are not heavily penalized"), which lets the search
/// cross narrow infeasible ridges. Note the paper's formula as printed
/// subtracts `(maxPower − Power)`, which would *reward* high power — we
/// implement the evident intent: penalize only the excess.
pub struct SoftPenalty<B, P, C>
where
    B: Fn(&[usize]) -> f64 + Sync,
    P: Fn(&[usize]) -> f64 + Sync,
    C: Fn(&[usize]) -> f64 + Sync,
{
    /// The raw benefit (geo-mean batch BIPS).
    pub benefit: B,
    /// Total power of the point, in Watts.
    pub power: P,
    /// Total LLC ways of the point.
    pub cache_ways: C,
    /// Power budget (the paper's `maxPower`).
    pub max_power: f64,
    /// LLC associativity (the paper's `maxWays`).
    pub max_ways: f64,
    /// Penalty weight per Watt of excess (Fig. 6: 2).
    pub penalty_power: f64,
    /// Penalty weight per way of excess (Fig. 6: 2).
    pub penalty_cache: f64,
}

impl<B, P, C> SoftPenalty<B, P, C>
where
    B: Fn(&[usize]) -> f64 + Sync,
    P: Fn(&[usize]) -> f64 + Sync,
    C: Fn(&[usize]) -> f64 + Sync,
{
    /// Whether `point` satisfies both hard constraints.
    pub fn is_feasible(&self, point: &[usize]) -> bool {
        (self.power)(point) <= self.max_power && (self.cache_ways)(point) <= self.max_ways
    }
}

impl<B, P, C> Objective for SoftPenalty<B, P, C>
where
    B: Fn(&[usize]) -> f64 + Sync,
    P: Fn(&[usize]) -> f64 + Sync,
    C: Fn(&[usize]) -> f64 + Sync,
{
    fn evaluate(&self, point: &[usize]) -> f64 {
        let power_excess = ((self.power)(point) - self.max_power).max(0.0);
        let cache_excess = ((self.cache_ways)(point) - self.max_ways).max(0.0);
        (self.benefit)(point)
            - self.penalty_power * power_excess
            - self.penalty_cache * cache_excess
    }
}

/// A memoizing wrapper around an [`Objective`].
///
/// DDS revisits points: the incumbent seeds every iteration's candidates,
/// un-perturbed dimensions repeat, and several threads perturb the same
/// global best — so identical configuration vectors get scored over and
/// over. Since our objectives are pure functions of the point, caching is
/// exact: a hit returns the bit-identical `f64` the wrapped objective
/// produced on the first evaluation.
///
/// The cache is scoped to one search (one decision quantum): construct a
/// fresh `CachedObjective` per quantum and invalidation is structural — no
/// epoch counters, no stale entries.
///
/// Concurrency note: the map lock is *released* while the inner objective
/// runs, so two threads racing on the same new point may both evaluate it.
/// That wastes one evaluation but stays correct (the objective is pure and
/// both compute the same value); holding the lock across the evaluation
/// would serialize the whole parallel search.
pub struct CachedObjective<'a> {
    inner: &'a dyn Objective,
    // lint:allow(DET-HASH-ITER, reason = "keyed get/insert only, never iterated: hasher order cannot reach evaluation results, and point-keyed O(1) lookup is the cache's whole job")
    map: Mutex<HashMap<Vec<usize>, f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'a> CachedObjective<'a> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: &'a dyn Objective) -> Self {
        CachedObjective {
            inner,
            // lint:allow(DET-HASH-ITER, reason = "see the field: lookup-only cache")
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Evaluations answered from the cache so far.
    pub fn hits(&self) -> usize {
        // lint:allow(DET-TAINT, reason = "cache hit/miss counters are diagnostic telemetry; determinism tests exclude them and no plan content reads them")
        self.hits.load(Ordering::Relaxed)
    }

    /// Evaluations that went through to the wrapped objective.
    pub fn misses(&self) -> usize {
        // lint:allow(DET-TAINT, reason = "cache hit/miss counters are diagnostic telemetry; determinism tests exclude them and no plan content reads them")
        self.misses.load(Ordering::Relaxed)
    }
}

impl Objective for CachedObjective<'_> {
    fn evaluate(&self, point: &[usize]) -> f64 {
        // Documented panic: a poisoned cache lock means a worker panicked
        // mid-insert; the quantum is already lost and the fault-injection
        // harness expects the panic to surface, not a silently empty cache.
        // lint:allow(PANIC-POLICY, reason = "lock poisoning propagates a worker panic; the circuit breaker catches it at the quantum boundary")
        if let Some(&v) = self.map.lock().unwrap().get(point) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        let v = self.inner.evaluate(point);
        self.misses.fetch_add(1, Ordering::Relaxed);
        // lint:allow(PANIC-POLICY, reason = "lock poisoning propagates a worker panic; see the lookup above")
        self.map.lock().unwrap().insert(point.to_vec(), v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestPenalty = SoftPenalty<fn(&[usize]) -> f64, fn(&[usize]) -> f64, fn(&[usize]) -> f64>;

    fn penalty() -> TestPenalty {
        SoftPenalty {
            benefit: (|x: &[usize]| x.iter().sum::<usize>() as f64) as fn(&[usize]) -> f64,
            power: (|x: &[usize]| 2.0 * x.len() as f64 + x[0] as f64) as fn(&[usize]) -> f64,
            cache_ways: (|x: &[usize]| x[1] as f64) as fn(&[usize]) -> f64,
            max_power: 10.0,
            max_ways: 4.0,
            penalty_power: 2.0,
            penalty_cache: 2.0,
        }
    }

    #[test]
    fn feasible_points_pay_no_penalty() {
        let o = penalty();
        // power = 2*3 + 1 = 7 ≤ 10, ways = 2 ≤ 4.
        let p = [1usize, 2, 3];
        assert!(o.is_feasible(&p));
        assert_eq!(o.evaluate(&p), 6.0);
    }

    #[test]
    fn power_excess_is_penalized_linearly() {
        let o = penalty();
        // power = 6 + 8 = 14 → excess 4 → penalty 8.
        let p = [8usize, 0, 0];
        assert!(!o.is_feasible(&p));
        assert_eq!(o.evaluate(&p), 8.0 - 8.0);
    }

    #[test]
    fn cache_excess_is_penalized_too() {
        let o = penalty();
        // ways = 6 → excess 2 → penalty 4; power = 6 ≤ 10.
        let p = [0usize, 6, 0];
        assert_eq!(o.evaluate(&p), 6.0 - 4.0);
    }

    #[test]
    fn closures_are_objectives() {
        let o = |x: &[usize]| -(x[0] as f64);
        assert_eq!(o.evaluate(&[3]), -3.0);
    }

    #[test]
    fn cache_returns_identical_values_and_counts_hits() {
        let calls = AtomicUsize::new(0);
        let inner = |x: &[usize]| {
            calls.fetch_add(1, Ordering::Relaxed);
            x.iter().map(|&v| (v as f64).sqrt()).sum::<f64>()
        };
        let cached = CachedObjective::new(&inner);
        let first = cached.evaluate(&[2, 3, 5]);
        let second = cached.evaluate(&[2, 3, 5]);
        assert_eq!(first.to_bits(), second.to_bits());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.misses(), 1);
        cached.evaluate(&[2, 3, 6]);
        assert_eq!(cached.misses(), 2);
    }

    #[test]
    fn cache_is_usable_from_multiple_threads() {
        let inner = |x: &[usize]| x.iter().sum::<usize>() as f64;
        let cached = CachedObjective::new(&inner);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100usize {
                        assert_eq!(cached.evaluate(&[i % 10, 1]), (i % 10 + 1) as f64);
                    }
                });
            }
        });
        assert_eq!(cached.hits() + cached.misses(), 400);
        // 10 distinct points; each thread can race at most once per point.
        assert!(cached.misses() <= 40, "misses {}", cached.misses());
    }
}
