//! Objective functions and the soft-penalty combinator of §VI-A.

/// A maximization objective over discrete configuration vectors.
///
/// Implemented for closures, so ad-hoc objectives read naturally:
///
/// ```
/// use dds::Objective;
/// let o = |x: &[usize]| x.iter().sum::<usize>() as f64;
/// assert_eq!(o.evaluate(&[1, 2, 3]), 6.0);
/// ```
pub trait Objective: Sync {
    /// Returns the objective value at `point`; higher is better.
    fn evaluate(&self, point: &[usize]) -> f64;
}

impl<F> Objective for F
where
    F: Fn(&[usize]) -> f64 + Sync,
{
    fn evaluate(&self, point: &[usize]) -> f64 {
        self(point)
    }
}

/// The paper's constrained objective (§VI-A):
///
/// ```text
/// objective(x) = BIPS(x)
///              − penalty_power · max(0, Power(x)  − maxPower)
///              − penalty_cache · max(0, Ways(x)   − maxWays)
/// ```
///
/// Soft penalties keep slightly-infeasible points rankable ("points with
/// slightly higher power are not heavily penalized"), which lets the search
/// cross narrow infeasible ridges. Note the paper's formula as printed
/// subtracts `(maxPower − Power)`, which would *reward* high power — we
/// implement the evident intent: penalize only the excess.
pub struct SoftPenalty<B, P, C>
where
    B: Fn(&[usize]) -> f64 + Sync,
    P: Fn(&[usize]) -> f64 + Sync,
    C: Fn(&[usize]) -> f64 + Sync,
{
    /// The raw benefit (geo-mean batch BIPS).
    pub benefit: B,
    /// Total power of the point, in Watts.
    pub power: P,
    /// Total LLC ways of the point.
    pub cache_ways: C,
    /// Power budget (the paper's `maxPower`).
    pub max_power: f64,
    /// LLC associativity (the paper's `maxWays`).
    pub max_ways: f64,
    /// Penalty weight per Watt of excess (Fig. 6: 2).
    pub penalty_power: f64,
    /// Penalty weight per way of excess (Fig. 6: 2).
    pub penalty_cache: f64,
}

impl<B, P, C> SoftPenalty<B, P, C>
where
    B: Fn(&[usize]) -> f64 + Sync,
    P: Fn(&[usize]) -> f64 + Sync,
    C: Fn(&[usize]) -> f64 + Sync,
{
    /// Whether `point` satisfies both hard constraints.
    pub fn is_feasible(&self, point: &[usize]) -> bool {
        (self.power)(point) <= self.max_power && (self.cache_ways)(point) <= self.max_ways
    }
}

impl<B, P, C> Objective for SoftPenalty<B, P, C>
where
    B: Fn(&[usize]) -> f64 + Sync,
    P: Fn(&[usize]) -> f64 + Sync,
    C: Fn(&[usize]) -> f64 + Sync,
{
    fn evaluate(&self, point: &[usize]) -> f64 {
        let power_excess = ((self.power)(point) - self.max_power).max(0.0);
        let cache_excess = ((self.cache_ways)(point) - self.max_ways).max(0.0);
        (self.benefit)(point)
            - self.penalty_power * power_excess
            - self.penalty_cache * cache_excess
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestPenalty = SoftPenalty<fn(&[usize]) -> f64, fn(&[usize]) -> f64, fn(&[usize]) -> f64>;

    fn penalty() -> TestPenalty {
        SoftPenalty {
            benefit: (|x: &[usize]| x.iter().sum::<usize>() as f64) as fn(&[usize]) -> f64,
            power: (|x: &[usize]| 2.0 * x.len() as f64 + x[0] as f64) as fn(&[usize]) -> f64,
            cache_ways: (|x: &[usize]| x[1] as f64) as fn(&[usize]) -> f64,
            max_power: 10.0,
            max_ways: 4.0,
            penalty_power: 2.0,
            penalty_cache: 2.0,
        }
    }

    #[test]
    fn feasible_points_pay_no_penalty() {
        let o = penalty();
        // power = 2*3 + 1 = 7 ≤ 10, ways = 2 ≤ 4.
        let p = [1usize, 2, 3];
        assert!(o.is_feasible(&p));
        assert_eq!(o.evaluate(&p), 6.0);
    }

    #[test]
    fn power_excess_is_penalized_linearly() {
        let o = penalty();
        // power = 6 + 8 = 14 → excess 4 → penalty 8.
        let p = [8usize, 0, 0];
        assert!(!o.is_feasible(&p));
        assert_eq!(o.evaluate(&p), 8.0 - 8.0);
    }

    #[test]
    fn cache_excess_is_penalized_too() {
        let o = penalty();
        // ways = 6 → excess 2 → penalty 4; power = 6 ≤ 10.
        let p = [0usize, 6, 0];
        assert_eq!(o.evaluate(&p), 6.0 - 4.0);
    }

    #[test]
    fn closures_are_objectives() {
        let o = |x: &[usize]| -(x[0] as f64);
        assert_eq!(o.evaluate(&[3]), -3.0);
    }
}
