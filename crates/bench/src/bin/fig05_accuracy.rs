//! Fig. 5(a)/(b): box plots of the error between measured and
//! SGD-predicted throughput, tail latency, and power across configurations.
//!
//! * `--isolation` (Fig. 5a): each test application runs alone with exact
//!   (noise-free) ground truth; two profiling samples per row; errors are
//!   computed over all inferred configurations. Paper: 25th/75th
//!   percentiles within ±10 %, 5th/95th within ±20 %, tail latency worst.
//! * `--runtime` (Fig. 5b): CuttleSys runs the full colocation with
//!   measurement noise, phase drift, and co-runner contention; per-slice
//!   predictions are compared against the base-profile ground truth.
//!   Paper: medians near zero, quartiles within ±10 %, wider 5th/95th for
//!   tail latency and throughput outliers.
//!
//! Usage: `fig05_accuracy [--isolation|--runtime|--both] [mixes_per_service]`

use bench::{colocations, standard_scenario, ErrorSummary, Table};
use cuttlesys::matrices::JobMatrices;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use recsys::Reconstructor;
use simulator::power::CoreKind;
use simulator::{Chip, JobConfig, SystemParams};
use workloads::batch;
use workloads::latency;
use workloads::oracle::Oracle;

/// Tail entries at the measurement-window cap are saturated; exact
/// prediction there is less critical (the paper: "exact latency prediction
/// is less critical, as long as the prediction shows that QoS is violated"),
/// so percentage errors are reported over the unsaturated region and the
/// saturated region is scored by QoS-verdict agreement instead.
const TAIL_CEILING_MS: f64 = cuttlesys::matrices::TAIL_CAP_MS * 0.999;

/// Fraction of configurations whose QoS verdict (tail ≤ QoS?) the
/// prediction gets right.
fn verdict_accuracy(pred: &[f64], truth: &[f64], qos: f64) -> f64 {
    let agree = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| (**p <= qos) == (**t <= qos))
        .count();
    agree as f64 / pred.len() as f64
}

fn pct_errors(pred: &[f64], truth: &[f64], skip: &[usize], ceiling: Option<f64>) -> Vec<f64> {
    pred.iter()
        .zip(truth)
        .enumerate()
        .filter(|(i, _)| !skip.contains(i))
        .filter(|(_, (_, t))| ceiling.is_none_or(|c| **t <= c))
        .map(|(_, (p, t))| 100.0 * (p - t) / t)
        .collect()
}

fn isolation() {
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    let skip = [hi, lo];

    let mut tput_errors = Vec::new();
    let mut power_errors = Vec::new();
    let mut tail_errors = Vec::new();

    // 12 testing SPEC applications: throughput + power rows.
    for app in batch::testing_set() {
        let mut m = JobMatrices::new(oracle, &training, 1, 1);
        let b = oracle.bips_row(&app.profile);
        let w = oracle.power_row(&app.profile);
        m.record_sample(1, hi, b[hi], w[hi]);
        m.record_sample(1, lo, b[lo], w[lo]);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        tput_errors.extend(pct_errors(&preds.batch_bips[0], &b, &skip, None));
        power_errors.extend(pct_errors(&preds.batch_watts[0], &w, &skip, None));
    }

    // 5 TailBench services at 80% load: tail + power rows. The live tail
    // row starts from a single previous-steady-state observation, as at
    // runtime.
    let mut verdicts = Vec::new();
    for svc in latency::services() {
        let mut m = JobMatrices::new(oracle, &training, 1, 1);
        let truth: Vec<f64> = oracle
            .tail_row(&svc, 16, 0.8)
            .into_iter()
            .map(|t| t.min(cuttlesys::matrices::TAIL_CAP_MS))
            .collect();
        let w = oracle.power_row(&svc.profile);
        m.record_sample(0, hi, 0.0, w[hi]);
        m.record_sample(0, lo, 0.0, w[lo]);
        let seed_cfg = hi;
        m.record_tail(0, 0.8, 16, seed_cfg, truth[seed_cfg]);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        tail_errors.extend(pct_errors(
            &preds.lc[0].tail,
            &truth,
            &[seed_cfg],
            Some(TAIL_CEILING_MS),
        ));
        power_errors.extend(pct_errors(&preds.lc[0].watts, &w, &skip, None));
        verdicts.push(verdict_accuracy(&preds.lc[0].tail, &truth, svc.qos_ms));
    }

    let mut table = Table::new(
        "Fig. 5(a): SGD % error, applications in isolation (2 samples -> 106 inferred)",
        &["metric", "p5", "p25", "p50", "p75", "p95", "n"],
    );
    for (name, errors) in [
        ("throughput", &tput_errors),
        ("tail latency", &tail_errors),
        ("power", &power_errors),
    ] {
        let s = ErrorSummary::of(errors);
        let mut row = vec![name.to_string()];
        row.extend(s.row());
        row.push(errors.len().to_string());
        table.row(row);
    }
    table.print();
    println!(
        "QoS-verdict agreement on the full tail rows (incl. saturated region): {:.1}%",
        100.0 * verdicts.iter().sum::<f64>() / verdicts.len() as f64
    );
    println!("Paper targets: quartiles within ±10%, 5th/95th within ±20%, tail widest.\n");
}

fn runtime(mixes: u64) {
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    let mut tput_errors = Vec::new();
    let mut power_errors = Vec::new();
    let mut tail_errors = Vec::new();

    for (svc, mix) in colocations(mixes) {
        let scenario = Scenario {
            duration_slices: 5,
            ..standard_scenario(&svc, mix, 0.7)
        };
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        // Ground truth from the *base* profiles; runtime predictions chase
        // the drifting, contended, noisy reality.
        let truth_b: Vec<Vec<f64>> = scenario
            .batch_profiles()
            .iter()
            .map(|p| oracle.bips_row(p))
            .collect();
        let truth_w: Vec<Vec<f64>> = scenario
            .batch_profiles()
            .iter()
            .map(|p| oracle.power_row(p))
            .collect();
        let truth_tail: Vec<f64> = oracle
            .tail_row(&svc, 16, 0.8)
            .into_iter()
            .map(|t| t.min(cuttlesys::matrices::TAIL_CAP_MS))
            .collect();

        let _ = run_scenario(&scenario, &mut manager);
        let preds = manager
            .last_predictions()
            .expect("runtime produced predictions");
        for j in 0..scenario.num_batch() {
            tput_errors.extend(pct_errors(&preds.batch_bips[j], &truth_b[j], &[], None));
            power_errors.extend(pct_errors(&preds.batch_watts[j], &truth_w[j], &[], None));
        }
        tail_errors.extend(pct_errors(
            &preds.lc[0].tail,
            &truth_tail,
            &[],
            Some(TAIL_CEILING_MS),
        ));
    }

    let mut table = Table::new(
        "Fig. 5(b): SGD % error at runtime (colocation + noise + phases + contention)",
        &["metric", "p5", "p25", "p50", "p75", "p95", "n"],
    );
    for (name, errors) in [
        ("throughput", &tput_errors),
        ("tail latency", &tail_errors),
        ("power", &power_errors),
    ] {
        let s = ErrorSummary::of(errors);
        let mut row = vec![name.to_string()];
        row.extend(s.row());
        row.push(errors.len().to_string());
        table.row(row);
    }
    table.print();
    println!("Paper targets: medians ~0, quartiles within ±10%, wider 5th/95th than Fig. 5(a).");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("--both");
    let mixes: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(2);
    if mode == "--isolation" || mode == "--both" {
        isolation();
    }
    if mode == "--runtime" || mode == "--both" {
        runtime(mixes);
    }
}
