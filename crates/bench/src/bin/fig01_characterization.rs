//! Fig. 1 (§III): characterization of tail latency and power of the five
//! latency-critical services across all 27 core configurations, on a
//! homogeneous 16-core system, at 20 % and 80 % load.
//!
//! The paper's observations to reproduce:
//! * at high load, tail latency increases dramatically when the sections a
//!   service depends on are constrained; at low load it stays low even in
//!   narrow configurations;
//! * the critical section differs per service (Xapian: LS; Moses: FE;
//!   ImgDNN/Masstree/Silo: FE and LS);
//! * the least-power configuration that keeps the tail low differs per
//!   service.
//!
//! Usage: `fig01_characterization [--full]` — by default prints the 8
//! extreme rows per service; `--full` prints all 27.

use bench::Table;
use simulator::power::CoreKind;
use simulator::{CacheAlloc, Chip, CoreConfig, Section, SystemParams};
use workloads::latency::{self, LcService};

/// One characterized configuration.
struct Row {
    config: CoreConfig,
    tail_low: f64,
    tail_high: f64,
    watts: f64,
}

fn characterize(chip: &Chip, svc: &LcService) -> Vec<Row> {
    let cores = chip.params().num_cores;
    let cache = CacheAlloc::Four;
    let mut rows: Vec<Row> = CoreConfig::all()
        .map(|config| {
            let ipc = chip.perf().ipc(&svc.profile, config, cache.ways(), 0.0);
            let bips = chip.core_bips(&svc.profile, config, cache.ways(), 0.0);
            let per_core = chip
                .power()
                .job_core_watts(&svc.profile, config, cache, ipc, bips);
            Row {
                config,
                tail_low: svc
                    .tail_latency_ms(chip.perf(), cores, config, cache, 0.2, 0.0)
                    .get(),
                tail_high: svc
                    .tail_latency_ms(chip.perf(), cores, config, cache, 0.8, 0.0)
                    .get(),
                watts: per_core.get() * cores as f64,
            }
        })
        .collect();
    // The paper sorts the x-axis by tail latency at 80% load.
    rows.sort_by(|a, b| a.tail_high.total_cmp(&b.tail_high));
    rows
}

/// The most tail-critical section: narrow only that section from {6,6,6}
/// and measure the damage.
fn critical_section(chip: &Chip, svc: &LcService) -> Section {
    let cores = chip.params().num_cores;
    let cache = CacheAlloc::Four;
    let narrowed = |s: Section| {
        let mut widths = [simulator::SectionWidth::Six; 3];
        widths[match s {
            Section::FrontEnd => 0,
            Section::BackEnd => 1,
            Section::LoadStore => 2,
        }] = simulator::SectionWidth::Two;
        let config = CoreConfig::new(widths[0], widths[1], widths[2]);
        svc.tail_latency_ms(chip.perf(), cores, config, cache, 0.8, 0.0)
            .get()
    };
    Section::ALL
        .into_iter()
        .max_by(|a, b| narrowed(*a).total_cmp(&narrowed(*b)))
        .expect("three sections")
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let chip = Chip::new(SystemParams::paper_16core(), CoreKind::Reconfigurable);

    for svc in latency::services() {
        let rows = characterize(&chip, &svc);
        let mut table = Table::new(
            &format!(
                "Fig. 1: {} (QoS {} ms, max {} kQPS) — sorted by tail@80%",
                svc.name,
                svc.qos_ms,
                svc.max_qps / 1000.0
            ),
            &[
                "config",
                "tail@20% (ms)",
                "tail@80% (ms)",
                "power (W, 16 cores)",
            ],
        );
        let selected: Vec<&Row> = if full {
            rows.iter().collect()
        } else {
            rows.iter()
                .take(4)
                .chain(rows.iter().rev().take(4).rev())
                .collect()
        };
        for r in selected {
            table.row(vec![
                r.config.to_string(),
                format!("{:.2}", r.tail_low),
                if r.tail_high > 1e4 {
                    "saturated".to_string()
                } else {
                    format!("{:.2}", r.tail_high)
                },
                format!("{:.1}", r.watts),
            ]);
        }
        table.print();

        // Best power among QoS-meeting configs at 80% load (the paper's
        // per-service "least power while keeping tail low" labels).
        let best = rows
            .iter()
            .filter(|r| r.tail_high <= svc.qos_ms)
            .min_by(|a, b| a.watts.total_cmp(&b.watts));
        let low_ok = rows.iter().filter(|r| r.tail_low <= svc.qos_ms).count();
        match best {
            Some(b) => println!(
                "  least-power config meeting QoS at 80% load: {} ({:.1} W); \
                 critical section: {}; configs meeting QoS at 20% load: {}/27\n",
                b.config,
                b.watts,
                critical_section(&chip, &svc),
                low_ok
            ),
            None => println!("  no configuration meets QoS at 80% load\n"),
        }
    }
}
