//! Fig. 5(c): instructions executed by batch applications over 1 s, relative
//! to no gating, across power caps, for core-level gating (± way
//! partitioning), the oracle-like asymmetric multicore, the fixed 50-50
//! asymmetric multicore, and CuttleSys.
//!
//! Usage: `fig05c_power_caps [mixes_per_service] [--json <path>]` (default
//! 2 mixes; the paper uses 10 → 50 co-locations). `--json` additionally
//! writes the table to the given path (e.g. `results/fig05c.json`).

use baselines::gating::GatingOrder;
use bench::report::{emit_json, ratio, take_json_flag};
use bench::{colocations, standard_scenario, Table, POWER_CAPS};
use cuttlesys::managers::{AsymmetricManager, AsymmetricMode, CoreGatingManager, NoGatingManager};
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{RunRecord, Scenario};
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;

fn run(scenario: &Scenario, scheme: &str) -> RunRecord {
    match scheme {
        "no-gating" => {
            let s = Scenario {
                kind: CoreKind::Fixed,
                ..scenario.clone()
            };
            run_scenario(&s, &mut NoGatingManager)
        }
        "core-gating" | "core-gating+wp" => {
            let s = Scenario {
                kind: CoreKind::Fixed,
                ..scenario.clone()
            };
            let wp = scheme.ends_with("+wp");
            // The paper's specified baseline configuration: descending
            // power, the ordering their McPAT calibration found best.
            // Under our analytic power model ascending orderings do better
            // (power correlates with throughput here, see
            // ablation_gating_orders and EXPERIMENTS.md) — the paper's
            // regime implies power anti-correlates with BIPS for the
            // memory-bound SPEC power viruses.
            run_scenario(
                &s,
                &mut CoreGatingManager::new(&s, GatingOrder::DescendingPower, wp),
            )
        }
        "asymm-oracle" => {
            let s = Scenario {
                kind: CoreKind::Fixed,
                ..scenario.clone()
            };
            run_scenario(&s, &mut AsymmetricManager::new(&s, AsymmetricMode::Oracle))
        }
        "asymm-50-50" => {
            let s = Scenario {
                kind: CoreKind::Fixed,
                ..scenario.clone()
            };
            run_scenario(
                &s,
                &mut AsymmetricManager::new(&s, AsymmetricMode::FixedBig(16)),
            )
        }
        "cuttlesys" => {
            let mut m = CuttleSysManager::for_scenario(scenario);
            run_scenario(scenario, &mut m)
        }
        other => panic!("unknown scheme {other}"),
    }
}

fn main() {
    let (json_path, args) = take_json_flag(std::env::args().skip(1).collect());
    let mixes: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(2);
    let schemes = [
        "core-gating",
        "core-gating+wp",
        "asymm-oracle",
        "asymm-50-50",
        "cuttlesys",
    ];
    let mut table = Table::new(
        &format!(
            "Fig. 5(c): batch instructions relative to no gating ({} colocations, 1 s runs)",
            colocations(mixes).len()
        ),
        &[
            "cap",
            "core-gating",
            "core-gating+wp",
            "asymm-oracle",
            "asymm-50-50",
            "cuttlesys",
            "qos-viol",
        ],
    );

    for cap in POWER_CAPS {
        // The paper compares *total* instructions over the same time
        // (§VII-B), since gated jobs zero out geometric means.
        let mut totals = vec![0.0f64; schemes.len()];
        let mut baseline_total = 0.0f64;
        let mut qos_violations = 0usize;
        for (svc, mix) in colocations(mixes) {
            let scenario = standard_scenario(&svc, mix, cap);
            baseline_total += run(&scenario, "no-gating").batch_instructions();
            for (i, scheme) in schemes.iter().enumerate() {
                let record = run(&scenario, scheme);
                totals[i] += record.batch_instructions();
                if *scheme == "cuttlesys" {
                    // Skip the cold-start slice, as the paper's steady
                    // results do.
                    qos_violations += record
                        .slices
                        .iter()
                        .skip(1)
                        .filter(|s| s.qos_violation())
                        .count();
                }
            }
        }
        let mut cells = vec![format!("{:.0}%", cap * 100.0)];
        cells.extend(totals.iter().map(|t| ratio(t / baseline_total)));
        cells.push(qos_violations.to_string());
        table.row(cells);
    }
    table.print();
    if let Some(path) = json_path {
        emit_json(&path, &table.to_json()).expect("write JSON report");
        println!("JSON report written to {}", path.display());
    }

    println!("Paper shape targets: CuttleSys loses at the 90% cap, beats core-gating by");
    println!("up to ~2.5-2.65x and the oracle asymmetric multicore by up to ~1.55x at 50%.");
}
