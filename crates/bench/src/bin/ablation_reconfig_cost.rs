//! Ablation: sensitivity to the reconfiguration transition cost and to the
//! decision-quantum length.
//!
//! The paper adopts a 100 ms decision quantum "consistent with prior work
//! \[Flicker\]" and treats reconfiguration itself as effectively free at that
//! granularity. This experiment validates both choices on our testbed: at
//! 100 ms, even a 1 ms (100x pessimistic) transition stall costs under ~2%
//! of batch throughput; at a 10 ms quantum the same machinery — profiling
//! plus reconfiguration — eats a visible slice of every interval.

use bench::{standard_scenario, Table};
use cuttlesys::testbed::run_scenario;
use cuttlesys::CuttleSysManager;
use workloads::latency;

fn main() {
    let svc = latency::service_by_name("xapian").expect("xapian exists");

    let mut table = Table::new(
        "Transition-cost sensitivity at the 100 ms quantum (xapian + mix 0, 70% cap)",
        &[
            "transition",
            "batch instr (1e9)",
            "vs free",
            "QoS violations",
        ],
    );
    let mut reference = None;
    for us in [0.0, 10.0, 100.0, 1000.0] {
        let mut scenario = standard_scenario(&svc, 0, 0.7);
        scenario.params.reconfig_transition_us = us;
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        let record = run_scenario(&scenario, &mut manager);
        let instr = record.batch_instructions();
        let base = *reference.get_or_insert(instr);
        table.row(vec![
            format!("{us:.0} us"),
            format!("{:.2}", instr / 1e9),
            format!("{:.1}%", 100.0 * instr / base),
            record.qos_violations().to_string(),
        ]);
    }
    table.print();
    println!("Even two orders of magnitude above the AnyCore-scale estimate, transition");
    println!("stalls are noise at a 100 ms quantum — the paper's choice is safe here.");
    println!("(The fixed 2 ms profiling + ~10 ms decision overhead are the real quantum");
    println!("floor: at 10 ms quanta they would consume the entire interval.)");
}
