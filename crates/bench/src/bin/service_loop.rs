//! Facade-overhead bench for the control-plane service.
//!
//! The service runs every decision quantum behind a reactor thread, a
//! bounded command channel, lifecycle settling, and event publication.
//! None of that is allowed to cost real time against the 100 ms quantum:
//! the acceptance gate for the control-plane refactor is that driving a
//! scenario through the full [`Service`] facade (manual pacing, one
//! subscriber draining the bus) costs **< 5 %** more wall time per quantum
//! than the bare pipeline (`run_scenario` over a [`CuttleSysManager`]).
//!
//! Both paths run the identical scenario and produce bit-identical
//! decisions (pinned by `tests/control_plane.rs`); the only difference is
//! the plumbing, so the per-quantum delta *is* the facade overhead. Each
//! path runs `--reps` times and the fastest run is compared — the minimum
//! is the standard estimator for plumbing cost because slower repetitions
//! measure scheduler noise, not the facade.
//!
//! Usage: `service_loop [--slices N] [--reps N] [--json [path]] [--check]`
//!
//! * `--slices N` — quanta per run (default 30).
//! * `--reps N`   — repetitions per path, fastest wins (default 3).
//! * `--json [path]` — write the report (default
//!   `BENCH_service_loop.json`), flat `metrics` object as in the other
//!   bench bins.
//! * `--check` — exit non-zero when the overhead gate fails.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use bench::report::{emit_json, JsonValue};
use bench::Table;
use cuttlesys::runtime::CuttleSysManager;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use service::bus::Received;
use service::ServiceBuilder;
use workloads::loadgen::LoadPattern;

/// The acceptance gate: facade overhead per quantum, as a fraction of the
/// bare pipeline's per-quantum wall time.
const OVERHEAD_GATE: f64 = 0.05;

fn scenario(slices: usize) -> Scenario {
    Scenario {
        cap: LoadPattern::Constant(0.7),
        duration_slices: slices,
        noise: 0.0,
        phases: false,
        ..Scenario::paper_default()
    }
    .with_load(LoadPattern::Constant(0.8))
}

/// Wall time for the bare pipeline: the static testbed loop, no service.
fn bare_run_ms(s: &Scenario) -> f64 {
    let mut manager = CuttleSysManager::for_scenario(s);
    let start = Instant::now();
    let record = run_scenario(s, &mut manager);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(record.slices.len(), s.duration_slices);
    elapsed
}

/// Wall time for the same quanta through the service facade: reactor
/// thread, command channel, lifecycle settling, event bus with one
/// same-thread subscriber draining after every quantum, final drain and
/// record assembly.
fn facade_run_ms(s: &Scenario) -> f64 {
    let svc = ServiceBuilder::new(s).start().expect("service starts");
    let mut events = svc.subscribe();
    let mut event_count = 0usize;
    let start = Instant::now();
    for _ in 0..s.duration_slices {
        svc.step_quantum().expect("quantum");
        while let Ok(Some(got)) = events.try_recv() {
            if matches!(got, Received::Event(_)) {
                event_count += 1;
            }
        }
    }
    let record = svc.shutdown().expect("clean shutdown");
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(record.slices.len(), s.duration_slices);
    assert!(event_count > 0, "the run published lifecycle events");
    elapsed
}

fn fastest(reps: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| run()).fold(f64::INFINITY, f64::min)
}

struct CliArgs {
    slices: usize,
    reps: usize,
    json: Option<PathBuf>,
    check: bool,
}

fn parse_args() -> CliArgs {
    let mut args = CliArgs {
        slices: 30,
        reps: 3,
        json: None,
        check: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--slices" => {
                args.slices = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slices takes a positive integer");
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--json" => {
                let path = match it.peek() {
                    Some(p) if !p.starts_with("--") => PathBuf::from(it.next().expect("peeked")),
                    _ => PathBuf::from("BENCH_service_loop.json"),
                };
                args.json = Some(path);
            }
            "--check" => args.check = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    assert!(args.slices >= 2, "need at least 2 slices");
    assert!(args.reps >= 1, "need at least 1 rep");
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let s = scenario(args.slices);

    // Interleave one warmup of each path so neither pays first-touch costs.
    let _ = bare_run_ms(&s);
    let _ = facade_run_ms(&s);

    let bare_ms = fastest(args.reps, || bare_run_ms(&s));
    let facade_ms = fastest(args.reps, || facade_run_ms(&s));
    let bare_per_quantum = bare_ms / args.slices as f64;
    let facade_per_quantum = facade_ms / args.slices as f64;
    let overhead = facade_per_quantum / bare_per_quantum - 1.0;

    let mut table = Table::new(
        &format!(
            "service_loop: paper_default ({} quanta, best of {})",
            args.slices, args.reps
        ),
        &["path", "total ms", "per-quantum ms"],
    );
    table.row(vec![
        "bare pipeline".into(),
        format!("{bare_ms:.2}"),
        format!("{bare_per_quantum:.3}"),
    ]);
    table.row(vec![
        "service facade".into(),
        format!("{facade_ms:.2}"),
        format!("{facade_per_quantum:.3}"),
    ]);
    table.print();
    println!(
        "facade overhead: {:+.2}% per quantum (gate: < {:.0}%)",
        100.0 * overhead,
        100.0 * OVERHEAD_GATE
    );

    if let Some(path) = &args.json {
        let doc = JsonValue::Obj(vec![
            ("bench".into(), JsonValue::Str("service_loop".into())),
            ("slices".into(), JsonValue::Num(args.slices as f64)),
            ("reps".into(), JsonValue::Num(args.reps as f64)),
            (
                "metrics".into(),
                JsonValue::Obj(vec![
                    (
                        "bare.per_quantum_ms".into(),
                        JsonValue::Num(bare_per_quantum),
                    ),
                    (
                        "facade.per_quantum_ms".into(),
                        JsonValue::Num(facade_per_quantum),
                    ),
                    ("facade.overhead".into(), JsonValue::Num(overhead)),
                ]),
            ),
            ("tables".into(), JsonValue::Arr(vec![table.to_json()])),
        ]);
        emit_json(path, &doc).expect("write JSON report");
        println!("JSON report written to {}", path.display());
    }

    if args.check && overhead >= OVERHEAD_GATE {
        println!(
            "GATE FAILED: facade overhead {:.2}% >= {:.0}%",
            100.0 * overhead,
            100.0 * OVERHEAD_GATE
        );
        return ExitCode::FAILURE;
    }
    if args.check {
        println!("check passed: facade overhead within the gate");
    }
    ExitCode::SUCCESS
}
