//! Motivation experiment (§I/§II): the performance-power Pareto frontier of
//! DVFS versus core reconfiguration.
//!
//! The paper's case for reconfigurable cores rests on two cited results
//! (Zhang et al. \[20\], Meisner et al. \[23\]): DVFS's range collapses as
//! voltage margins thin, and reconfiguration — which gates capacity, hence
//! both dynamic *and* leakage power — extends the performance-energy Pareto
//! frontier beyond it. This binary quantifies that claim on our calibrated
//! models, per application class:
//!
//! * the 9-point *modern* DVFS ladder (voltage floor at 0.8 V/V₀),
//! * the idealized *wide-margin* ladder (no floor; an optimistic bound),
//! * the 27 core configurations at nominal frequency,
//!
//! and a maxBIPS-vs-reconfiguration chip-level comparison under tight caps.

use baselines::maxbips::{max_bips, CoreOptions};
use bench::Table;
use simulator::dvfs::{DvfsLadder, DvfsModel};
use simulator::power::CoreKind;
use simulator::{AppProfile, CacheAlloc, Chip, CoreConfig, SystemParams};
use workloads::batch;

/// (bips, watts) of every core configuration at nominal frequency on a
/// reconfigurable core.
fn reconfig_frontier(chip: &Chip, app: &AppProfile, cache: CacheAlloc) -> Vec<(f64, f64)> {
    CoreConfig::all()
        .map(|config| {
            let ipc = chip.perf().ipc(app, config, cache.ways(), 0.0);
            let bips = chip.core_bips(app, config, cache.ways(), 0.0);
            let watts = chip.power().core_watts(app, config, ipc);
            (bips.get(), watts.get())
        })
        .collect()
}

/// Lowest power achieving at least `target_bips`, or `None` if out of
/// range.
fn min_power_at(frontier: &[(f64, f64)], target_bips: f64) -> Option<f64> {
    frontier
        .iter()
        .filter(|(b, _)| *b >= target_bips)
        .map(|(_, w)| *w)
        .min_by(f64::total_cmp)
}

fn main() {
    let params = SystemParams::default();
    let chip = Chip::new(params, CoreKind::Reconfigurable);
    let dvfs = DvfsModel::new(params);
    let modern = DvfsLadder::modern(&params);
    let wide = DvfsLadder::wide_margin(&params);
    let cache = CacheAlloc::Two;

    let mut table = Table::new(
        "Pareto: min Watts to reach a fraction of peak BIPS (per app class)",
        &[
            "app",
            "target",
            "DVFS (modern)",
            "DVFS (wide)",
            "reconfig",
            "reconfig gain",
        ],
    );
    let examples = [
        ("povray (compute)", batch::catalog()[6].profile),
        ("bzip2 (mixed)", batch::catalog()[22].profile),
        ("mcf (memory)", batch::catalog()[13].profile),
    ];
    for (name, app) in &examples {
        let d_modern = dvfs.frontier(app, cache, &modern);
        let d_wide = dvfs.frontier(app, cache, &wide);
        let reconf = reconfig_frontier(&chip, app, cache);
        let peak = d_modern[0].0;
        for target in [0.9, 0.7, 0.5, 0.35, 0.25] {
            let t = peak * target;
            let fmt = |w: Option<f64>| w.map_or("out of range".into(), |w| format!("{w:.2} W"));
            let m = min_power_at(&d_modern, t);
            let r = min_power_at(&reconf, t);
            let gain = match (m, r) {
                (Some(m), Some(r)) => format!("{:.2}x", m / r),
                (None, Some(_)) => "DVFS cannot".into(),
                _ => "-".into(),
            };
            table.row(vec![
                name.to_string(),
                format!("{:.0}% peak", target * 100.0),
                fmt(m),
                fmt(min_power_at(&d_wide, t)),
                fmt(r),
                gain,
            ]);
        }
    }
    table.print();

    // Idle / low-activity power: the energy-proportionality angle
    // (Meisner et al. [23]) — a reconfigurable core parked in its
    // narrowest configuration leaks far less than a fixed core parked at
    // the bottom of its DVFS ladder, because the gated arrays stop leaking.
    let app = AppProfile::balanced();
    let dvfs_floor = *modern.states().last().expect("ladder non-empty");
    let reconf_idle = chip
        .power()
        .core_watts(&app, CoreConfig::narrowest(), 0.0)
        .get();
    let dvfs_parked = {
        // Parked fixed core: bottom of the ladder at zero activity.
        let fixed = simulator::PowerModel::new(params, CoreKind::Fixed);
        let idle_nominal = fixed.core_watts(&app, CoreConfig::widest(), 0.0).get();
        let leak = idle_nominal * 0.6;
        let dynamic = idle_nominal * 0.4;
        dynamic * dvfs_floor.dynamic_scale(params.frequency_ghz) + leak * dvfs_floor.leakage_scale()
    };
    println!(
        "Idle (parked) core power: fixed core at DVFS floor {:.2} W vs          reconfigurable core at {{2,2,2}} {:.2} W ({:.0}% lower) — the
         energy-proportionality benefit of gating capacity instead of slowing it.
",
        dvfs_parked,
        reconf_idle,
        100.0 * (1.0 - reconf_idle / dvfs_parked)
    );

    // Chip-level: 16 batch cores under tightening budgets — maxBIPS over
    // the modern ladder vs an oracle sweep of core configurations.
    let mix = batch::mix(16, 0xC0FFEE);
    let dvfs_options: Vec<CoreOptions> = mix
        .profiles()
        .iter()
        .map(|app| {
            modern
                .states()
                .iter()
                .map(|&s| {
                    (
                        dvfs.bips(app, CoreConfig::widest(), cache, s).get(),
                        dvfs.watts(app, CoreConfig::widest(), cache, s).get(),
                    )
                })
                .collect()
        })
        .collect();
    // Reconfiguration "ladder": the per-app Pareto-filtered configuration
    // frontier, reusing the same greedy allocator.
    let reconf_options: Vec<CoreOptions> = mix
        .profiles()
        .iter()
        .map(|app| {
            let mut points = reconfig_frontier(&chip, app, cache);
            points.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut frontier: CoreOptions = Vec::new();
            let mut best_w = f64::INFINITY;
            for (b, w) in points {
                if w < best_w {
                    best_w = w;
                    frontier.push((b, w));
                }
            }
            frontier
        })
        .collect();

    // Modern chips pair DVFS with core-level gating ("gating has become
    // necessary to reduce power beyond DVFS", §II-A2): give both schemes a
    // gated terminal state so every budget is feasible, then compare the
    // throughput each salvages.
    let with_gating = |options: &[CoreOptions]| -> Vec<CoreOptions> {
        options
            .iter()
            .map(|o| {
                let mut o = o.clone();
                o.push((0.0, params.gated_core_watts));
                o
            })
            .collect()
    };
    let dvfs_gated = with_gating(&dvfs_options);
    let reconf_gated = with_gating(&reconf_options);

    let nominal: f64 = dvfs_options.iter().map(|o| o[0].1).sum();
    let mut table = Table::new(
        "16 batch cores under a tightening budget: maxBIPS over DVFS+gating vs reconfiguration+gating",
        &["budget", "DVFS+gating BIPS", "gated cores", "reconfig BIPS", "gated cores", "reconfig gain"],
    );
    for frac in [0.9, 0.7, 0.5, 0.4, 0.3] {
        let budget = nominal * frac;
        let d = max_bips(&dvfs_gated, 0.0, budget);
        let r = max_bips(&reconf_gated, 0.0, budget);
        let gated = |plan: &baselines::maxbips::MaxBipsPlan, opts: &[CoreOptions]| {
            plan.states
                .iter()
                .zip(opts)
                .filter(|(&s, o)| s == o.len() - 1)
                .count()
        };
        table.row(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{:.1}", d.total_bips),
            gated(&d, &dvfs_gated).to_string(),
            format!("{:.1}", r.total_bips),
            gated(&r, &reconf_gated).to_string(),
            format!("{:.2}x", r.total_bips / d.total_bips.max(1e-9)),
        ]);
    }
    table.print();
    println!("Paper motivation: within its range DVFS is competitive (V^2 savings), but at");
    println!("tight budgets its thin voltage margins force whole-core gating, while");
    println!("capacity gating keeps every core contributing (Zhang et al. [20]).");
}
