//! Table II: CuttleSys' characterization and optimization overheads.
//!
//! The paper reports: 2 × 1 ms performance/power sampling, 4.8 ms for the
//! SGD reconstruction (three matrices in parallel), and 1.3 ms for the
//! parallel DDS search. The sampling cost is simulated time by construction;
//! the reconstruction and search costs are *wall-clock* here, measured on
//! the same problem shape the runtime solves every 100 ms decision quantum
//! (16 + 16 + 1 job rows × 108 configurations; 16 batch dimensions × 108
//! choices).

use std::time::Instant;

use bench::Table;
use cuttlesys::matrices::JobMatrices;
use cuttlesys::testbed::Scenario;
use dds::{parallel_search, ParallelDdsParams, SearchSpace};
use recsys::{Reconstructor, SgdConfig};
use simulator::power::CoreKind;
use simulator::{Chip, JobConfig, NUM_JOB_CONFIGS};
use workloads::batch;
use workloads::oracle::Oracle;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    median_ms(samples)
}

fn main() {
    let scenario = Scenario::paper_default();
    let oracle = Oracle::new(Chip::new(scenario.params, CoreKind::Reconfigurable));
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();

    // Matrices in the state the runtime sees: dense training rows plus two
    // profiling samples per live job.
    let mut matrices = JobMatrices::new(oracle, &training, scenario.num_batch());
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    for j in 0..=scenario.num_batch() {
        let profile = if j == 0 {
            scenario.service.profile
        } else {
            scenario.mix.apps[j - 1].profile
        };
        let b = oracle.bips_row(&profile);
        let w = oracle.power_row(&profile);
        matrices.record_sample(j, hi, b[hi], w[hi]);
        matrices.record_sample(j, lo, b[lo], w[lo]);
    }
    // Warm the per-bucket tail training rows (built once, offline).
    let _ = matrices.reconstruct(&Reconstructor::default(), 0.8);

    let runtime_sgd = Reconstructor::new(SgdConfig { max_iters: 60, ..SgdConfig::default() });
    let sgd_serial = time_ms(21, || {
        let _ = matrices.reconstruct(&runtime_sgd, 0.8);
    });
    let sgd_parallel = time_ms(21, || {
        let _ = matrices.reconstruct(&runtime_sgd.parallel(4), 0.8);
    });

    // DDS on the runtime's search problem: a synthetic but realistically
    // shaped objective (per-job concave benefit + power penalty).
    let space = SearchSpace::new(scenario.num_batch(), NUM_JOB_CONFIGS);
    let objective = |x: &[usize]| {
        let benefit: f64 = x.iter().map(|&c| ((c % 27 + 1) as f64).ln()).sum();
        let power: f64 = x.iter().map(|&c| 1.0 + 0.05 * c as f64).sum();
        benefit - 2.0 * (power - 60.0).max(0.0)
    };
    let dds = time_ms(21, || {
        let _ = parallel_search(&space, &objective, &ParallelDdsParams::default());
    });

    let mut table = Table::new(
        "Table II: characterization and optimization overheads",
        &["step", "this repo", "paper"],
    );
    table.row(vec![
        "perf/power sampling".into(),
        "2 x 1 ms (simulated)".into(),
        "2 x 1 ms".into(),
    ]);
    table.row(vec![
        "SGD reconstruction (serial Alg. 1)".into(),
        format!("{sgd_serial:.2} ms"),
        "-".into(),
    ]);
    table.row(vec![
        "SGD reconstruction (parallel, 3 matrices)".into(),
        format!("{sgd_parallel:.2} ms"),
        "4.8 ms".into(),
    ]);
    table.row(vec![
        "parallel DDS search (Fig. 6 params)".into(),
        format!("{dds:.2} ms"),
        "1.3 ms".into(),
    ]);
    table.print();
    println!(
        "Total decision overhead: {:.2} ms of a 100 ms timeslice (paper: ~8 ms incl. sampling).",
        2.0 + sgd_parallel + dds
    );
}
