//! Table II: CuttleSys' characterization and optimization overheads.
//!
//! The paper reports: 2 × 1 ms performance/power sampling, 4.8 ms for the
//! SGD reconstruction (three matrices in parallel), and 1.3 ms for the
//! parallel DDS search. Rather than re-benchmarking each step in isolation,
//! this report runs the actual runtime on the paper-default scenario and
//! reads the per-stage [`StageTelemetry`] the decision pipeline records on
//! every 100 ms quantum — the numbers below are what the deployed manager
//! measured about itself, aggregated over the run by
//! [`RunRecord::stage_summary`].
//!
//! Usage: `table2_overheads [--json <path>]` — `--json` additionally writes
//! the table to the given path (e.g. `results/table2.json`).
//!
//! [`StageTelemetry`]: cuttlesys::telemetry::StageTelemetry
//! [`RunRecord::stage_summary`]: cuttlesys::types::RunRecord::stage_summary

use bench::report::{emit_json, take_json_flag};
use bench::Table;
use cuttlesys::runtime::CuttleSysManager;
use cuttlesys::telemetry::STAGE_NAMES;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use workloads::loadgen::LoadPattern;

fn main() {
    let (json_path, _args) = take_json_flag(std::env::args().skip(1).collect());
    let scenario = Scenario {
        cap: LoadPattern::Constant(0.7),
        duration_slices: 30,
        ..Scenario::paper_default()
    }
    .with_load(LoadPattern::Constant(0.8));
    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);
    let summary = record
        .stage_summary()
        .expect("CuttleSys reports stage telemetry");

    // The paper's per-step costs, aligned with our stage order. Sampling is
    // simulated time by construction; the rest are wall-clock.
    let paper = ["2 x 1 ms", "4.8 ms", "-", "1.3 ms", "-"];

    let mut table = Table::new(
        &format!(
            "Table II: per-stage decision overheads (runtime-measured, {} decisions)",
            summary.decisions
        ),
        &["stage", "mean", "max", "paper"],
    );
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        let mean = if i == 0 {
            // The profile stage's cost is the simulated sampling window, not
            // the host-side bookkeeping around it.
            format!("{:.2} ms (simulated)", summary.mean_profile_sim_ms)
        } else {
            format!("{:.2} ms", summary.mean_wall_ms[i])
        };
        table.row(vec![
            (*name).into(),
            mean,
            format!("{:.2} ms", summary.max_wall_ms[i]),
            paper[i].into(),
        ]);
    }
    table.print();
    if let Some(path) = json_path {
        emit_json(&path, &table.to_json()).expect("write JSON report");
        println!("JSON report written to {}", path.display());
    }

    println!(
        "Work per quantum: {:.0} profile samples, {:.0} SGD epochs, {:.0} search evaluations.",
        summary.mean_samples, summary.mean_sgd_epochs, summary.mean_search_evaluations
    );
    println!(
        "Relocation: {} reclaims, {} relinquishes; repair gated jobs in {} quanta.",
        summary.reclaims, summary.relinquishes, summary.repairs
    );
    println!(
        "Total decision overhead: {:.2} ms of a 100 ms timeslice (paper: ~8 ms incl. sampling).",
        summary.mean_profile_sim_ms + summary.mean_wall_ms[1..].iter().sum::<f64>()
    );
}
