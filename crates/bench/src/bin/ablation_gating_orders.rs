//! §VII-B ablation: the four core-gating victim orderings.
//!
//! "We explore the following approaches for selecting the cores to turn
//! off: a) descending order of power; b) ascending order of power; c)
//! ascending order of BIPS/Watt; and d) ascending order of BIPS. From our
//! experiments, we found that turning off cores based on descending order
//! of power achieves the best performance."

use baselines::gating::GatingOrder;
use bench::{colocations, standard_scenario, Table};
use cuttlesys::managers::CoreGatingManager;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use simulator::power::CoreKind;

fn main() {
    let mixes: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let mut table = Table::new(
        "Core-gating victim orderings: batch instructions (1e9) by power cap",
        &["cap", "desc power", "asc power", "asc BIPS/W", "asc BIPS"],
    );
    for cap in [0.8, 0.7, 0.6] {
        let mut cells = vec![format!("{:.0}%", cap * 100.0)];
        for order in GatingOrder::ALL {
            let mut total = 0.0;
            for (svc, mix) in colocations(mixes) {
                let s = Scenario {
                    kind: CoreKind::Fixed,
                    ..standard_scenario(&svc, mix, cap)
                };
                let mut m = CoreGatingManager::new(&s, order, false);
                total += run_scenario(&s, &mut m).batch_instructions();
            }
            cells.push(format!("{:.1}", total / 1e9));
        }
        table.row(cells);
    }
    table.print();
    println!("Paper: descending power wins — gating one hungry core frees the most");
    println!("budget per victim, so more cores stay on.");
}
