//! Fault-resilience matrix: the paper's standard co-location run under each
//! fault-injection profile (`clean`, `lossy-sensors`, `flaky-reconfig`),
//! reporting what the degradation ladder absorbed — rejected samples,
//! retries, last-good fallbacks, safe-mode quanta — alongside the QoS and
//! throughput cost relative to the fault-free run.
//!
//! Usage: `fault_resilience [--seed <n>] [--json <path>] [slices]` —
//! `--json` writes the table as a JSON document. Exits non-zero if any
//! profile panics the run (impossible by construction), violates the
//! 2×-clean worst-tail bound, or leaves no telemetry trace.

use std::process::ExitCode;

use bench::report::{emit_json, take_json_flag};
use bench::Table;
use cuttlesys::faults::FaultPlan;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{RunRecord, Scenario};
use cuttlesys::CuttleSysManager;

const PROFILES: [&str; 3] = ["clean", "lossy-sensors", "flaky-reconfig"];

struct ProfileRun {
    record: RunRecord,
    breaker_opens: usize,
    breaker_closes: usize,
}

fn run_profile(profile: &str, seed: u64, slices: usize) -> ProfileRun {
    let plan = FaultPlan::named(profile, seed).expect("profile names come from PROFILES");
    let scenario = Scenario {
        duration_slices: slices,
        ..Scenario::paper_default()
    }
    .with_faults(plan);
    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);
    let (breaker_opens, breaker_closes) = manager.breaker_cycles();
    ProfileRun {
        record,
        breaker_opens,
        breaker_closes,
    }
}

fn main() -> ExitCode {
    let (json_path, args) = take_json_flag(std::env::args().skip(1).collect());
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let slices: usize = args
        .last()
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let runs: Vec<(&str, ProfileRun)> = PROFILES
        .iter()
        .map(|p| (*p, run_profile(p, seed, slices)))
        .collect();
    let clean_tail = runs[0].1.record.worst_tail_ratio();
    let clean_instr = runs[0].1.record.batch_instructions();

    let mut table = Table::new(
        &format!("Fault-resilience matrix: xapian + mix 0, {slices} slices, seed {seed}"),
        &[
            "profile",
            "fault slices",
            "rejected",
            "retries",
            "fallbacks",
            "replays",
            "safe-mode",
            "breaker o/c",
            "QoS viol",
            "tail vs clean",
            "batch vs clean",
        ],
    );
    let mut failed = false;
    for (profile, run) in &runs {
        let record = &run.record;
        let summary = record.stage_summary().expect("cuttlesys reports telemetry");
        let tail_ratio = record.worst_tail_ratio() / clean_tail.max(1e-12);
        let instr_ratio = record.batch_instructions() / clean_instr.max(1e-12);
        table.row(vec![
            (*profile).to_string(),
            record.injected_fault_slices().to_string(),
            summary.samples_rejected.to_string(),
            summary.sample_retries.to_string(),
            summary.reconstruct_fallbacks.to_string(),
            summary.last_good_replays.to_string(),
            summary.safe_mode_quanta.to_string(),
            format!("{}/{}", run.breaker_opens, run.breaker_closes),
            format!("{}/{}", record.qos_violations(), record.slices.len()),
            format!("{tail_ratio:.2}x"),
            format!("{instr_ratio:.2}x"),
        ]);

        // Acceptance bounds: every profile completes (panics would have
        // aborted already), the worst tail stays within 2x fault-free, and
        // faulty profiles leave a visible telemetry trace.
        if tail_ratio > 2.0 {
            eprintln!("{profile}: worst tail {tail_ratio:.2}x exceeds the 2x-clean bound");
            failed = true;
        }
        let traced = record.injected_fault_slices() > 0
            || summary.samples_rejected > 0
            || summary.reconstruct_fallbacks > 0
            || summary.last_good_replays > 0
            || summary.safe_mode_quanta > 0;
        if *profile != "clean" && !traced {
            eprintln!("{profile}: no degradation telemetry — injection hooks are dead");
            failed = true;
        }
        if *profile == "clean" && record.degraded_quanta() > 0 {
            eprintln!("clean: unexpected degradation without faults");
            failed = true;
        }
    }
    table.print();

    if let Some(path) = json_path {
        emit_json(&path, &table.to_json()).expect("write JSON report");
        println!("JSON report written to {}", path.display());
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
