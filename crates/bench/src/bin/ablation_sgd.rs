//! §V ablations on the reconstruction algorithm: factor rank, iteration
//! budget, and the lock-free parallel speedup (paper: 3.5x faster with
//! ~1% inaccuracy).

use std::time::Instant;

use bench::Table;
use recsys::{als, hogwild, sgd, AlsConfig, RatingMatrix, SgdConfig};
use simulator::power::CoreKind;
use simulator::{Chip, JobConfig, SystemParams, NUM_JOB_CONFIGS};
use workloads::batch;
use workloads::oracle::Oracle;

/// The runtime's throughput matrix (log space), plus held-out truth.
fn matrix_and_truth() -> (RatingMatrix, Vec<Vec<f64>>) {
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    let training = batch::training_set();
    let testing = batch::testing_set();
    let mut m = RatingMatrix::new(training.len() + testing.len(), NUM_JOB_CONFIGS);
    for (r, app) in training.iter().enumerate() {
        m.fill_row(r, &oracle.bips_row(&app.profile));
    }
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    let mut truth = Vec::new();
    for (i, app) in testing.iter().enumerate() {
        let row = oracle.bips_row(&app.profile);
        m.set(training.len() + i, hi, row[hi]);
        m.set(training.len() + i, lo, row[lo]);
        truth.push(row);
    }
    (m.map(|v| v.ln()), truth)
}

fn held_out_err(model: &recsys::SgdModel, truth: &[Vec<f64>], first_row: usize) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for (i, row) in truth.iter().enumerate() {
        for (c, t) in row.iter().enumerate() {
            let p = model.predict(first_row + i, c).exp();
            total += 100.0 * (p - t).abs() / t;
            n += 1;
        }
    }
    total / n as f64
}

fn main() {
    let (m, truth) = matrix_and_truth();
    let first_live = batch::training_set().len();

    let mut table = Table::new(
        "SGD factor rank: held-out accuracy vs cost (108-config throughput matrix)",
        &[
            "rank",
            "held-out mean |err| %",
            "train RMSE (log)",
            "wall time",
        ],
    );
    for rank in [1usize, 2, 4, 8, 16, 108] {
        let config = SgdConfig {
            rank,
            max_iters: 60,
            ..SgdConfig::default()
        };
        let start = Instant::now();
        let model = sgd::fit(&m, &config);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            rank.to_string(),
            format!("{:.1}", held_out_err(&model, &truth, first_live)),
            format!("{:.4}", model.train_rmse),
            format!("{ms:.2} ms"),
        ]);
    }
    table.print();
    println!("(rank 108 is the paper's literal full-rank P/Q; low rank matches its");
    println!("accuracy at a fraction of the cost, keeping the ms-scale budget.)\n");

    // Solver ablation: the paper's SGD vs deterministic ALS.
    let mut table = Table::new(
        "Solver ablation at rank 2: SGD (Alg. 1) vs alternating least squares",
        &[
            "solver",
            "held-out mean |err| %",
            "train RMSE (log)",
            "wall time",
        ],
    );
    {
        let config = SgdConfig {
            max_iters: 60,
            ..SgdConfig::default()
        };
        let start = Instant::now();
        let model = sgd::fit(&m, &config);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            "SGD (60 epochs)".into(),
            format!("{:.1}", held_out_err(&model, &truth, first_live)),
            format!("{:.4}", model.train_rmse),
            format!("{ms:.2} ms"),
        ]);
        let start = Instant::now();
        let model = als::fit(&m, &AlsConfig::default());
        let ms = start.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            "ALS (8 sweeps)".into(),
            format!("{:.1}", held_out_err(&model, &truth, first_live)),
            format!("{:.4}", model.train_rmse),
            format!("{ms:.2} ms"),
        ]);
    }
    table.print();
    println!();

    // The speedup study runs at the paper's literal full-rank P/Q
    // (rank = m*p): that is the compute-per-entry regime where HOGWILD
    // parallelism pays. (At the runtime's rank 2 the whole fit is tens of
    // microseconds per epoch and thread overhead dominates.)
    let config = SgdConfig {
        rank: NUM_JOB_CONFIGS,
        max_iters: 120,
        convergence_tol: 0.0,
        ..SgdConfig::default()
    };
    let mut table = Table::new(
        "Lock-free parallel SGD at full rank: speedup and inaccuracy (paper: 3.5x, ~1%)",
        &[
            "threads",
            "wall time",
            "speedup",
            "held-out delta vs serial",
        ],
    );
    let start = Instant::now();
    let serial = sgd::fit(&m, &config);
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let serial_err = held_out_err(&serial, &truth, first_live);
    table.row(vec![
        "1 (serial)".into(),
        format!("{serial_ms:.2} ms"),
        "1.00x".into(),
        "-".into(),
    ]);
    for threads in [2usize, 4, 8] {
        let start = Instant::now();
        let model = hogwild::fit_parallel(&m, &config, threads);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let err = held_out_err(&model, &truth, first_live);
        table.row(vec![
            threads.to_string(),
            format!("{ms:.2} ms"),
            format!("{:.2}x", serial_ms / ms),
            format!("{:+.1} pp", err - serial_err),
        ]);
    }
    table.print();
    println!("Measured reality on cache-coherent x86: faithful lock-free HOGWILD does not");
    println!("gain wall-clock here — atomic element accesses defeat vectorization and the");
    println!("shared column factors ping-pong between cores. The runtime's parallelism");
    println!("instead comes from running the three reconstructions concurrently");
    println!("(complete_all), which is contention-free.");
}
