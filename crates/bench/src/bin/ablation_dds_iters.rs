//! §VI / §VIII-A3 ablation: DDS solution quality vs iteration budget.
//!
//! "As maxIter increases, the quality of the solution obtained improves,
//! but at the same time the time required to run the algorithm also
//! increases. We explore this trade-off ... and select the appropriate
//! number of iterations" (the paper lands on 40, Fig. 6).

use std::time::Instant;

use bench::Table;
use cuttlesys::matrices::JobMatrices;
use dds::{parallel_search, ParallelDdsParams, SearchSpace, SoftPenalty};
use recsys::Reconstructor;
use simulator::power::CoreKind;
use simulator::{Chip, JobConfig, SystemParams, NUM_JOB_CONFIGS};
use workloads::batch;
use workloads::oracle::Oracle;

fn main() {
    // The runtime's actual search problem, built from SGD predictions.
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();
    let mix = batch::mix(16, 0xC0FFEE);
    let mut matrices = JobMatrices::new(oracle, &training, 1, 16);
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    for (j, app) in mix.apps.iter().enumerate() {
        let b = oracle.bips_row(&app.profile);
        let w = oracle.power_row(&app.profile);
        matrices.record_sample(1 + j, hi, b[hi], w[hi]);
        matrices.record_sample(1 + j, lo, b[lo], w[lo]);
    }
    let preds = matrices.reconstruct(&Reconstructor::default(), &[0.8]);
    let budget = 70.0;
    let bips = preds.batch_bips;
    let watts = preds.batch_watts;
    let objective = SoftPenalty {
        benefit: |x: &[usize]| {
            (x.iter()
                .enumerate()
                .map(|(j, &c)| bips[j][c].max(1e-9).ln())
                .sum::<f64>()
                / 16.0)
                .exp()
        },
        power: |x: &[usize]| 32.0 + x.iter().enumerate().map(|(j, &c)| watts[j][c]).sum::<f64>(),
        cache_ways: |x: &[usize]| {
            2.0 + x
                .iter()
                .map(|&c| JobConfig::from_index(c).cache.ways())
                .sum::<f64>()
        },
        max_power: budget,
        max_ways: 32.0,
        penalty_power: 2.0,
        penalty_cache: 2.0,
    };
    let space = SearchSpace::new(16, NUM_JOB_CONFIGS);

    let mut table = Table::new(
        "Parallel DDS: solution quality vs iteration budget (Fig. 6 uses 40)",
        &["maxIter", "best objective", "vs maxIter=640", "wall time"],
    );
    let reference = parallel_search(
        &space,
        &objective,
        &ParallelDdsParams {
            max_iters: 640,
            ..Default::default()
        },
    )
    .best_value;
    for iters in [5usize, 10, 20, 40, 80, 160] {
        let params = ParallelDdsParams {
            max_iters: iters,
            ..Default::default()
        };
        let start = Instant::now();
        let mut best = 0.0;
        const REPS: u32 = 9;
        for _ in 0..REPS {
            best = parallel_search(&space, &objective, &params).best_value;
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(REPS);
        table.row(vec![
            iters.to_string(),
            format!("{best:.4}"),
            format!("{:.1}%", 100.0 * best / reference),
            format!("{ms:.2} ms"),
        ]);
    }
    table.print();
    println!("Expected shape: steep gains up to ~40 iterations, flat afterwards —");
    println!("which is why Fig. 6 stops there to stay inside the ms-scale budget.");
}
