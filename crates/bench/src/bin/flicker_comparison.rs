//! §VIII-E: comparison against Flicker.
//!
//! Flicker was designed for batch-only multicores; applying it to a
//! latency-critical colocation requires choosing how to treat the LC
//! service. The paper evaluates both ways:
//!
//! * variant (a): the LC service is profiled like any job — 9 × 10 ms of
//!   3MM3 configurations per timeslice — and suffers QoS violations of over
//!   an order of magnitude;
//! * variant (b): the LC service is pinned to {6,6,6} and only batch jobs
//!   are profiled (9 × 1 ms); violations shrink (paper: ~1.5×) but the
//!   unpartitioned cache and the 9 ms profiling still disturb the tail.
//!
//! Usage: `flicker_comparison [cap_fraction] [mixes_per_service]`

use bench::{colocations, standard_scenario, Table};
use cuttlesys::managers::{FlickerManager, FlickerVariant};
use cuttlesys::testbed::run_scenario;
use cuttlesys::CuttleSysManager;

fn main() {
    let cap: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.7);
    let mixes: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);

    let mut table = Table::new(
        &format!("Flicker vs CuttleSys at a {:.0}% cap", cap * 100.0),
        &[
            "scheme",
            "QoS violations",
            "worst tail/QoS",
            "batch instr (1e9)",
        ],
    );

    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
    for scheme in ["flicker-a", "flicker-b", "cuttlesys"] {
        let mut violations = 0;
        let mut worst: f64 = 0.0;
        let mut instr = 0.0;
        let mut slices = 0;
        for (svc, mix) in colocations(mixes) {
            let scenario = standard_scenario(&svc, mix, cap);
            let record = match scheme {
                "flicker-a" => run_scenario(
                    &scenario,
                    &mut FlickerManager::new(&scenario, FlickerVariant::LcProfiled),
                ),
                "flicker-b" => run_scenario(
                    &scenario,
                    &mut FlickerManager::new(&scenario, FlickerVariant::LcPinned),
                ),
                _ => {
                    let mut m = CuttleSysManager::for_scenario(&scenario);
                    run_scenario(&scenario, &mut m)
                }
            };
            violations += record
                .slices
                .iter()
                .skip(1)
                .filter(|s| s.qos_violation())
                .count();
            slices += record.slices.len() - 1;
            worst = worst.max(record.worst_tail_ratio());
            instr += record.batch_instructions();
        }
        rows.push((
            format!("{scheme} ({violations}/{slices})"),
            violations,
            worst,
            instr,
        ));
    }
    for (name, _v, worst, instr) in &rows {
        table.row(vec![
            name.clone(),
            name.split('(')
                .nth(1)
                .unwrap_or("")
                .trim_end_matches(')')
                .to_string(),
            format!("{worst:.1}x"),
            format!("{:.2}", instr / 1e9),
        ]);
    }
    table.print();
    println!("Paper shape: variant (a) violates QoS by over an order of magnitude,");
    println!("variant (b) by ~1.5x; CuttleSys meets QoS throughout.");
}
