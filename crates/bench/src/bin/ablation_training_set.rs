//! §VIII-A2 ablation: reconstruction accuracy vs offline training-set size.
//!
//! Paper: "We select the fewest jobs (16) needed to keep accuracy over 90%
//! for all running jobs. If the training set included 24 jobs instead,
//! inaccuracy drops to 8%, while execution time for reconstruction
//! increases by 18%. On the other hand, decreasing the training set to 8
//! applications increases inaccuracy to 20%."

use std::time::Instant;

use bench::Table;
use recsys::{RatingMatrix, Reconstructor, ValueTransform};
use simulator::power::CoreKind;
use simulator::{Chip, JobConfig, SystemParams, NUM_JOB_CONFIGS};
use workloads::batch;
use workloads::oracle::Oracle;

fn main() {
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    // A fixed diverse ordering of the full catalog: interleave the paper's
    // training and testing sets so every prefix spans behaviours.
    let train_pool = batch::training_set();
    let test_pool = batch::testing_set();
    let mut ordered = Vec::new();
    for i in 0..train_pool.len().max(test_pool.len()) {
        if let Some(b) = train_pool.get(i) {
            ordered.push(*b);
        }
        if let Some(b) = test_pool.get(i) {
            ordered.push(*b);
        }
    }

    let mut table = Table::new(
        "Training-set size vs inference accuracy (throughput rows, 2 samples)",
        &[
            "training apps",
            "mean |err| %",
            "worst app |err| %",
            "reconstruct time",
            "paper",
        ],
    );
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    for (n_train, paper) in [
        (8usize, "~20% inaccuracy"),
        (16, "~10% (chosen)"),
        (24, "~8%, +18% time"),
    ] {
        let training = &ordered[..n_train];
        let testing = &ordered[n_train..];
        let mut errors = Vec::new();
        let mut elapsed = 0.0;
        for app in testing {
            let truth = oracle.bips_row(&app.profile);
            let mut m = RatingMatrix::new(n_train + 1, NUM_JOB_CONFIGS);
            for (r, t) in training.iter().enumerate() {
                m.fill_row(r, &oracle.bips_row(&t.profile));
            }
            m.set(n_train, hi, truth[hi]);
            m.set(n_train, lo, truth[lo]);
            let start = Instant::now();
            let out = Reconstructor::default().complete(&m, ValueTransform::Log);
            elapsed += start.elapsed().as_secs_f64() * 1e3;
            let err = (0..NUM_JOB_CONFIGS)
                .map(|c| 100.0 * (out.get(n_train, c) - truth[c]).abs() / truth[c])
                .sum::<f64>()
                / NUM_JOB_CONFIGS as f64;
            errors.push(err);
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let worst = errors.iter().cloned().fold(0.0, f64::max);
        table.row(vec![
            n_train.to_string(),
            format!("{mean:.1}"),
            format!("{worst:.1}"),
            format!("{:.2} ms/app", elapsed / errors.len() as f64),
            paper.to_string(),
        ]);
    }
    table.print();
    println!("Expected shape: accuracy improves and cost grows with more training rows.");
}
