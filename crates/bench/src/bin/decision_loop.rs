//! Regression bench for the decision quantum's compute path.
//!
//! Runs the actual runtime — not a micro-benchmark — over the paper-default
//! and two-service scenarios twice each: once on the legacy cold path
//! ([`PerfConfig::cold`]: spawn-per-quantum threads, cold-started SGD,
//! uncached evaluations) and once on the fast path ([`PerfConfig::fast`]:
//! persistent worker pool, warm-started reconstruction, per-quantum DDS
//! evaluation cache). Per-stage wall times come from the pipeline's own
//! [`StageTelemetry`], aggregated as mean/p99 over the steady-state quanta
//! (the first quantum is cold on every path and is excluded).
//!
//! Usage: `decision_loop [--slices N] [--threads N] [--json [path]]
//! [--check <baseline.json>] [--profile <stage>]`
//!
//! * `--slices N` — quanta per run (default 20).
//! * `--threads N` — worker-pool width for the fast path (default: the
//!   pool's machine-sized default).
//! * `--json [path]` — write the report as JSON (default path
//!   `BENCH_decision_loop.json`, or `BENCH_decision_loop_<stage>.json`
//!   under `--profile`). The document carries a flat `metrics` object so
//!   the checker below needs no JSON parser.
//! * `--check <baseline>` — compare against a previously recorded report
//!   and exit non-zero if any stage mean regressed by more than 25 %.
//! * `--profile <stage>` — report one pipeline stage alone. The intended
//!   use is `--profile search`: the DDS search is the decision loop's
//!   dominant optimizable cost, and isolating it gives the search a
//!   regression gate of its own (pinned baseline:
//!   `results/bench_baseline_decision_loop_search.json`) that is not
//!   diluted by reconstruct noise. The whole pipeline still executes —
//!   stages feed each other, so a stage cannot run out of context — but
//!   the report and `--check` cover only the profiled stage's columns.
//!
//! [`StageTelemetry`]: cuttlesys::telemetry::StageTelemetry

use std::path::PathBuf;
use std::process::ExitCode;

use bench::report::{emit_json, JsonValue};
use bench::Table;
use cuttlesys::runtime::{CuttleSysManager, PerfConfig};
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use workloads::loadgen::LoadPattern;

/// Fractional regression in a stage mean that fails `--check`.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// Stage means below this are dominated by timer noise (the qos and repair
/// stages run in single-digit microseconds) and are exempt from the gate.
const NOISE_FLOOR_MS: f64 = 0.05;

/// Telemetry stages timed per quantum, in pipeline order. Profile cost is
/// simulated sampling time by construction; the rest are host wall-clock.
const STAGES: [&str; 5] = ["profile_sim", "reconstruct", "qos", "search", "repair"];

struct StageStat {
    mean: f64,
    p99: f64,
}

fn stat(values: &mut [f64]) -> StageStat {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.sort_by(|a, b| a.total_cmp(b));
    let idx = ((values.len() as f64 * 0.99).ceil() as usize).clamp(1, values.len()) - 1;
    StageStat {
        mean,
        p99: values[idx],
    }
}

/// One measured run of a scenario under one perf configuration.
struct PathMetrics {
    stages: Vec<(&'static str, StageStat)>,
    cache_hit_rate: f64,
    warm_solves: usize,
    /// Mean reconstruct + search wall time — the compute the tentpole
    /// optimizations target, and the speedup's numerator/denominator.
    reconstruct_search_mean: f64,
}

fn measure(scenario: &Scenario, perf: PerfConfig) -> PathMetrics {
    let mut manager = CuttleSysManager::for_scenario(scenario).with_perf(perf);
    let record = run_scenario(scenario, &mut manager);
    let tels: Vec<_> = record
        .slices
        .iter()
        .skip(1)
        .filter_map(|s| s.telemetry.as_ref())
        .collect();
    assert!(!tels.is_empty(), "run produced no steady-state telemetry");
    let mut columns: Vec<Vec<f64>> = STAGES.iter().map(|_| Vec::new()).collect();
    for t in &tels {
        columns[0].push(t.profile_sim_ms);
        columns[1].push(t.reconstruct_wall_ms);
        columns[2].push(t.qos_wall_ms);
        columns[3].push(t.search_wall_ms);
        columns[4].push(t.repair_wall_ms);
    }
    let reconstruct_search_mean =
        (columns[1].iter().sum::<f64>() + columns[3].iter().sum::<f64>()) / tels.len() as f64;
    let stages = STAGES
        .iter()
        .zip(&mut columns)
        .map(|(name, col)| (*name, stat(col)))
        .collect();
    let hits: usize = tels.iter().map(|t| t.cache_hits).sum();
    let misses: usize = tels.iter().map(|t| t.cache_misses).sum();
    let total = hits + misses;
    PathMetrics {
        stages,
        cache_hit_rate: if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        },
        warm_solves: tels.iter().map(|t| t.warm_solves).sum(),
        reconstruct_search_mean,
    }
}

fn scenarios(slices: usize) -> Vec<(&'static str, Scenario)> {
    let paper = Scenario {
        cap: LoadPattern::Constant(0.7),
        duration_slices: slices,
        noise: 0.0,
        phases: false,
        ..Scenario::paper_default()
    }
    .with_load(LoadPattern::Constant(0.8));
    let two = Scenario {
        cap: LoadPattern::Constant(0.7),
        duration_slices: slices,
        noise: 0.0,
        phases: false,
        ..Scenario::two_service()
    };
    vec![("paper_default", paper), ("two_service", two)]
}

/// Pulls `"key":<number>` out of a JSON document without a parser — the
/// report's `metrics` object is flat and its keys contain no escapes, so a
/// literal scan is exact.
fn extract_number(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = &body[at..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

struct CliArgs {
    slices: usize,
    threads: Option<usize>,
    json: Option<PathBuf>,
    check: Option<PathBuf>,
    profile: Option<&'static str>,
}

fn parse_args() -> CliArgs {
    let mut args = CliArgs {
        slices: 20,
        threads: None,
        json: None,
        check: None,
        profile: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--slices" => {
                args.slices = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slices takes a positive integer");
            }
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads takes a positive integer"),
                );
            }
            "--json" => {
                // The path operand is optional: a following flag (or
                // nothing) means the default output name, resolved in
                // main once --profile (which may come later) is known.
                let path = match it.peek() {
                    Some(p) if !p.starts_with("--") => PathBuf::from(it.next().expect("peeked")),
                    _ => PathBuf::new(),
                };
                args.json = Some(path);
            }
            "--check" => {
                args.check = Some(PathBuf::from(
                    it.next().expect("--check takes a baseline path"),
                ));
            }
            "--profile" => {
                let stage = it.next().expect("--profile takes a stage name");
                args.profile = Some(
                    STAGES
                        .iter()
                        .find(|s| **s == stage)
                        .copied()
                        .unwrap_or_else(|| {
                            panic!("--profile takes one of {STAGES:?}, got \"{stage}\"")
                        }),
                );
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    assert!(args.slices >= 2, "need at least 2 slices for steady state");
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let fast_perf = match args.threads {
        Some(n) => PerfConfig {
            pool_threads: n,
            ..PerfConfig::fast()
        },
        None => PerfConfig::fast(),
    };

    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut tables = Vec::new();
    for (name, scenario) in scenarios(args.slices) {
        let cold = measure(&scenario, PerfConfig::cold());
        let fast = measure(&scenario, fast_perf);

        let scope = match args.profile {
            Some(stage) => format!(" [{stage} stage only]"),
            None => String::new(),
        };
        let mut table = Table::new(
            &format!(
                "decision_loop: {name}{scope} ({} steady-state quanta, {} pool threads)",
                args.slices - 1,
                fast_perf.pool_threads
            ),
            &[
                "stage",
                "cold mean ms",
                "cold p99 ms",
                "fast mean ms",
                "fast p99 ms",
                "speedup",
            ],
        );
        for ((stage, c), (_, f)) in cold
            .stages
            .iter()
            .zip(&fast.stages)
            .filter(|((s, _), _)| args.profile.is_none_or(|p| p == *s))
        {
            table.row(vec![
                (*stage).into(),
                format!("{:.3}", c.mean),
                format!("{:.3}", c.p99),
                format!("{:.3}", f.mean),
                format!("{:.3}", f.p99),
                if f.mean > 0.0 {
                    format!("{:.2}x", c.mean / f.mean)
                } else {
                    "-".into()
                },
            ]);
            for (path, s) in [("cold", c), ("fast", f)] {
                metrics.push((format!("{name}.{path}.{stage}.mean"), s.mean));
                metrics.push((format!("{name}.{path}.{stage}.p99"), s.p99));
            }
        }
        table.print();
        match args.profile {
            Some("search") => {
                // The search-only gate still reports the cache hit rate:
                // the per-quantum evaluation cache is the fast path's main
                // search-side lever, so a hit-rate collapse explains a
                // search-mean regression.
                let (_, cold_s) = &cold.stages[3];
                let (_, fast_s) = &fast.stages[3];
                let speedup = if fast_s.mean > 0.0 {
                    cold_s.mean / fast_s.mean
                } else {
                    0.0
                };
                println!(
                    "{name}: search {:.3} ms -> {:.3} ms ({:.2}x), cache hit rate {:.1}%",
                    cold_s.mean,
                    fast_s.mean,
                    speedup,
                    100.0 * fast.cache_hit_rate
                );
                metrics.push((format!("{name}.speedup_search"), speedup));
                metrics.push((format!("{name}.fast.cache_hit_rate"), fast.cache_hit_rate));
            }
            Some(_) => {}
            None => {
                let speedup = cold.reconstruct_search_mean / fast.reconstruct_search_mean;
                println!(
                    "{name}: reconstruct+search {:.3} ms -> {:.3} ms ({:.2}x), \
                     cache hit rate {:.1}%, {} warm solves",
                    cold.reconstruct_search_mean,
                    fast.reconstruct_search_mean,
                    speedup,
                    100.0 * fast.cache_hit_rate,
                    fast.warm_solves
                );
                metrics.push((format!("{name}.speedup_reconstruct_search"), speedup));
                metrics.push((format!("{name}.fast.cache_hit_rate"), fast.cache_hit_rate));
                metrics.push((format!("{name}.fast.warm_solves"), fast.warm_solves as f64));
            }
        }
        println!();
        tables.push(table.to_json());
    }

    if let Some(path) = &args.json {
        let path = if path.as_os_str().is_empty() {
            PathBuf::from(match args.profile {
                Some(stage) => format!("BENCH_decision_loop_{stage}.json"),
                None => "BENCH_decision_loop.json".to_string(),
            })
        } else {
            path.clone()
        };
        let bench_name = match args.profile {
            Some(stage) => format!("decision_loop_{stage}"),
            None => "decision_loop".to_string(),
        };
        let doc = JsonValue::Obj(vec![
            ("bench".into(), JsonValue::Str(bench_name)),
            (
                "threads".into(),
                JsonValue::Num(fast_perf.pool_threads as f64),
            ),
            ("slices".into(), JsonValue::Num(args.slices as f64)),
            (
                "metrics".into(),
                JsonValue::Obj(
                    metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                        .collect(),
                ),
            ),
            ("tables".into(), JsonValue::Arr(tables)),
        ]);
        emit_json(&path, &doc).expect("write JSON report");
        println!("JSON report written to {}", path.display());
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path).expect("read baseline JSON");
        let mut regressions = 0usize;
        let mut compared = 0usize;
        for (key, measured) in &metrics {
            if !key.ends_with(".mean") {
                continue;
            }
            let Some(base) = extract_number(&baseline, key) else {
                continue;
            };
            compared += 1;
            if base > 0.0
                && *measured > NOISE_FLOOR_MS
                && *measured > base * (1.0 + REGRESSION_TOLERANCE)
            {
                println!(
                    "REGRESSION {key}: {measured:.3} ms vs baseline {base:.3} ms \
                     (> {:.0}% over)",
                    100.0 * REGRESSION_TOLERANCE
                );
                regressions += 1;
            }
        }
        assert!(compared > 0, "baseline shares no stage-mean metrics");
        if regressions > 0 {
            println!("{regressions} of {compared} stage means regressed");
            return ExitCode::FAILURE;
        }
        println!("check passed: {compared} stage means within tolerance");
    }
    ExitCode::SUCCESS
}
