//! Fig. 9: prediction error of Flicker's RBF surrogate (3 samples) versus
//! CuttleSys' SGD reconstruction (2 samples) for throughput and power.
//!
//! The paper gives the RBF approach *more* information than SGD (3 samples
//! instead of 2 — it could not converge with 2) and still finds dramatically
//! higher errors, with outliers up to 600 %: an interpolant with no prior
//! has nothing to say about 105 unseen configurations, while collaborative
//! filtering transfers the shape of previously-seen applications.

use baselines::rbf::{job_features, RbfModel};
use bench::{ErrorSummary, Table};
use cuttlesys::matrices::JobMatrices;
use recsys::Reconstructor;
use simulator::power::CoreKind;
use simulator::{
    CacheAlloc, Chip, CoreConfig, JobConfig, SectionWidth, SystemParams, NUM_JOB_CONFIGS,
};
use workloads::batch;
use workloads::oracle::Oracle;

/// The three RBF samples: the two profiling extremes plus a mid
/// configuration (RBF cannot be fit from 2 samples of a 4-D space in any
/// useful way; the paper likewise gave it 3).
fn rbf_samples() -> [JobConfig; 3] {
    [
        JobConfig::profiling_high(),
        JobConfig::profiling_low(),
        JobConfig::new(
            CoreConfig::new(SectionWidth::Four, SectionWidth::Four, SectionWidth::Four),
            CacheAlloc::Two,
        ),
    ]
}

fn pct_errors(pred: &[f64], truth: &[f64], skip: &[usize]) -> Vec<f64> {
    pred.iter()
        .zip(truth)
        .enumerate()
        .filter(|(i, _)| !skip.contains(i))
        .map(|(_, (p, t))| 100.0 * (p - t) / t)
        .collect()
}

fn main() {
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();
    let samples = rbf_samples();
    let sample_idx: Vec<usize> = samples.iter().map(|c| c.index()).collect();
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();

    let mut rbf_tput = Vec::new();
    let mut rbf_power = Vec::new();
    let mut sgd_tput = Vec::new();
    let mut sgd_power = Vec::new();

    for app in batch::testing_set() {
        let truth_b = oracle.bips_row(&app.profile);
        let truth_w = oracle.power_row(&app.profile);

        // RBF on three samples over (FE, BE, LS, log-ways) features.
        let xs: Vec<Vec<f64>> = samples.iter().map(|c| job_features(*c)).collect();
        let ys_b: Vec<f64> = sample_idx.iter().map(|&i| truth_b[i]).collect();
        let ys_w: Vec<f64> = sample_idx.iter().map(|&i| truth_w[i]).collect();
        let rbf_b = RbfModel::fit(&xs, &ys_b).expect("3 distinct samples fit");
        let rbf_w = RbfModel::fit(&xs, &ys_w).expect("3 distinct samples fit");
        let pred_b: Vec<f64> = JobConfig::all()
            .map(|c| rbf_b.predict(&job_features(c)))
            .collect();
        let pred_w: Vec<f64> = JobConfig::all()
            .map(|c| rbf_w.predict(&job_features(c)))
            .collect();
        rbf_tput.extend(pct_errors(&pred_b, &truth_b, &sample_idx));
        rbf_power.extend(pct_errors(&pred_w, &truth_w, &sample_idx));

        // SGD on two samples, as at runtime.
        let mut m = JobMatrices::new(oracle, &training, 1, 1);
        m.record_sample(1, hi, truth_b[hi], truth_w[hi]);
        m.record_sample(1, lo, truth_b[lo], truth_w[lo]);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        sgd_tput.extend(pct_errors(&preds.batch_bips[0], &truth_b, &[hi, lo]));
        sgd_power.extend(pct_errors(&preds.batch_watts[0], &truth_w, &[hi, lo]));
    }

    let mut table = Table::new(
        "Fig. 9: % error, RBF (3 samples) vs SGD (2 samples), 12 test apps x 108 configs",
        &["metric", "p5", "p25", "p50", "p75", "p95", "|max|"],
    );
    for (name, errors) in [
        ("throughput RBF", &rbf_tput),
        ("power RBF", &rbf_power),
        ("throughput SGD", &sgd_tput),
        ("power SGD", &sgd_power),
    ] {
        let s = ErrorSummary::of(errors);
        let max = errors.iter().fold(0.0_f64, |a, e| a.max(e.abs()));
        let mut row = vec![name.to_string()];
        row.extend(s.row());
        row.push(format!("{max:.0}"));
        table.row(row);
    }
    table.print();
    println!(
        "Paper shape: RBF errors dramatically higher, outliers up to ~600%; {} entries per metric.",
        12 * (NUM_JOB_CONFIGS - 3)
    );
}
