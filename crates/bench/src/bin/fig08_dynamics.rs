//! Fig. 8: CuttleSys' dynamic behaviour over one second —
//! (a) under a diurnal input-load pattern at a constant 70 % cap,
//! (b) under a varying power budget (90 % → 60 % → 90 %) at 80 % load,
//! (c) a core-relocation example under a load spike.
//!
//! Each run prints the same series the paper plots: input load, tail
//! latency relative to QoS, batch throughput (geo-mean BIPS), chip power vs
//! budget, the LC core configuration, and (for c) the LC core count.
//!
//! Usage: `fig08_dynamics [--scenario load|power|relocation] [slices]`

use bench::Table;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use workloads::latency;
use workloads::loadgen::LoadPattern;

fn scenario(kind: &str, slices: usize) -> Scenario {
    let svc = latency::service_by_name("xapian").expect("xapian exists");
    let base = Scenario {
        service: svc,
        duration_slices: slices,
        ..Scenario::paper_default()
    };
    match kind {
        // (a) diurnal load, constant 70% cap.
        "load" => Scenario {
            load: LoadPattern::paper_diurnal(),
            cap: LoadPattern::Constant(0.7),
            ..base
        },
        // (b) constant 80% load, cap 90% -> 60% at t=0.3s -> 90% at t=0.7s.
        "power" => Scenario {
            load: LoadPattern::Constant(0.8),
            cap: LoadPattern::Steps(vec![(0.0, 0.9), (0.3, 0.6), (0.7, 0.9)]),
            ..base
        },
        // (c) load spike driving core relocation, constant 70% cap.
        "relocation" => Scenario {
            load: LoadPattern::paper_spike(),
            cap: LoadPattern::Constant(0.7),
            ..base
        },
        other => panic!("unknown scenario {other} (use load|power|relocation)"),
    }
}

fn run(kind: &str, slices: usize) {
    let s = scenario(kind, slices);
    let mut manager = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut manager);

    let mut table = Table::new(
        &format!(
            "Fig. 8 ({kind}): xapian + mix 0, {} slices",
            s.duration_slices
        ),
        &[
            "t (s)",
            "load",
            "tail/QoS",
            "batch gmean (BIPS)",
            "power (W)",
            "budget (W)",
            "LC cores",
            "LC config",
        ],
    );
    for sl in &record.slices {
        table.row(vec![
            format!("{:.1}", sl.t_s),
            format!("{:.0}%", sl.load * 100.0),
            format!("{:.2}", sl.tail_ms / s.service.qos_ms),
            format!("{:.2}", sl.batch_gmean_bips),
            format!("{:.1}", sl.chip_watts),
            format!("{:.1}", sl.cap_watts),
            sl.lc_cores.to_string(),
            sl.lc_config.to_string(),
        ]);
    }
    table.print();
    println!(
        "QoS violations: {} / {}; power violations: {} / {}\n",
        record.qos_violations(),
        record.slices.len(),
        record.power_violations(),
        record.slices.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");
    let slices: usize = args.last().and_then(|a| a.parse().ok()).unwrap_or(10);
    if kind == "all" {
        for k in ["load", "power", "relocation"] {
            run(k, slices);
        }
    } else {
        run(kind, slices);
    }
}
