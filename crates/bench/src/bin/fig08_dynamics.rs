//! Fig. 8: CuttleSys' dynamic behaviour over one second —
//! (a) under a diurnal input-load pattern at a constant 70 % cap,
//! (b) under a varying power budget (90 % → 60 % → 90 %) at 80 % load,
//! (c) a core-relocation example under a load spike.
//!
//! Each run prints the same series the paper plots: input load, tail
//! latency relative to QoS, batch throughput (geo-mean BIPS), chip power vs
//! budget, the LC core configuration, and (for c) the LC core count.
//!
//! Usage: `fig08_dynamics [--scenario load|power|relocation] [--json <path>]
//! [slices]` — `--json` writes every table produced to one JSON array.

use bench::report::{emit_json, take_json_flag, JsonValue};
use bench::Table;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use workloads::latency;
use workloads::loadgen::LoadPattern;

fn scenario(kind: &str, slices: usize) -> Scenario {
    let svc = latency::service_by_name("xapian").expect("xapian exists");
    let base = Scenario {
        duration_slices: slices,
        ..Scenario::paper_default()
    }
    .with_service(svc);
    match kind {
        // (a) diurnal load, constant 70% cap.
        "load" => Scenario {
            cap: LoadPattern::Constant(0.7),
            ..base
        }
        .with_load(LoadPattern::paper_diurnal()),
        // (b) constant 80% load, cap 90% -> 60% at t=0.3s -> 90% at t=0.7s.
        "power" => Scenario {
            cap: LoadPattern::Steps(vec![(0.0, 0.9), (0.3, 0.6), (0.7, 0.9)]),
            ..base
        }
        .with_load(LoadPattern::Constant(0.8)),
        // (c) load spike driving core relocation, constant 70% cap.
        "relocation" => Scenario {
            cap: LoadPattern::Constant(0.7),
            ..base
        }
        .with_load(LoadPattern::paper_spike()),
        other => panic!("unknown scenario {other} (use load|power|relocation)"),
    }
}

fn run(kind: &str, slices: usize) -> Table {
    let s = scenario(kind, slices);
    let mut manager = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut manager);

    let mut table = Table::new(
        &format!(
            "Fig. 8 ({kind}): xapian + mix 0, {} slices",
            s.duration_slices
        ),
        &[
            "t (s)",
            "load",
            "tail/QoS",
            "batch gmean (BIPS)",
            "power (W)",
            "budget (W)",
            "LC cores",
            "LC config",
        ],
    );
    for sl in &record.slices {
        let lc = sl.primary_lc();
        table.row(vec![
            format!("{:.1}", sl.t_s),
            format!("{:.0}%", lc.load * 100.0),
            format!("{:.2}", lc.tail_ms / lc.qos_ms),
            format!("{:.2}", sl.batch_gmean_bips),
            format!("{:.1}", sl.chip_watts),
            format!("{:.1}", sl.cap_watts),
            sl.lc_cores().to_string(),
            sl.lc_config().to_string(),
        ]);
    }
    table.print();
    println!(
        "QoS violations: {} / {}; power violations: {} / {}\n",
        record.qos_violations(),
        record.slices.len(),
        record.power_violations(),
        record.slices.len()
    );
    table
}

fn main() {
    let (json_path, args) = take_json_flag(std::env::args().skip(1).collect());
    let kind = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");
    let slices: usize = args.last().and_then(|a| a.parse().ok()).unwrap_or(10);
    let kinds: Vec<&str> = if kind == "all" {
        vec!["load", "power", "relocation"]
    } else {
        vec![kind]
    };
    let tables: Vec<JsonValue> = kinds.iter().map(|k| run(k, slices).to_json()).collect();
    if let Some(path) = json_path {
        emit_json(&path, &JsonValue::Arr(tables)).expect("write JSON report");
        println!("JSON report written to {}", path.display());
    }
}
