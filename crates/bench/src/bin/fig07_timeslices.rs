//! Fig. 7: instructions executed on all cores in each 0.1 s timeslice over
//! 1 s, with core-level gating, the oracle-like asymmetric multicore, and
//! CuttleSys, at a 70 % power cap.
//!
//! The paper's observation: gating zeroes entire cores, the asymmetric
//! multicore keeps all cores active but runs many jobs on small cores, and
//! CuttleSys keeps all cores active with parts of each core gated.
//!
//! Usage: `fig07_timeslices [cap_fraction]` (default 0.7).

use baselines::gating::GatingOrder;
use bench::{standard_scenario, Table};
use cuttlesys::managers::{AsymmetricManager, AsymmetricMode, CoreGatingManager};
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{RunRecord, Scenario};
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;
use workloads::latency;

fn main() {
    let cap: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.7);
    let svc = latency::service_by_name("xapian").expect("xapian exists");
    let scenario = standard_scenario(&svc, 0, cap);
    let fixed = Scenario {
        kind: CoreKind::Fixed,
        ..scenario.clone()
    };

    let gating = run_scenario(
        &fixed,
        &mut CoreGatingManager::new(&fixed, GatingOrder::DescendingPower, false),
    );
    let asym = run_scenario(
        &fixed,
        &mut AsymmetricManager::new(&fixed, AsymmetricMode::Oracle),
    );
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&scenario);
        run_scenario(&scenario, &mut m)
    };

    let mut table = Table::new(
        &format!(
            "Fig. 7: instructions per 0.1 s timeslice (billions), xapian + mix 0, {:.0}% cap",
            cap * 100.0
        ),
        &[
            "t (s)",
            "core-gating",
            "gated cores",
            "asymm oracle",
            "small cores",
            "cuttlesys",
            "narrow cores",
        ],
    );
    let giga = |x: f64| format!("{:.2}", x / 1e9);
    for i in 0..scenario.duration_slices {
        let g = &gating.slices[i];
        let a = &asym.slices[i];
        let c = &cuttle.slices[i];
        let gated = g.batch_configs.iter().filter(|c| c.is_none()).count();
        let small = a
            .batch_configs
            .iter()
            .flatten()
            .filter(|cfg| cfg.core == simulator::CoreConfig::narrowest())
            .count();
        let narrow = c
            .batch_configs
            .iter()
            .flatten()
            .filter(|cfg| cfg.core.total_lanes() < 18)
            .count();
        table.row(vec![
            format!("{:.1}", g.t_s),
            giga(g.total_instructions),
            gated.to_string(),
            giga(a.total_instructions),
            small.to_string(),
            giga(c.total_instructions),
            narrow.to_string(),
        ]);
    }
    table.print();

    let total = |r: &RunRecord| r.slices.iter().map(|s| s.total_instructions).sum::<f64>();
    println!(
        "Totals over 1 s: gating {:.2}e9, asymmetric {:.2}e9, cuttlesys {:.2}e9",
        total(&gating) / 1e9,
        total(&asym) / 1e9,
        total(&cuttle) / 1e9
    );
}
