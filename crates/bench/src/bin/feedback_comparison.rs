//! §IV claim: open-loop (CuttleSys) vs closed-loop (PID) power management.
//!
//! "CuttleSys is an open-loop solution, which searches the design space and
//! finds the best resource allocation in a single decision interval
//! compared to feedback-based controllers, which take significant time to
//! converge. This is especially beneficial for latency-critical
//! applications."
//!
//! Both schemes face the Fig. 8(b) cap steps (90% → 60% → 90%); we count
//! out-of-band timeslices (power above cap or more than 15% below it) and
//! batch throughput.

use bench::{standard_scenario, Table};
use cuttlesys::managers::FeedbackManager;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{RunRecord, Scenario};
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;
use workloads::latency;
use workloads::loadgen::LoadPattern;

fn out_of_band(r: &RunRecord) -> (usize, usize) {
    let over = r
        .slices
        .iter()
        .filter(|s| s.chip_watts > s.cap_watts * 1.02)
        .count();
    let under = r
        .slices
        .iter()
        .filter(|s| s.chip_watts < s.cap_watts * 0.85 && s.chip_watts <= s.cap_watts)
        .count();
    (over, under)
}

fn main() {
    let svc = latency::service_by_name("xapian").expect("xapian exists");
    let scenario = Scenario {
        cap: LoadPattern::Steps(vec![(0.0, 0.9), (0.3, 0.6), (0.7, 0.9)]),
        duration_slices: 10,
        ..standard_scenario(&svc, 0, 0.9)
    };
    let fixed = Scenario {
        kind: CoreKind::Fixed,
        ..scenario.clone()
    };

    let feedback = run_scenario(&fixed, &mut FeedbackManager::new(&fixed));
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&scenario);
        run_scenario(&scenario, &mut m)
    };

    let mut table = Table::new(
        "Open-loop vs closed-loop under cap steps 90% -> 60% -> 90%",
        &[
            "t (s)",
            "cap (W)",
            "PID power",
            "cuttlesys power",
            "PID batch",
            "cuttlesys batch",
        ],
    );
    for (f, c) in feedback.slices.iter().zip(&cuttle.slices) {
        table.row(vec![
            format!("{:.1}", f.t_s),
            format!("{:.1}", f.cap_watts),
            format!("{:.1}", f.chip_watts),
            format!("{:.1}", c.chip_watts),
            format!("{:.2}e9", f.batch_instructions / 1e9),
            format!("{:.2}e9", c.batch_instructions / 1e9),
        ]);
    }
    table.print();

    let (f_over, f_under) = out_of_band(&feedback);
    let (c_over, c_under) = out_of_band(&cuttle);
    println!(
        "out-of-band slices (>2% over cap / >15% unused headroom): PID {f_over}/{f_under}, \
         cuttlesys {c_over}/{c_under}"
    );
    println!(
        "batch instructions: PID {:.1}e9, cuttlesys {:.1}e9 ({:.2}x)",
        feedback.batch_instructions() / 1e9,
        cuttle.batch_instructions() / 1e9,
        cuttle.batch_instructions() / feedback.batch_instructions()
    );
    println!("Paper claim: the open-loop design re-solves within one decision interval;");
    println!("the feedback loop spends several intervals violating or wasting budget.");
}
