//! Fig. 10: DDS versus GA as the design-space exploration algorithm.
//!
//! * `--scatter` (Fig. 10a): both algorithms explore the same SGD-predicted
//!   space for one colocation; we report the Pareto frontier each finds in
//!   the (power, 1/throughput) plane and the best feasible point under the
//!   budget.
//! * `--sweep` (Fig. 10b): the full CuttleSys runtime with DDS vs with a
//!   budget-matched GA, across power caps; the paper reports up to 19 %
//!   higher throughput for DDS, with the gap shrinking at the 50 % cap.
//!
//! Usage: `fig10_dds_vs_ga [--scatter|--sweep|--both] [mixes_per_service]`

use baselines::ga::{ga_search, GaParams};
use bench::report::ratio;
use bench::{colocations, geo_mean, standard_scenario, Table, POWER_CAPS};
use cuttlesys::matrices::JobMatrices;
use cuttlesys::runtime::SearchAlgo;
use cuttlesys::testbed::run_scenario;
use cuttlesys::CuttleSysManager;
use dds::{parallel_search, ParallelDdsParams, SearchSpace, SoftPenalty};
use recsys::Reconstructor;
use simulator::power::CoreKind;
use simulator::{Chip, JobConfig, SystemParams, NUM_JOB_CONFIGS};
use workloads::batch;
use workloads::latency;
use workloads::oracle::Oracle;

/// Pareto-filter explored points in the (power, 1/throughput) plane (both
/// minimized).
fn pareto(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut front = Vec::new();
    let mut best = f64::INFINITY;
    for (power, inv_tput) in sorted {
        if inv_tput < best {
            best = inv_tput;
            front.push((power, inv_tput));
        }
    }
    front
}

fn scatter() {
    // Build SGD predictions for one colocation, as the runtime would.
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();
    let mix = batch::mix(16, 0xC0FFEE);
    let mut matrices = JobMatrices::new(oracle, &training, 1, 16);
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    for (j, app) in mix.apps.iter().enumerate() {
        let b = oracle.bips_row(&app.profile);
        let w = oracle.power_row(&app.profile);
        matrices.record_sample(1 + j, hi, b[hi], w[hi]);
        matrices.record_sample(1 + j, lo, b[lo], w[lo]);
    }
    let preds = matrices.reconstruct(&Reconstructor::default(), &[0.8]);

    let svc = latency::service_by_name("xapian").expect("xapian exists");
    let scenario = standard_scenario(&svc, 0, 0.7);
    let budget = 0.7 * scenario.nominal_budget_watts();
    let lc_power = 16.0 * 2.0; // representative pinned LC power
    let bips = preds.batch_bips.clone();
    let watts = preds.batch_watts.clone();
    let objective = SoftPenalty {
        benefit: |x: &[usize]| {
            let log_sum: f64 = x
                .iter()
                .enumerate()
                .map(|(j, &c)| bips[j][c].max(1e-9).ln())
                .sum();
            (log_sum / 16.0).exp()
        },
        power: |x: &[usize]| {
            lc_power + x.iter().enumerate().map(|(j, &c)| watts[j][c]).sum::<f64>()
        },
        cache_ways: |x: &[usize]| {
            2.0 + x
                .iter()
                .map(|&c| JobConfig::from_index(c).cache.ways())
                .sum::<f64>()
        },
        max_power: budget,
        max_ways: 32.0,
        penalty_power: 2.0,
        penalty_cache: 2.0,
    };

    let space = SearchSpace::new(16, NUM_JOB_CONFIGS);
    let dds_result = parallel_search(
        &space,
        &objective,
        &ParallelDdsParams {
            record_explored: true,
            ..Default::default()
        },
    );
    // Budgets are matched by *time*, as in the paper: parallel DDS spreads
    // its candidate evaluations across the chip's cores, while the
    // generational GA is sequential (each generation depends on the last),
    // so in the same couple of milliseconds it completes roughly
    // 1/threads as many evaluations.
    let ga_budget = dds_result.evaluations / ParallelDdsParams::default().threads;
    let ga_result = ga_search(
        &space,
        &objective,
        &GaParams {
            record_explored: true,
            ..GaParams::default().with_evaluation_budget(ga_budget)
        },
    );

    let to_plane = |explored: &[(Vec<usize>, f64)]| -> Vec<(f64, f64)> {
        explored
            .iter()
            .map(|(x, _)| {
                let p = lc_power + x.iter().enumerate().map(|(j, &c)| watts[j][c]).sum::<f64>();
                let log_sum: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| bips[j][c].max(1e-9).ln())
                    .sum();
                (p, 1.0 / (log_sum / 16.0).exp())
            })
            .collect()
    };
    let dds_front = pareto(&to_plane(&dds_result.explored));
    let ga_front = pareto(&to_plane(&ga_result.explored));

    let mut table = Table::new(
        "Fig. 10(a): exploration quality in the (power, 1/throughput) plane",
        &[
            "algorithm",
            "evaluations",
            "pareto points",
            "best objective",
            "best under budget",
        ],
    );
    let best_feasible = |points: &[(f64, f64)]| -> String {
        points
            .iter()
            .filter(|(p, _)| *p <= budget)
            .map(|(_, it)| 1.0 / it)
            .fold(f64::NEG_INFINITY, f64::max)
            .to_string()
            .chars()
            .take(6)
            .collect()
    };
    table.row(vec![
        "parallel DDS".into(),
        dds_result.evaluations.to_string(),
        dds_front.len().to_string(),
        format!("{:.4}", dds_result.best_value),
        best_feasible(&to_plane(&dds_result.explored)),
    ]);
    table.row(vec![
        "GA (budget-matched)".into(),
        ga_result.evaluations.to_string(),
        ga_front.len().to_string(),
        format!("{:.4}", ga_result.best_value),
        best_feasible(&to_plane(&ga_result.explored)),
    ]);
    table.print();
    println!("Pareto frontier found by DDS (power W, 1/gmean-BIPS), budget {budget:.1} W:");
    for (p, it) in dds_front.iter().take(12) {
        println!("  {p:7.1}  {it:.4}");
    }
    println!("Pareto frontier found by GA:");
    for (p, it) in ga_front.iter().take(12) {
        println!("  {p:7.1}  {it:.4}");
    }
    println!();
}

fn sweep(mixes: u64) {
    let mut table = Table::new(
        "Fig. 10(b): relative batch throughput, SGD-DDS vs SGD-GA, across power caps",
        &["cap", "SGD-GA", "SGD-DDS", "DDS/GA"],
    );
    for cap in POWER_CAPS {
        let mut dds_g = Vec::new();
        let mut ga_g = Vec::new();
        for (svc, mix) in colocations(mixes) {
            let scenario = standard_scenario(&svc, mix, cap);
            let dds_run = {
                let mut m = CuttleSysManager::for_scenario(&scenario);
                run_scenario(&scenario, &mut m)
            };
            // Match the GA's budget by wall-clock, as the paper does: the
            // sequential GA completes ~1/threads of parallel DDS's
            // (50 + 40 iters x 10 points x 8 threads) evaluations in the
            // same time.
            let ga_budget = (50 + 40 * 10 * 8) / 8;
            let ga_run = {
                let mut m = CuttleSysManager::for_scenario(&scenario).with_search(SearchAlgo::Ga(
                    GaParams::default().with_evaluation_budget(ga_budget),
                ));
                run_scenario(&scenario, &mut m)
            };
            let steady_gmean = |r: &cuttlesys::types::RunRecord| {
                let g: Vec<f64> = r
                    .slices
                    .iter()
                    .skip(1)
                    .map(|s| s.batch_gmean_bips.max(1e-9))
                    .collect();
                geo_mean(&g)
            };
            dds_g.push(steady_gmean(&dds_run));
            ga_g.push(steady_gmean(&ga_run));
        }
        let dds_mean = geo_mean(&dds_g);
        let ga_mean = geo_mean(&ga_g);
        table.row(vec![
            format!("{:.0}%", cap * 100.0),
            format!("{ga_mean:.3}"),
            format!("{dds_mean:.3}"),
            ratio(dds_mean / ga_mean),
        ]);
    }
    table.print();
    println!("Paper shape: DDS up to ~1.19x, gap smallest at the 50% cap.");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("--both");
    let mixes: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1);
    if mode == "--scatter" || mode == "--both" {
        scatter();
    }
    if mode == "--sweep" || mode == "--both" {
        sweep(mixes);
    }
}
