//! Coordinator-overhead bench for the cluster control plane.
//!
//! The [`ClusterCoordinator`] wraps N per-node control cores in lockstep
//! quanta: completing due migrations, draining per-node events into the
//! cluster queue, and running the balance policy are all serial
//! cross-node work layered on top of the per-node quanta. None of that is
//! allowed to cost real time against the fleet: the acceptance gate is
//! that one coordinator quantum costs **< 10 %** more wall time than the
//! sum of the same N node quanta stepped bare (no coordinator).
//!
//! Both paths step the identical per-node scenarios (the coordinator path
//! is bit-identical to the bare path by the determinism tests); the only
//! difference is the cross-node plumbing, so the per-quantum delta *is*
//! the coordinator overhead. Each path runs `--reps` times and the
//! fastest run is compared — the minimum is the standard estimator for
//! plumbing cost because slower repetitions measure scheduler noise.
//!
//! A third, informational profile crashes one node mid-run and reports
//! the per-quantum cost with detection and evacuation included
//! (`faulted.*` in the JSON report). The gate does not apply to it — a
//! real failure is allowed to cost real work — but the number keeps
//! evacuation from silently regressing into something quadratic.
//!
//! Usage: `cluster_loop [--nodes N] [--slices N] [--reps N] [--json [path]] [--check]`
//!
//! * `--nodes N`  — fleet size (default 8).
//! * `--slices N` — quanta per run (default 10).
//! * `--reps N`   — repetitions per path, fastest wins (default 3).
//! * `--json [path]` — write the report (default
//!   `BENCH_cluster_loop.json`), flat `metrics` object as in the other
//!   bench bins.
//! * `--check` — exit non-zero when the overhead gate fails.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use bench::report::{emit_json, JsonValue};
use bench::Table;
use cluster::{
    BalanceConfig, ClusterConfig, ClusterCoordinator, ClusterScenario, FleetFaultPlan, NodeId,
};
use cuttlesys::control::ControlCore;
use cuttlesys::types::Scenario;
use workloads::loadgen::LoadPattern;

/// The acceptance gate: coordinator overhead per quantum, as a fraction
/// of the summed bare node quanta.
const OVERHEAD_GATE: f64 = 0.10;

fn base_scenario(slices: usize) -> Scenario {
    Scenario {
        cap: LoadPattern::Constant(0.7),
        duration_slices: slices,
        noise: 0.0,
        phases: false,
        ..Scenario::paper_default()
    }
    .with_load(LoadPattern::Constant(0.8))
}

/// Wall time for the bare fleet: N independent control cores stepped
/// serially, events drained — everything the coordinator does per node,
/// minus the coordinator.
fn bare_run_ms(scenario: &ClusterScenario) -> f64 {
    let mut cores: Vec<ControlCore> = scenario
        .nodes
        .iter()
        .enumerate()
        .map(|(i, s)| ControlCore::on_node(s, NodeId::from_index(i)))
        .collect();
    let slices = scenario.nodes[0].duration_slices;
    let start = Instant::now();
    for _ in 0..slices {
        for core in cores.iter_mut() {
            core.step_quantum().expect("bare quantum");
            let _ = core.drain_events();
        }
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Wall time for the same quanta under the coordinator: lockstep serial
/// stepping plus the cross-node phases (migration completion, event
/// drain into the cluster queue, traffic balancing).
fn coordinator_run_ms(scenario: &ClusterScenario) -> f64 {
    let config = ClusterConfig {
        balance: Some(BalanceConfig::default()),
        ..ClusterConfig::default()
    };
    let mut coordinator = ClusterCoordinator::with_config(scenario, config);
    let slices = scenario.nodes[0].duration_slices;
    let start = Instant::now();
    for _ in 0..slices {
        coordinator.step_quantum().expect("cluster quantum");
        let _ = coordinator.drain_events();
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Wall time for the same quanta with one node crashing mid-run: the
/// coordinator pays health tracking, detection, and evacuation on top of
/// the clean cross-node plumbing. Reported for visibility (the < 10 %
/// acceptance gate applies to the clean profile only — a real failure is
/// allowed to cost real work), along with the evacuations performed so
/// the number being measured is visible in the report.
fn faulted_run_ms(scenario: &ClusterScenario) -> (f64, usize) {
    let config = ClusterConfig {
        balance: Some(BalanceConfig::default()),
        ..ClusterConfig::default()
    };
    let slices = scenario.nodes[0].duration_slices;
    let victim = NodeId::from_index(scenario.nodes.len() - 1);
    let plan = FleetFaultPlan::none().with_crash(victim, slices / 2);
    let mut coordinator = ClusterCoordinator::with_faults(scenario, config, plan);
    let start = Instant::now();
    for _ in 0..slices {
        coordinator.step_quantum().expect("faulted quantum");
        let _ = coordinator.drain_events();
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    (elapsed, coordinator.evacuations_total())
}

fn fastest(reps: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| run()).fold(f64::INFINITY, f64::min)
}

struct CliArgs {
    nodes: usize,
    slices: usize,
    reps: usize,
    json: Option<PathBuf>,
    check: bool,
}

fn parse_args() -> CliArgs {
    let mut args = CliArgs {
        nodes: 8,
        slices: 10,
        reps: 3,
        json: None,
        check: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                args.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--nodes takes a positive integer");
            }
            "--slices" => {
                args.slices = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slices takes a positive integer");
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--json" => {
                let path = match it.peek() {
                    Some(p) if !p.starts_with("--") => PathBuf::from(it.next().expect("peeked")),
                    _ => PathBuf::from("BENCH_cluster_loop.json"),
                };
                args.json = Some(path);
            }
            "--check" => args.check = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    assert!(args.nodes >= 1, "need at least 1 node");
    assert!(args.slices >= 2, "need at least 2 slices");
    assert!(args.reps >= 1, "need at least 1 rep");
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let scenario = ClusterScenario::uniform(&base_scenario(args.slices), args.nodes);

    // Interleave one warmup of each path so neither pays first-touch costs.
    let _ = bare_run_ms(&scenario);
    let _ = coordinator_run_ms(&scenario);

    let bare_ms = fastest(args.reps, || bare_run_ms(&scenario));
    let coordinator_ms = fastest(args.reps, || coordinator_run_ms(&scenario));
    let mut evacuations = 0usize;
    let faulted_ms = fastest(args.reps, || {
        let (ms, evs) = faulted_run_ms(&scenario);
        evacuations = evs;
        ms
    });
    let bare_per_quantum = bare_ms / args.slices as f64;
    let coordinator_per_quantum = coordinator_ms / args.slices as f64;
    let faulted_per_quantum = faulted_ms / args.slices as f64;
    let overhead = coordinator_per_quantum / bare_per_quantum - 1.0;
    let faulted_overhead = faulted_per_quantum / bare_per_quantum - 1.0;

    let mut table = Table::new(
        &format!(
            "cluster_loop: {} nodes ({} quanta, best of {})",
            args.nodes, args.slices, args.reps
        ),
        &["path", "total ms", "per-quantum ms"],
    );
    table.row(vec![
        "bare node cores".into(),
        format!("{bare_ms:.2}"),
        format!("{bare_per_quantum:.3}"),
    ]);
    table.row(vec![
        "coordinator".into(),
        format!("{coordinator_ms:.2}"),
        format!("{coordinator_per_quantum:.3}"),
    ]);
    table.row(vec![
        format!("faulted ({evacuations} evacuations)"),
        format!("{faulted_ms:.2}"),
        format!("{faulted_per_quantum:.3}"),
    ]);
    table.print();
    println!(
        "coordinator overhead: {:+.2}% per quantum (gate: < {:.0}%); \
         with a mid-run node crash: {:+.2}% (informational)",
        100.0 * overhead,
        100.0 * OVERHEAD_GATE,
        100.0 * faulted_overhead
    );

    if let Some(path) = &args.json {
        let doc = JsonValue::Obj(vec![
            ("bench".into(), JsonValue::Str("cluster_loop".into())),
            ("nodes".into(), JsonValue::Num(args.nodes as f64)),
            ("slices".into(), JsonValue::Num(args.slices as f64)),
            ("reps".into(), JsonValue::Num(args.reps as f64)),
            (
                "metrics".into(),
                JsonValue::Obj(vec![
                    (
                        "bare.per_quantum_ms".into(),
                        JsonValue::Num(bare_per_quantum),
                    ),
                    (
                        "coordinator.per_quantum_ms".into(),
                        JsonValue::Num(coordinator_per_quantum),
                    ),
                    ("coordinator.overhead".into(), JsonValue::Num(overhead)),
                    (
                        "faulted.per_quantum_ms".into(),
                        JsonValue::Num(faulted_per_quantum),
                    ),
                    ("faulted.overhead".into(), JsonValue::Num(faulted_overhead)),
                    (
                        "faulted.evacuations".into(),
                        JsonValue::Num(evacuations as f64),
                    ),
                ]),
            ),
            ("tables".into(), JsonValue::Arr(vec![table.to_json()])),
        ]);
        emit_json(path, &doc).expect("write JSON report");
        println!("JSON report written to {}", path.display());
    }

    if args.check && overhead >= OVERHEAD_GATE {
        println!(
            "GATE FAILED: coordinator overhead {:.2}% >= {:.0}%",
            100.0 * overhead,
            100.0 * OVERHEAD_GATE
        );
        return ExitCode::FAILURE;
    }
    if args.check {
        println!("check passed: coordinator overhead within the gate");
    }
    ExitCode::SUCCESS
}
