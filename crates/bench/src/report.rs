//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints the same rows/series the paper's table or
//! figure reports; a fixed-width text table keeps the output diffable and
//! easy to transcribe into EXPERIMENTS.md.

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a row of mixed displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Table {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 significant-ish decimals.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["scheme", "value"]);
        t.row(vec!["cuttlesys".into(), "1.00".into()]);
        t.row(vec!["ga".into(), "0.85".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("cuttlesys"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(ratio(2.456), "2.46x");
    }
}
