//! Plain-text table rendering and JSON emission for experiment output.
//!
//! Every experiment binary prints the same rows/series the paper's table or
//! figure reports; a fixed-width text table keeps the output diffable and
//! easy to transcribe into EXPERIMENTS.md. Binaries that accept a
//! `--json <path>` flag additionally write the same tables as a JSON
//! document via [`emit_json`] so plots can be regenerated without scraping
//! text. The JSON writer is hand-rolled: the workspace's vendored `serde`
//! is a stub, so nothing here derives serialization. [`JsonValue`] and
//! [`emit_json`] now live in the shared `util` crate (the core crate's run
//! snapshots and the control-plane service use the same conventions); they
//! are re-exported here so the experiment binaries keep their imports.

pub use util::json::{emit_json, JsonValue};

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a row of mixed displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Table {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table as a JSON object `{title, headers, rows}`.
    ///
    /// Cells that parse as finite numbers become JSON numbers so downstream
    /// plotting scripts need no string munging; everything else (names,
    /// `2.46x` ratios, `70%` caps) stays a string.
    pub fn to_json(&self) -> JsonValue {
        let cell = |c: &String| match c.parse::<f64>() {
            Ok(v) if v.is_finite() => JsonValue::Num(v),
            _ => JsonValue::Str(c.clone()),
        };
        JsonValue::Obj(vec![
            ("title".into(), JsonValue::Str(self.title.clone())),
            (
                "headers".into(),
                JsonValue::Arr(
                    self.headers
                        .iter()
                        .map(|h| JsonValue::Str(h.clone()))
                        .collect(),
                ),
            ),
            (
                "rows".into(),
                JsonValue::Arr(
                    self.rows
                        .iter()
                        .map(|r| JsonValue::Arr(r.iter().map(cell).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Extracts the `--json <path>` flag from an argument list, returning the
/// path (if present) and the remaining arguments in order.
pub fn take_json_flag(args: Vec<String>) -> (Option<std::path::PathBuf>, Vec<String>) {
    let mut path = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            path = it.next().map(std::path::PathBuf::from);
        } else {
            rest.push(a);
        }
    }
    (path, rest)
}

/// Formats a float with 3 significant-ish decimals.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["scheme", "value"]);
        t.row(vec!["cuttlesys".into(), "1.00".into()]);
        t.row(vec!["ga".into(), "0.85".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("cuttlesys"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(ratio(2.456), "2.46x");
    }

    #[test]
    fn table_to_json_types_numeric_cells() {
        let mut t = Table::new("demo", &["scheme", "value"]);
        t.row(vec!["cuttlesys".into(), "1.25".into()]);
        let json = t.to_json().to_string();
        assert!(json.contains("\"rows\":[[\"cuttlesys\",1.25]]"), "{json}");
    }

    #[test]
    fn json_flag_extraction() {
        let (path, rest) = take_json_flag(vec![
            "2".into(),
            "--json".into(),
            "results/x.json".into(),
            "tail".into(),
        ]);
        assert_eq!(path.unwrap().to_str().unwrap(), "results/x.json");
        assert_eq!(rest, vec!["2".to_string(), "tail".to_string()]);
        let (none, rest) = take_json_flag(vec!["5".into()]);
        assert!(none.is_none());
        assert_eq!(rest, vec!["5".to_string()]);
    }
}
