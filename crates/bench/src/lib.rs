//! Experiment harness shared utilities.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index); this library holds the pieces they share:
//! standard scenario construction (the 50 service × mix co-locations of
//! §VII-A), plain-text table rendering, and summary statistics.

use cuttlesys::types::{Scenario, BATCH_JOBS};
use workloads::batch;
use workloads::latency::{self, LcService};
use workloads::loadgen::LoadPattern;

pub mod report;

pub use report::Table;

/// The power caps evaluated in Fig. 5(c) and Fig. 10(b), as fractions of the
/// nominal budget.
pub const POWER_CAPS: [f64; 5] = [0.9, 0.8, 0.7, 0.6, 0.5];

/// Builds the paper's standard co-location: `service` at 80 % load with the
/// `mix_index`-th standard SPEC mix, under a constant cap.
pub fn standard_scenario(service: &LcService, mix_index: u64, cap: f64) -> Scenario {
    Scenario {
        cap: LoadPattern::Constant(cap),
        seed: 1000 + mix_index,
        ..Scenario::paper_default()
    }
    .with_service(*service)
    .with_load(LoadPattern::Constant(0.8))
    .with_mix(batch::mix(BATCH_JOBS, 0xC0FFEE + mix_index))
}

/// All (service, mix index) pairs of the 50-mix evaluation;
/// `mixes_per_service` trims the sweep for quick runs.
pub fn colocations(mixes_per_service: u64) -> Vec<(LcService, u64)> {
    latency::services()
        .into_iter()
        .flat_map(|svc| (0..mixes_per_service).map(move |m| (svc, m)))
        .collect()
}

/// Geometric mean of a slice of positive values.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Percentile of a sample (nearest-rank), `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Box-plot style summary of signed percentage errors, as reported in
/// Fig. 5(a)/(b) and Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// 5th percentile (%).
    pub p5: f64,
    /// 25th percentile (%).
    pub p25: f64,
    /// Median (%).
    pub p50: f64,
    /// 75th percentile (%).
    pub p75: f64,
    /// 95th percentile (%).
    pub p95: f64,
}

impl ErrorSummary {
    /// Summarizes a sample of signed percentage errors.
    pub fn of(errors: &[f64]) -> ErrorSummary {
        ErrorSummary {
            p5: percentile(errors, 0.05),
            p25: percentile(errors, 0.25),
            p50: percentile(errors, 0.50),
            p75: percentile(errors, 0.75),
            p95: percentile(errors, 0.95),
        }
    }

    /// Formats as a compact row fragment.
    pub fn row(&self) -> Vec<String> {
        [self.p5, self.p25, self.p50, self.p75, self.p95]
            .iter()
            .map(|v| format!("{v:+.1}"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocations_cover_five_services() {
        let all = colocations(10);
        assert_eq!(all.len(), 50);
        let quick = colocations(2);
        assert_eq!(quick.len(), 10);
    }

    #[test]
    fn standard_scenarios_differ_by_mix() {
        let svc = latency::service_by_name("silo").unwrap();
        let a = standard_scenario(&svc, 0, 0.7);
        let b = standard_scenario(&svc, 1, 0.7);
        assert_ne!(a.batch_names(), b.batch_names());
        assert_eq!(a.primary_lc().service.name, "silo");
        assert_eq!(a.num_batch(), BATCH_JOBS);
    }

    #[test]
    fn stats_helpers() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.0);
        let s = ErrorSummary::of(&[-10.0, -5.0, 0.0, 5.0, 10.0]);
        assert_eq!(s.p50, 0.0);
        assert!(s.p5 <= s.p25 && s.p25 <= s.p50 && s.p50 <= s.p75 && s.p75 <= s.p95);
    }
}
