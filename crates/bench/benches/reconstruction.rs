//! Criterion benches for the reconstruction path (Table II's SGD row):
//! serial Alg. 1 vs the lock-free parallel SGD, and the full three-matrix
//! driver at the runtime's problem shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recsys::{hogwild, sgd, RatingMatrix, Reconstructor, SgdConfig, ValueTransform};

/// The runtime's throughput-matrix shape: 16 dense training rows plus 16
/// live rows with two observations each, over 108 configurations.
fn runtime_matrix() -> RatingMatrix {
    let mut m = RatingMatrix::new(32, 108);
    let truth = |r: usize, c: usize| {
        let app = 1.0 + 0.4 * (r as f64 * 0.7).sin();
        let cfg = 2.0 + (c as f64 * 0.21).cos();
        app * cfg + 0.1 * (r as f64 * 0.3).cos() * (c as f64 * 0.5).sin()
    };
    for r in 0..16 {
        for c in 0..108 {
            m.set(r, c, truth(r, c));
        }
    }
    for r in 16..32 {
        m.set(r, 107, truth(r, 107));
        m.set(r, 1, truth(r, 1));
    }
    m
}

fn bench_sgd(c: &mut Criterion) {
    let matrix = runtime_matrix();
    let config = SgdConfig {
        max_iters: 60,
        ..SgdConfig::default()
    };
    let mut group = c.benchmark_group("sgd");
    group.bench_function("serial_alg1", |b| b.iter(|| sgd::fit(&matrix, &config)));
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("hogwild", threads),
            &threads,
            |b, &threads| b.iter(|| hogwild::fit_parallel(&matrix, &config, threads)),
        );
    }
    group.finish();
}

fn bench_three_matrix_driver(c: &mut Criterion) {
    let matrix = runtime_matrix();
    let rec = Reconstructor::new(SgdConfig {
        max_iters: 60,
        ..SgdConfig::default()
    });
    c.bench_function("complete_all_3_matrices", |b| {
        b.iter(|| {
            rec.complete_all(&[
                (&matrix, ValueTransform::Log),
                (&matrix, ValueTransform::Log),
                (&matrix, ValueTransform::Log),
            ])
        })
    });
}

criterion_group!(benches, bench_sgd, bench_three_matrix_driver);
criterion_main!(benches);
