//! Criterion bench for a complete CuttleSys decision interval (profile →
//! reconstruct → pin → DDS → repair) and a full one-second scenario, the
//! unit of every evaluation experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;

fn bench_timeslice(c: &mut Criterion) {
    c.bench_function("cuttlesys_one_timeslice", |b| {
        b.iter(|| {
            let scenario = Scenario {
                duration_slices: 1,
                noise: 0.0,
                phases: false,
                ..Scenario::paper_default()
            };
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        })
    });
}

fn bench_one_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_1s");
    group.sample_size(10);
    group.bench_function("cuttlesys_10_slices", |b| {
        b.iter(|| {
            let scenario = Scenario {
                noise: 0.0,
                phases: false,
                ..Scenario::paper_default()
            };
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_timeslice, bench_one_second);
criterion_main!(benches);
