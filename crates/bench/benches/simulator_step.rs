//! Criterion benches for the simulator substrate: a full 32-core frame, the
//! oracle's exhaustive 108-configuration rows, and the analytic queueing
//! tail.

use criterion::{criterion_group, criterion_main, Criterion};
use simulator::power::CoreKind;
use simulator::{
    AppProfile, CacheAlloc, Chip, CoreConfig, CoreState, JobId, LlcPartition, SystemParams,
};
use workloads::latency;
use workloads::oracle::Oracle;
use workloads::queueing::MmcQueue;

fn bench_frame(c: &mut Criterion) {
    let chip = Chip::new(SystemParams::default(), CoreKind::Reconfigurable);
    let profiles: Vec<AppProfile> = (0..17)
        .map(|i| {
            let mut p = AppProfile::balanced();
            p.ilp = 1.5 + 0.1 * i as f64;
            p
        })
        .collect();
    let partition: LlcPartition = (0..17).map(|j| (JobId(j), CacheAlloc::One)).collect();
    let mut cores: Vec<CoreState> = (0..16)
        .map(|_| CoreState::Active {
            job: JobId(0),
            config: CoreConfig::widest(),
        })
        .collect();
    for j in 1..17 {
        cores.push(CoreState::Active {
            job: JobId(j),
            config: CoreConfig::narrowest(),
        });
    }
    c.bench_function("chip_frame_32_cores", |b| {
        b.iter(|| chip.simulate_frame(&cores, &profiles, &partition, 100.0))
    });
}

fn bench_oracle_rows(c: &mut Criterion) {
    let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
    let app = AppProfile::memory_bound();
    let svc = latency::service_by_name("xapian").expect("xapian exists");
    let mut group = c.benchmark_group("oracle");
    group.bench_function("bips_row_108", |b| b.iter(|| oracle.bips_row(&app)));
    group.bench_function("power_row_108", |b| b.iter(|| oracle.power_row(&app)));
    group.bench_function("tail_row_108", |b| {
        b.iter(|| oracle.tail_row(&svc, 16, 0.8))
    });
    group.finish();
}

fn bench_queueing(c: &mut Criterion) {
    let queue = MmcQueue::new(16, 1.7, 17.6);
    c.bench_function("mmc_p99", |b| b.iter(|| queue.p99_ms()));
}

criterion_group!(benches, bench_frame, bench_oracle_rows, bench_queueing);
criterion_main!(benches);
