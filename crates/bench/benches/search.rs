//! Criterion benches for the design-space exploration path (Table II's DDS
//! row): serial DDS, the paper's parallel DDS, and the budget-matched GA on
//! the runtime's 16-job × 108-configuration problem.

use baselines::ga::{ga_search, GaParams};
use criterion::{criterion_group, criterion_main, Criterion};
use dds::{parallel_search, serial, ParallelDdsParams, SearchSpace};

/// A realistically-shaped objective: concave per-job benefit with a soft
/// power penalty.
fn objective(x: &[usize]) -> f64 {
    let benefit: f64 = x.iter().map(|&c| ((c % 27 + 1) as f64).ln()).sum();
    let power: f64 = x.iter().map(|&c| 1.0 + 0.05 * c as f64).sum();
    benefit - 2.0 * (power - 60.0).max(0.0)
}

fn bench_search(c: &mut Criterion) {
    let space = SearchSpace::new(16, 108);
    let mut group = c.benchmark_group("search");
    group.bench_function("serial_dds_450_evals", |b| {
        b.iter(|| {
            serial::search(
                &space,
                &objective,
                &serial::DdsParams {
                    max_iters: 400,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("parallel_dds_fig6", |b| {
        b.iter(|| parallel_search(&space, &objective, &ParallelDdsParams::default()))
    });
    group.bench_function("ga_time_matched", |b| {
        b.iter(|| {
            ga_search(
                &space,
                &objective,
                &GaParams::default().with_evaluation_budget(450),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
