//! Fixture-driven tests for the invariant linter.
//!
//! Each file under `tests/fixtures/bad/` is a known-bad snippet that must
//! be flagged with the right rule id at the right span; each file under
//! `tests/fixtures/good/` must lint clean under the virtual path named in
//! its header. The fixtures double as executable documentation of every
//! rule's scope (see DESIGN.md §8).

use std::path::PathBuf;
use xtask::report::Report;
use xtask::rules::{lint_source, Diagnostic};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// `(rule, line, col)` triples, sorted as the linter reports them.
fn spans(virtual_path: &str, fixture_name: &str) -> Vec<(&'static str, usize, usize)> {
    lint_source(virtual_path, &fixture(fixture_name))
        .into_iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect()
}

#[test]
fn bad_hash_iter_is_flagged_at_exact_spans() {
    assert_eq!(
        spans("crates/core/src/fixture.rs", "bad/det_hash_iter.rs"),
        vec![
            ("DET-HASH-ITER", 8, 26),
            ("DET-HASH-ITER", 9, 18),
            ("DET-HASH-ITER", 9, 40),
            ("DET-HASH-ITER", 14, 17),
        ]
    );
}

#[test]
fn bad_wallclock_flags_reads_not_types() {
    let hits = spans("crates/core/src/fixture.rs", "bad/det_wallclock.rs");
    assert_eq!(hits.len(), 2, "exactly the two clock reads: {hits:?}");
    assert!(hits.iter().all(|h| h.0 == "DET-WALLCLOCK"));
    // The `deadline: Instant` parameter on line 7 must not be among them.
    assert!(
        hits.iter().all(|h| h.1 != 7),
        "type mention flagged: {hits:?}"
    );
}

#[test]
fn bad_raw_spawn_flags_thread_and_crossbeam() {
    let hits = spans("crates/workloads/src/fixture.rs", "bad/det_raw_spawn.rs");
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    assert_eq!(rules, vec!["DET-RAW-SPAWN", "DET-RAW-SPAWN"], "{hits:?}");
}

#[test]
fn bad_rng_flags_ambient_entropy_even_in_bench() {
    let hits = spans("crates/bench/src/fixture.rs", "bad/det_rng.rs");
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    assert_eq!(rules, vec!["DET-RNG", "DET-RNG"], "{hits:?}");
}

#[test]
fn bad_float_reduce_flags_mutex_and_fetch_accumulators() {
    let hits = spans("crates/dds/src/fixture.rs", "bad/det_float_reduce.rs");
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    assert_eq!(
        rules,
        vec!["DET-FLOAT-REDUCE", "DET-FLOAT-REDUCE"],
        "{hits:?}"
    );
}

#[test]
fn bad_panic_policy_flags_bare_unwrap_and_expect_only() {
    let hits = spans("crates/simulator/src/fixture.rs", "bad/panic_policy.rs");
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    assert_eq!(rules, vec!["PANIC-POLICY", "PANIC-POLICY"], "{hits:?}");
    // unwrap_or on line 8 stays clean.
    assert!(hits.iter().all(|h| h.1 != 8), "{hits:?}");
}

#[test]
fn bad_allow_hygiene_reports_and_does_not_suppress() {
    let hits = spans("crates/core/src/fixture.rs", "bad/allow_hygiene.rs");
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    assert!(rules.contains(&"LINT-ALLOW-REASON"), "{hits:?}");
    assert!(rules.contains(&"LINT-UNKNOWN-RULE"), "{hits:?}");
    assert!(
        rules.contains(&"DET-HASH-ITER"),
        "a reason-less allow must not suppress: {hits:?}"
    );
}

#[test]
fn bad_service_boundary_is_confined_to_the_table_rows() {
    // A service file NOT named in the allowed-paths table obeys both rules.
    let hits = spans("crates/service/src/fixture.rs", "bad/service_boundary.rs");
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    assert_eq!(rules, vec!["DET-WALLCLOCK", "DET-RAW-SPAWN"], "{hits:?}");
}

#[test]
fn bad_cluster_boundary_is_decision_path_gated() {
    // The new cluster crate is in DECISION_PATH_CRATES and on no
    // allowed-paths row: every rule fires there like in core.
    let hits = spans("crates/cluster/src/fixture.rs", "bad/cluster_boundary.rs");
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    for expect in [
        "DET-HASH-ITER",
        "DET-WALLCLOCK",
        "DET-RAW-SPAWN",
        "PANIC-POLICY",
    ] {
        assert!(rules.contains(&expect), "missing {expect}: {hits:?}");
    }
    // The same snippet outside the decision path only keeps the
    // workspace-wide rules (clock + spawn).
    let outside = spans("crates/workloads/src/fixture.rs", "bad/cluster_boundary.rs");
    let outside_rules: Vec<&str> = outside.iter().map(|h| h.0).collect();
    assert_eq!(
        outside_rules,
        vec!["DET-WALLCLOCK", "DET-RAW-SPAWN"],
        "{outside:?}"
    );
}

#[test]
fn bad_health_detector_wallclock_is_flagged() {
    // A heartbeat detector timed off the wall clock in the cluster's
    // health module: both clock reads fire, nothing else does (the
    // `last_heartbeat: Instant` field and the `unwrap_or` stay clean).
    let hits = spans(
        "crates/cluster/src/health.rs",
        "bad/cluster_health_wallclock.rs",
    );
    let rules: Vec<&str> = hits.iter().map(|h| h.0).collect();
    assert_eq!(rules, vec!["DET-WALLCLOCK", "DET-WALLCLOCK"], "{hits:?}");
}

#[test]
fn sweep_wallclock_boundary_stops_at_the_cli() {
    // The sweep CLI may time its run for the console footer…
    let cli = spans("crates/sweep/src/bin/sweep.rs", "good/sweep_cli.rs");
    assert!(cli.is_empty(), "the sweep CLI is on the allowlist: {cli:?}");
    // …but the sweep library — whose output is the byte-stable
    // summary.json — must stay clock-free.
    let lib = spans("crates/sweep/src/runner.rs", "good/sweep_cli.rs");
    let rules: Vec<&str> = lib.iter().map(|h| h.0).collect();
    assert_eq!(rules, vec!["DET-WALLCLOCK"], "{lib:?}");
}

#[test]
fn good_fixtures_lint_clean() {
    for (virtual_path, name) in [
        ("crates/core/src/fixture.rs", "good/annotated.rs"),
        ("crates/dds/src/fixture.rs", "good/exempt_contexts.rs"),
        ("crates/workloads/src/fixture.rs", "good/out_of_scope.rs"),
        ("crates/service/src/pacing.rs", "good/service_pacing.rs"),
        ("crates/service/src/reactor.rs", "good/service_reactor.rs"),
        (
            "crates/cluster/src/fixture.rs",
            "good/cluster_coordinator.rs",
        ),
        ("crates/cluster/src/health.rs", "good/cluster_health.rs"),
    ] {
        let hits = spans(virtual_path, name);
        assert!(hits.is_empty(), "{name} as {virtual_path}: {hits:?}");
    }
}

#[test]
fn the_linter_is_clean_on_its_own_workspace() {
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask sits at <workspace>/crates/xtask")
        .to_path_buf();
    let report = xtask::run_lint(&workspace, &xtask::default_roots()).expect("lint runs");
    assert!(report.checked_files > 50, "workspace walk found the crates");
    assert!(
        report.is_clean(),
        "workspace must lint clean:\n{}",
        report.render_text()
    );
}

// --- JSON report stability -------------------------------------------------

fn sample_report() -> Report {
    let mut report = Report {
        checked_files: 2,
        diagnostics: lint_source(
            "crates/core/src/fixture.rs",
            &fixture("bad/det_hash_iter.rs"),
        ),
        graph: Default::default(),
    };
    report.diagnostics.extend(lint_source(
        "crates/core/src/fixture.rs",
        &fixture("bad/det_wallclock.rs"),
    ));
    report.sort();
    report
}

#[test]
fn json_report_is_byte_stable() {
    assert_eq!(
        sample_report().render_json(),
        sample_report().render_json(),
        "same diagnostics must render byte-identical JSON"
    );
}

#[test]
fn json_report_is_well_formed_and_complete() {
    let report = sample_report();
    let json = report.render_json();
    check_json(&json);
    assert!(json.contains("\"version\": 2"));
    assert!(json.contains("\"graph\": {"), "v2 carries graph stats");
    assert!(json.contains("\"checked_files\": 2"));
    // Every diagnostic appears with its span.
    for d in &report.diagnostics {
        assert!(json.contains(&format!(
            "\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}",
            d.rule, d.file, d.line, d.col
        )));
    }
    // Counts cover every rule in the catalogue, zeroes included.
    for rule in xtask::rules::RULE_IDS {
        assert!(
            json.contains(&format!("\"{rule}\":")),
            "missing count for {rule}"
        );
    }
}

#[test]
fn json_escapes_hostile_content() {
    let mut report = Report::default();
    report.diagnostics.push(Diagnostic {
        rule: "DET-RNG",
        file: "crates/core/src/weird\"name.rs".into(),
        line: 1,
        col: 1,
        message: "quote \" backslash \\ newline \n tab \t".into(),
    });
    check_json(&report.render_json());
}

/// A minimal structural JSON validator: enough to prove the report is
/// parseable (balanced containers, quoted keys, escaped strings) without a
/// JSON dependency, which the offline container cannot add.
fn check_json(s: &str) {
    let mut stack = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => stack.push('}'),
            '[' => stack.push(']'),
            '}' | ']' => assert_eq!(stack.pop(), Some(c), "unbalanced at `{c}`"),
            '"' => {
                // Consume the string, honoring escapes; reject raw control chars.
                loop {
                    match chars.next() {
                        Some('\\') => {
                            let e = chars.next().expect("dangling escape");
                            assert!(
                                matches!(e, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' | 'u'),
                                "bad escape \\{e}"
                            );
                            if e == 'u' {
                                for _ in 0..4 {
                                    let h = chars.next().expect("short \\u escape");
                                    assert!(h.is_ascii_hexdigit(), "bad \\u digit {h}");
                                }
                            }
                        }
                        Some('"') => break,
                        Some(c) => assert!(
                            (c as u32) >= 0x20,
                            "raw control character {:#x} inside string",
                            c as u32
                        ),
                        None => panic!("unterminated string"),
                    }
                }
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed containers: {stack:?}");
}
