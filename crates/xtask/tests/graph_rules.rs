//! Fixture-driven tests for the item-graph rule families.
//!
//! The graph rules see what the per-file lexer cannot: the two-hop
//! taint fixture has no individually suspicious token, and the lock
//! cycle only exists across two functions. Bad fixtures assert exact
//! spans; good fixtures are near-identical twins that must stay clean,
//! pinning each rule's boundary from both sides.

use std::path::PathBuf;
use xtask::analysis::analyze_sources;
use xtask::graph::GraphStats;
use xtask::rules::Diagnostic;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn analyze(virtual_path: &str, fixture_name: &str) -> (Vec<Diagnostic>, GraphStats) {
    analyze_sources(&[(virtual_path, &fixture(fixture_name))])
}

fn spans(virtual_path: &str, fixture_name: &str) -> Vec<(&'static str, usize, usize)> {
    analyze(virtual_path, fixture_name)
        .0
        .into_iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect()
}

// --- DET-TAINT -------------------------------------------------------------

#[test]
fn two_hop_taint_is_connected_by_the_call_graph() {
    let (diags, stats) = analyze("crates/core/src/fixture.rs", "bad/taint_two_hop.rs");
    assert_eq!(
        diags
            .iter()
            .map(|d| (d.rule, d.line, d.col))
            .collect::<Vec<_>>(),
        vec![("DET-TAINT", 18, 19)],
        "{diags:?}"
    );
    // The message names the whole flow, sink first, so a reader can
    // judge it without rebuilding the graph by hand.
    assert!(
        diags[0]
            .message
            .contains("core::write_record -> core::gather -> core::snapshot"),
        "{}",
        diags[0].message
    );
    assert_eq!(
        (stats.taint_sources, stats.taint_sinks, stats.taint_paths),
        (1, 1, 1)
    );
}

#[test]
fn unreachable_source_is_not_taint() {
    let (diags, stats) = analyze("crates/core/src/fixture.rs", "good/taint_unreachable.rs");
    assert!(diags.is_empty(), "{diags:?}");
    // The source and sink both exist — there is just no path.
    assert_eq!(
        (stats.taint_sources, stats.taint_sinks, stats.taint_paths),
        (1, 1, 0)
    );
}

#[test]
fn a_reasoned_allow_at_the_source_suppresses_taint() {
    let with_allow = fixture("bad/taint_two_hop.rs").replace(
        "        self.hits.load(Ordering::Relaxed)",
        "        // lint:allow(DET-TAINT, reason = \"diagnostic counter, \
         excluded from golden comparisons\")\n        \
         self.hits.load(Ordering::Relaxed)",
    );
    let (diags, _) = analyze_sources(&[("crates/core/src/fixture.rs", &with_allow)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// --- LOCK-ORDER ------------------------------------------------------------

#[test]
fn opposite_order_acquisition_is_a_cycle() {
    let (diags, stats) = analyze("crates/core/src/fixture.rs", "bad/lock_cycle.rs");
    assert_eq!(diags.len(), 1, "one canonical cycle report: {diags:?}");
    assert_eq!(diags[0].rule, "LOCK-ORDER");
    assert!(
        diags[0].message.contains("core::a -> core::b -> core::a"),
        "{}",
        diags[0].message
    );
    assert_eq!(stats.lock_sites, 4);
    assert_eq!(stats.lock_edges, 2, "a->b from forward, b->a from backward");
}

#[test]
fn consistent_order_has_no_cycle() {
    let (diags, stats) = analyze("crates/core/src/fixture.rs", "good/lock_one_direction.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(stats.lock_sites, 4);
    assert_eq!(stats.lock_edges, 1, "both holders agree on a->b");
}

// --- ORD-TOTAL-FLOAT -------------------------------------------------------

#[test]
fn partial_cmp_comparators_are_flagged_at_exact_spans() {
    assert_eq!(
        spans("crates/dds/src/fixture.rs", "bad/ord_partial_cmp.rs"),
        vec![
            ("ORD-TOTAL-FLOAT", 6, 25),
            ("ORD-TOTAL-FLOAT", 11, 40),
        ]
    );
}

#[test]
fn total_cmp_is_clean_and_scope_stops_at_decision_crates() {
    let good = spans("crates/dds/src/fixture.rs", "good/ord_total_cmp.rs");
    assert!(good.is_empty(), "{good:?}");
    // The same partial_cmp code outside the decision path and the
    // bench/sweep reporting layers is out of scope.
    let outside = spans("crates/workloads/src/fixture.rs", "bad/ord_partial_cmp.rs");
    assert!(outside.is_empty(), "{outside:?}");
    // …but the bench/sweep reporting layers are in scope.
    let bench = spans("crates/bench/src/fixture.rs", "bad/ord_partial_cmp.rs");
    assert_eq!(bench.len(), 2, "{bench:?}");
}

// --- EVT-EXHAUSTIVE --------------------------------------------------------

#[test]
fn wildcard_arms_over_event_enums_are_flagged() {
    assert_eq!(
        spans("crates/service/src/fixture.rs", "bad/event_wildcard.rs"),
        vec![
            ("EVT-EXHAUSTIVE", 16, 13),
            ("EVT-EXHAUSTIVE", 23, 27),
        ]
    );
}

#[test]
fn exhaustive_matches_and_non_event_wildcards_are_clean() {
    let good = spans("crates/service/src/fixture.rs", "good/event_exhaustive.rs");
    assert!(good.is_empty(), "{good:?}");
    // Outside the service/sweep consumer crates the rule does not apply:
    // core may pattern-match its own events as it likes.
    let outside = spans("crates/core/src/fixture.rs", "bad/event_wildcard.rs");
    assert!(outside.is_empty(), "{outside:?}");
}

// --- the self-analyze gate -------------------------------------------------

#[test]
fn the_workspace_passes_its_own_graph_analysis() {
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask sits at <workspace>/crates/xtask")
        .to_path_buf();
    let report = xtask::run_analyze(&workspace, &xtask::default_roots()).expect("analyze runs");
    assert!(
        report.is_clean(),
        "graph analysis must pass on the workspace:\n{}",
        report.render_text()
    );
    // The graph statistics prove the analysis actually saw the workspace.
    assert!(report.graph.functions > 300, "{:?}", report.graph);
    assert!(report.graph.call_edges > 300, "{:?}", report.graph);
    assert!(report.graph.taint_sinks > 10, "{:?}", report.graph);
    assert!(report.graph.lock_sites > 10, "{:?}", report.graph);
    assert!(report.graph.schema_entries > 100, "{:?}", report.graph);
}
