//! Integration tests for the emitted-schema lock (`SCHEMA-LOCK`).
//!
//! Three properties:
//!
//! * *byte stability* — extraction is a pure function of the emitter
//!   sources, and the committed `schema.lock` matches it exactly;
//! * *drift detection* — renaming an emitted metric produces one
//!   diagnostic at the renamed literal (added) and one at the orphaned
//!   lock line (removed), in a toy workspace built on disk;
//! * *bootstrap* — a workspace with emitters but no lock fails with a
//!   single actionable diagnostic pointing at `schema.lock:1:1`.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask sits at <workspace>/crates/xtask")
        .to_path_buf()
}

#[test]
fn extraction_is_byte_stable_and_matches_the_committed_lock() {
    let ws = workspace_root();
    let a = xtask::schema::extract_workspace(&ws).expect("extracts");
    let b = xtask::schema::extract_workspace(&ws).expect("extracts");
    assert_eq!(
        xtask::schema::render_lock(&a),
        xtask::schema::render_lock(&b),
        "two extractions must render byte-identical lock text"
    );
    let committed =
        fs::read_to_string(ws.join(xtask::schema::LOCK_PATH)).expect("schema.lock is committed");
    assert_eq!(
        committed,
        xtask::schema::render_lock(&a),
        "schema.lock drifted; run `cargo xtask schema --write` and commit the diff"
    );
    let (diags, entries) = xtask::schema::check(&ws).expect("check runs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(entries, a.len());
    // The lock covers all three kinds — the contract is not vacuous.
    for kind in ["metric ", "label ", "json-key "] {
        assert!(
            committed.lines().any(|l| l.starts_with(kind)),
            "no {kind}entries in schema.lock"
        );
    }
}

/// Builds a minimal workspace with one metrics emitter file.
fn toy_workspace(dir: &Path, metric: &str) {
    let metrics_dir = dir.join("crates/service/src");
    fs::create_dir_all(&metrics_dir).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    fs::write(
        metrics_dir.join("metrics.rs"),
        format!(
            "pub fn render(out: &mut String) {{\n    \
             family(out, \"{metric}\", \"counter\", \"help\");\n    \
             sample(out, \"{metric}\", \"node=\\\"a\\\"\", 1.0);\n}}\n"
        ),
    )
    .expect("emitter");
}

#[test]
fn renaming_a_metric_is_reported_from_both_sides() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("schema_drift");
    let _ = fs::remove_dir_all(&dir);
    toy_workspace(&dir, "cuttlesys_widgets_total");
    let written = xtask::schema::write_lock(&dir).expect("write lock");
    assert_eq!(written, 2, "one metric + one label key");
    let (clean, _) = xtask::schema::check(&dir).expect("check runs");
    assert!(clean.is_empty(), "{clean:?}");

    // Rename the metric without regenerating the lock.
    toy_workspace(&dir, "cuttlesys_gadgets_total");
    let (diags, _) = xtask::schema::check(&dir).expect("check runs");
    let summary: Vec<(&str, &str, usize)> = diags
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    // Added name anchored at the literal in the emitter (line 2 of the
    // generated file); removed name anchored at its lock file line.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(summary[0], ("SCHEMA-LOCK", "crates/service/src/metrics.rs", 2));
    assert!(diags[0].message.contains("cuttlesys_gadgets_total"));
    assert_eq!(summary[1].1, "schema.lock");
    assert!(diags[1].message.contains("cuttlesys_widgets_total"));
}

#[test]
fn a_missing_lock_with_emitters_is_one_actionable_finding() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("schema_bootstrap");
    let _ = fs::remove_dir_all(&dir);
    toy_workspace(&dir, "cuttlesys_widgets_total");
    let (diags, entries) = xtask::schema::check(&dir).expect("check runs");
    assert_eq!(entries, 2);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(
        (diags[0].rule, diags[0].file.as_str(), diags[0].line, diags[0].col),
        ("SCHEMA-LOCK", "schema.lock", 1, 1)
    );
    assert!(diags[0].message.contains("schema --write"));
}

#[test]
fn a_workspace_with_no_emitters_needs_no_lock() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("schema_empty");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    let (diags, entries) = xtask::schema::check(&dir).expect("check runs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(entries, 0);
}
