// Fixture: scope boundaries. Linted as crates/workloads/src/fixture.rs —
// NOT a decision-path crate — so the decision-path-only rules
// (DET-HASH-ITER, DET-FLOAT-REDUCE, PANIC-POLICY) must stay quiet, while
// seeded randomness and pool-based fan-out are fine everywhere.

use std::collections::HashMap;

pub fn load_mix(spec: &str) -> HashMap<String, f64> {
    let mut mix = HashMap::new();
    for part in spec.split(',') {
        mix.insert(part.to_string(), 1.0);
    }
    mix
}

pub fn seeded_jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0.0..1.0)
}

pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}

pub fn first(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}
