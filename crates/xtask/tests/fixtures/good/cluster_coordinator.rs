// Fixture: the deterministic patterns the cluster crate is allowed to
// use. Linted as crates/cluster/src/fixture.rs — decision-path scope —
// this must be clean: ordered maps, a *borrowed* WorkerPool (no raw
// spawns), seeded streams, and Result-shaped fallibility.

use std::collections::BTreeMap;

pub fn deterministic_cross_node(pool: &util::WorkerPool, nodes: &mut [Node]) -> Option<usize> {
    // Ordered map: iteration order is the key order, not hasher state.
    let mut shares: BTreeMap<usize, f64> = BTreeMap::new();
    shares.insert(0, 1.0);
    // Fan-out borrows the shared pool; the pool owns the only threads.
    pool.scope(|scope| {
        for node in nodes.iter_mut() {
            scope.spawn(move || node.step());
        }
    });
    // Seeded, not ambient: per-node streams derive from the base seed.
    let salt = 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // Fallibility stays Result/Option-shaped; ties break on node id.
    shares.keys().next().copied().map(|id| id ^ salt as usize)
}
