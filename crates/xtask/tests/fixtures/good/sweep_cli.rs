// The sweep CLI's console footer: wall-clock timing that never reaches
// summary.json. Allowed only under crates/sweep/src/bin/.
use std::time::Instant;

fn timed_run(run: impl FnOnce()) -> f64 {
    let started = Instant::now();
    run();
    started.elapsed().as_secs_f64()
}
