// Fixture: contexts the rules must NOT reach — comments, string literals,
// cfg(test)/cfg(loom) items, and `use` declarations. Linted as
// crates/dds/src/fixture.rs; must be clean.

use std::collections::HashMap; // HashMap in a comment: HashMap::new()

pub const DOC: &str = "call HashMap::new() then Instant::now()";
pub const RAW: &str = r#"thread_rng() and std::thread::spawn"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_do_anything() {
        let m: HashMap<u32, u32> = HashMap::new();
        let t = std::time::Instant::now();
        let h = std::thread::spawn(move || m.len());
        h.join().unwrap();
        let _ = t.elapsed();
    }
}

#[cfg(loom)]
mod loom_model {
    pub fn model() {
        loom::thread::spawn(|| ()).join().unwrap();
    }
}
