// Fixture: the DET-WALLCLOCK row of the allowed-paths table names
// crates/service/src/pacing.rs — the one place live time enters the
// service. Linted under that virtual path, clock reads are clean.

use std::time::{Duration, Instant};

pub struct Deadline {
    at: Instant,
}

pub fn next_deadline(period: Duration) -> Deadline {
    Deadline {
        at: Instant::now() + period,
    }
}

pub fn overdue(d: &Deadline) -> bool {
    Instant::now() >= d.at
}
