// Fixture: every hazard below carries a reasoned allow (or the clippy
// documented-panic convention) and the file must lint clean when checked
// as crates/core/src/fixture.rs.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

pub struct Caches {
    // lint:allow(DET-HASH-ITER, reason = "keyed lookup only, never iterated")
    pub lookup: HashMap<u64, f64>,
    pub ordered: BTreeMap<u64, f64>,
}

pub fn timed_stage() -> f64 {
    // lint:allow(DET-WALLCLOCK, reason = "stage wall-time telemetry only")
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn fan_out() {
    // lint:allow(DET-RAW-SPAWN, reason = "reference back-end for cross-checks")
    std::thread::spawn(|| ()).join().ok();
}

#[allow(clippy::unwrap_used)] // Documented panic: fixture invariant.
pub fn documented(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn reasoned(y: Option<u32>) -> u32 {
    // lint:allow(PANIC-POLICY, reason = "caller checked is_some on the line above")
    y.unwrap()
}
