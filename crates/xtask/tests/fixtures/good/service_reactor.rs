// Fixture: the DET-RAW-SPAWN row of the allowed-paths table names
// crates/service/src/reactor.rs (and http.rs) — the service's two
// long-lived threads. Linted under the reactor's virtual path, spawning
// is clean.

pub fn start(run: impl FnOnce() + Send + 'static) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("reactor".into())
        .spawn(run)
        .unwrap_or_else(|e| panic!("spawn: {e}"))
}
