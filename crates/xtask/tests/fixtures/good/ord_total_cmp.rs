//! GOOD: the same sites with `f64::total_cmp`, which orders every bit
//! pattern (NaN included) the same way on every run.

pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}
