// Fixture: the deterministic shape of the health detector. Linted as
// crates/cluster/src/health.rs — decision-path scope — this must be
// clean: timeouts are counted in lockstep quanta (not wall time), state
// lives in plain enums, and backoff is integer arithmetic on quantum
// counts, so the same event log replays bit-for-bit at any pool width.

#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Health {
    Up,
    Suspect { missed: usize },
    Down,
}

pub struct QuantumDetector {
    state: Health,
    down_after: usize,
}

impl QuantumDetector {
    // One observation per lockstep quantum: the caller tells us whether
    // the heartbeat arrived; no clock is consulted anywhere.
    pub fn observe(&mut self, heartbeat: bool) -> Option<Health> {
        let next = match (self.state, heartbeat) {
            (Health::Up, false) => Health::Suspect { missed: 1 },
            (Health::Suspect { missed }, false) if missed + 1 >= self.down_after => Health::Down,
            (Health::Suspect { missed }, false) => Health::Suspect { missed: missed + 1 },
            (Health::Suspect { .. }, true) => Health::Up,
            (state, _) => state,
        };
        let changed = next != self.state;
        self.state = next;
        changed.then_some(next)
    }

    // Bounded exponential backoff in whole quanta: shift-and-clamp on
    // integers, deterministic for every (base, attempts) pair.
    pub fn retry_backoff(&self, base: usize, cap: usize, attempts: u32) -> usize {
        base.max(1)
            .saturating_mul(1usize << attempts.min(16))
            .min(cap.max(1))
    }
}
