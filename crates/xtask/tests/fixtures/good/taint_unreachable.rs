//! GOOD: the same racy read as `bad/taint_two_hop.rs`, but no call path
//! connects it to the record writer — diagnostic counters that stay out
//! of the recorded artifacts are fine without an allow.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Counter {
    hits: AtomicUsize,
}

impl Counter {
    pub fn snapshot(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

pub struct RunRecord {
    pub retries: usize,
}

pub fn write_record(retries: usize) -> RunRecord {
    RunRecord { retries }
}
