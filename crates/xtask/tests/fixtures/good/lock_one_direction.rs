//! GOOD: the same two locks, always acquired in the same order — a
//! consistent hierarchy has no cycle no matter how many holders nest.

use std::sync::Mutex;

pub fn sum(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

pub fn product(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga * *gb
}
