//! GOOD: every variant named — adding one breaks the build at this
//! consumer and forces a decision. Wildcards over non-event enums stay
//! out of the rule's scope.

pub enum ControlEvent {
    Lifecycle,
    Breaker,
    Shed,
}

pub fn count_breakers(events: &[ControlEvent]) -> usize {
    let mut n = 0;
    for e in events {
        match e {
            ControlEvent::Breaker => n += 1,
            ControlEvent::Lifecycle => {}
            ControlEvent::Shed => {}
        }
    }
    n
}

pub fn is_even(n: usize) -> bool {
    // A wildcard over a non-event scrutinee is fine.
    match n % 2 {
        0 => true,
        _ => false,
    }
}
