// Fixture: DET-RNG must fire on ambient-entropy randomness anywhere in the
// workspace (linted as crates/bench/src/fixture.rs — even bench code must
// seed explicitly or runs stop being comparable).

pub fn draws() -> (f64, u64) {
    let mut r = rand::thread_rng();
    let s = StdRng::from_entropy();
    (r.gen(), s.next_u64())
}
