//! BAD (LOCK-ORDER): two functions acquire the same two locks in
//! opposite orders — the textbook AB/BA deadlock, invisible to any
//! single-file scan of either function alone.

use std::sync::Mutex;

pub fn forward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

pub fn backward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    *ga + *gb
}
