// Fixture: a health detector that times heartbeats off the wall clock.
// Linted as crates/cluster/src/health.rs — decision-path scope — both
// clock reads must fire DET-WALLCLOCK: failure detection that depends on
// real elapsed time can never replay bit-for-bit, and a slow CI machine
// would declare healthy nodes dead.

use std::time::{Duration, Instant, SystemTime};

pub struct WallclockDetector {
    last_heartbeat: Instant,
    timeout: Duration,
}

impl WallclockDetector {
    pub fn is_down(&self) -> bool {
        let now = Instant::now();
        now.duration_since(self.last_heartbeat) > self.timeout
    }

    pub fn stamp(&mut self) -> u64 {
        let epoch = SystemTime::now();
        epoch
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}
