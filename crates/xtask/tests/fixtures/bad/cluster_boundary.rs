// Fixture: crates/cluster is a decision-path crate from day one — the
// coordinator's cross-node placement, migration, and balancing decide
// what every node runs. Linted as crates/cluster/src/fixture.rs: hasher
// order, wall clocks, raw threads, and bare unwraps are all flagged.

pub fn sneak_nondeterminism() {
    let affinity: HashMap<&str, usize> = HashMap::new();
    let _ = affinity;
    let _migration_started = std::time::Instant::now();
    std::thread::spawn(|| {});
    let dest = pick_dest().unwrap();
    let _ = dest;
}
