// Fixture: DET-WALLCLOCK must fire on wall-clock reads outside the
// telemetry/bench allowlist (linted as crates/core/src/fixture.rs).
// A bare `Instant` type mention (the parameter) must NOT fire.

use std::time::{Instant, SystemTime};

pub fn stage(deadline: Instant) -> bool {
    let now = Instant::now();
    let _epoch = SystemTime::now();
    now < deadline
}
