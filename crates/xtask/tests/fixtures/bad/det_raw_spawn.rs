// Fixture: DET-RAW-SPAWN must fire on raw thread machinery outside
// util::pool (linted as crates/workloads/src/fixture.rs — the rule is
// workspace-wide, not decision-path-only).

pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    crossbeam::scope(|s| {
        s.spawn(|_| ());
    })
    .unwrap();
}
