// Fixture: allow-comment hygiene. A reason-less allow must report
// LINT-ALLOW-REASON and NOT suppress its rule; an unknown rule id must
// report LINT-UNKNOWN-RULE (linted as crates/core/src/fixture.rs).

// lint:allow(DET-HASH-ITER)
pub fn still_flagged() -> HashMap<u32, u32> {
    todo!()
}

// lint:allow(DET-TYPO-RULE, reason = "this rule does not exist")
pub fn fine() {}
