// Fixture: DET-FLOAT-REDUCE must fire on atomic float accumulation
// (fetch ops in a file that bit-casts floats) and on Mutex<f64>
// accumulators (linted as crates/dds/src/fixture.rs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Acc {
    pub total: Mutex<f64>,
}

pub fn add(cell: &AtomicU64, x: f64) {
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
        Some((f64::from_bits(bits) + x).to_bits())
    });
}
