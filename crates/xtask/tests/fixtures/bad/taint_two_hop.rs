//! BAD (DET-TAINT): a racy counter read two calls away from a record
//! writer. No single token is suspicious to the per-file linter — the
//! `Relaxed` load sits in a leaf helper, the `RunRecord` literal in a
//! third function, and only the call graph connects them.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct RunRecord {
    pub retries: usize,
}

pub struct Counter {
    hits: AtomicUsize,
}

impl Counter {
    fn snapshot(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

fn gather(c: &Counter) -> usize {
    c.snapshot()
}

pub fn write_record(c: &Counter) -> RunRecord {
    RunRecord {
        retries: gather(c),
    }
}
