// Fixture: PANIC-POLICY must fire on bare .unwrap()/.expect() method calls
// in decision-path crates (linted as crates/simulator/src/fixture.rs), and
// must NOT fire on unwrap_or / an `unwrap` path segment.

pub fn brittle(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("y must be ok");
    let c = x.unwrap_or(0);
    a + b + c
}
