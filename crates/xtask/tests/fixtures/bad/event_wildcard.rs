//! BAD (EVT-EXHAUSTIVE): wildcard arms over event enums. A variant
//! added later compiles, flows, and silently vanishes from the
//! artifacts this consumer should have changed.

pub enum ControlEvent {
    Lifecycle,
    Breaker,
    Shed,
}

pub fn count_breakers(events: &[ControlEvent]) -> usize {
    let mut n = 0;
    for e in events {
        match e {
            ControlEvent::Breaker => n += 1,
            _ => {}
        }
    }
    n
}

pub fn any_shed(events: &[ControlEvent]) -> bool {
    events.iter().any(|e| matches!(e, ControlEvent::Shed))
}
