//! BAD (ORD-TOTAL-FLOAT): NaN-partial comparators at sort/max sites.
//! The power-blackout fault injection really does produce NaN samples,
//! so `partial_cmp` here is a panic (or an order-dependent result).

pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap())
}
