// Fixture: DET-HASH-ITER must fire on HashMap/HashSet at expression and
// type sites in decision-path crates (linted as crates/core/src/fixture.rs),
// while the `use` declaration stays exempt.
// Expected hits: (8,26), (9,18), (9,40), (14,17).

use std::collections::{HashMap, HashSet};

pub fn observations() -> HashMap<usize, f64> {
    let mut obs: HashMap<usize, f64> = HashMap::new();
    obs.insert(0, 1.0);
    obs
}

pub struct Seen(HashSet<usize>);
