// Fixture: the allowed-paths table exempts exactly three service files
// (pacing.rs for DET-WALLCLOCK; reactor.rs and http.rs for DET-RAW-SPAWN).
// Linted as crates/service/src/fixture.rs — any OTHER service file reading
// the clock or spawning must be flagged like the rest of the workspace.

use std::time::Instant;

pub fn sneak_a_clock() -> Instant {
    Instant::now()
}

pub fn sneak_a_thread() {
    std::thread::spawn(|| {});
}
