//! `DET-TAINT`: nondeterminism sources must not reach recorded outputs.
//!
//! A *source* is a token-level site whose value depends on something other
//! than the run's inputs: a wall-clock read (`Instant::now`,
//! `SystemTime::now` / `UNIX_EPOCH`) or a `Relaxed` atomic load outside
//! `crates/util` (HOGWILD factor reads, racy counters). A *sink* is a
//! function that writes the artifacts the golden-record and sweep tests pin
//! byte-for-byte: constructors of `RunRecord` / `SliceRecord` /
//! `StageTelemetry` / `TelemetrySummary` / `ControlSnapshot` struct
//! literals, every `to_json` builder, sweep's `summary_json`, and the
//! service's `/metrics` renderers.
//!
//! The rule walks the call graph *forward from each sink*: if a sink
//! function transitively calls a function containing a source site, the
//! source is flagged — anchored at the source token, with the call path in
//! the message so the reader can judge the flow. Survivors carry a reasoned
//! `lint:allow(DET-TAINT, ...)` at the source line; the canonical exemplar
//! is the PR-4 warm-start path, whose timing reads are numerically
//! invisible to the plan (see DESIGN.md §8.3).

use crate::graph::Graph;
use crate::lexer::Token;
use crate::rules::{allowed_paths, path_follows, Diagnostic};
use std::collections::BTreeMap;

/// Struct literals that count as record/snapshot writes.
const SINK_TYPES: &[&str] = &[
    "RunRecord",
    "SliceRecord",
    "LcSliceRecord",
    "StageTelemetry",
    "TelemetrySummary",
    "ControlSnapshot",
];

/// Functions that are sinks by name, gated by crate so common names like
/// `render` do not make every crate's renderer a sink.
const SINK_FNS: &[(&str, &str)] = &[
    ("sweep", "summary_json"),
    ("service", "render"),
    ("service", "render_cluster"),
];

/// A direct nondeterminism source site.
#[derive(Debug)]
pub struct SourceSite {
    /// Owning function (index into `Graph::fns`).
    pub fn_idx: usize,
    /// What kind of source this is, for the message.
    pub kind: &'static str,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Runs the rule. Returns raw (pre-allow) diagnostics plus
/// `(sources, sinks, tainted)` counts for the report's graph statistics.
pub fn check(graph: &Graph) -> (Vec<Diagnostic>, (usize, usize, usize)) {
    let sources = source_sites(graph);
    let sinks = sink_fns(graph);

    // Forward BFS from every sink, recording the first (sink, hop-path)
    // that reaches each function. Sinks are visited in index order, so the
    // recorded path is deterministic.
    let mut reached: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &sink in &sinks {
        let mut queue = std::collections::VecDeque::from([sink]);
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        parent.insert(sink, sink);
        while let Some(f) = queue.pop_front() {
            for &callee in &graph.calls_out[f] {
                if !graph.fns[callee].active {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(f);
                    queue.push_back(callee);
                }
            }
        }
        for (&f, _) in parent.iter() {
            reached.entry(f).or_insert_with(|| {
                let mut path = vec![f];
                let mut cur = f;
                while parent[&cur] != cur {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse(); // sink first
                path
            });
        }
    }

    let mut diags = Vec::new();
    let mut tainted = 0usize;
    for site in &sources {
        let Some(path) = reached.get(&site.fn_idx) else {
            continue;
        };
        tainted += 1;
        let file = &graph.files[graph.fns[site.fn_idx].file];
        let chain = path
            .iter()
            .map(|&f| graph.fn_label(f))
            .collect::<Vec<_>>()
            .join(" -> ");
        diags.push(Diagnostic {
            rule: "DET-TAINT",
            file: file.path.clone(),
            line: site.line,
            col: site.col,
            message: format!(
                "{} reaches a recorded output through the call path [{chain}]: the \
                 golden record pins these bytes, so either break the flow or — when \
                 the value is numerically invisible to what is recorded, like the \
                 warm-start timing reads — document it with \
                 `lint:allow(DET-TAINT, reason = \"...\")`",
                site.kind
            ),
        });
    }
    (diags, (sources.len(), sinks.len(), tainted))
}

/// All direct source sites in active code, outside the DET-TAINT allowlist
/// and outside `crates/util` (whose `Relaxed` loads are the pool/reduce
/// plumbing itself).
pub fn source_sites(graph: &Graph) -> Vec<SourceSite> {
    let mut out = Vec::new();
    let exempt = allowed_paths("DET-TAINT");
    for (fi, f) in graph.fns.iter().enumerate() {
        if !f.active {
            continue;
        }
        let file = &graph.files[f.file];
        if exempt.iter().any(|frag| file.path.contains(frag)) {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let tokens = &file.lexed.tokens;
        for i in start..=end {
            let Some(name) = tokens[i].ident() else {
                continue;
            };
            let kind = match name {
                "Instant" if path_follows(tokens, i, &["now"]) => "a wall-clock read",
                "SystemTime"
                    if path_follows(tokens, i, &["now"])
                        || path_follows(tokens, i, &["UNIX_EPOCH"]) =>
                {
                    "a wall-clock read"
                }
                "load"
                    if file.crate_name.as_deref() != Some("util")
                        && relaxed_load(tokens, i) =>
                {
                    "a `Relaxed` atomic load"
                }
                _ => continue,
            };
            out.push(SourceSite {
                fn_idx: fi,
                kind,
                line: tokens[i].line,
                col: tokens[i].col,
            });
        }
    }
    out
}

/// Whether the `load` at token `i` is a method call whose argument group
/// mentions `Relaxed`.
fn relaxed_load(tokens: &[Token], i: usize) -> bool {
    if i == 0 || !tokens[i - 1].is_punct('.') {
        return false;
    }
    let Some(open) = tokens.get(i + 1).filter(|t| t.is_punct('(')).map(|_| i + 1) else {
        return false;
    };
    let close = crate::lexer::matching_bracket_pub(tokens, open).unwrap_or(open);
    tokens[open..=close]
        .iter()
        .any(|t| t.ident() == Some("Relaxed"))
}

/// Indices of the sink functions: record writers and renderers.
fn sink_fns(graph: &Graph) -> Vec<usize> {
    let mut out = Vec::new();
    for (fi, f) in graph.fns.iter().enumerate() {
        if !f.active {
            continue;
        }
        let file = &graph.files[f.file];
        let crate_name = file.crate_name.as_deref().unwrap_or("");
        let named_sink = f.name == "to_json"
            || SINK_FNS
                .iter()
                .any(|(c, n)| *c == crate_name && *n == f.name);
        let writes_record = f.body.is_some_and(|(start, end)| {
            let tokens = &file.lexed.tokens;
            (start..end).any(|i| {
                tokens[i]
                    .ident()
                    .is_some_and(|n| SINK_TYPES.contains(&n))
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('{'))
            })
        });
        if named_sink || writes_record {
            out.push(fi);
        }
    }
    out
}
