//! The workspace item graph the analysis rules run on.
//!
//! Built on the span-accurate lexer (`syn` is unavailable offline), this
//! module recovers just enough structure for conservative whole-workspace
//! reasoning: every `fn` item with its body token range, the call sites
//! inside each body, the crate roots a file imports through its `use`
//! declarations, and the merged call graph across all files. There is no
//! type inference — calls resolve *by name*, gated so an edge only forms
//! when the callee's crate is the caller's own crate or one the caller
//! imports. That over-approximates real calls (same-name functions in one
//! crate alias each other), which is the right direction for the taint and
//! lock-order rules: they must never miss a path; spurious paths surface in
//! review and earn either a fix or a reasoned allow.

use crate::lexer::{lex, Lexed, Token};
use crate::rules::crate_of;
use std::collections::{BTreeMap, BTreeSet};

/// One source file, lexed once and shared by every analysis pass.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The `crates/<name>` component, if any.
    pub crate_name: Option<String>,
    /// The lex (tokens + allow comments).
    pub lexed: Lexed,
}

impl SourceFile {
    /// Lexes `source` under the given workspace-relative path.
    pub fn new(path: &str, source: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            crate_name: crate_of(path).map(str::to_string),
            lexed: lex(source),
        }
    }
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment before the `(`).
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// 1-based column of the name token.
    pub col: usize,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnDef {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// 1-based column of the name token.
    pub col: usize,
    /// Token index range of the body block, `{` inclusive to `}` inclusive.
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item is live runtime code (not `#[cfg(test)]`-gated).
    pub active: bool,
    /// Call sites inside the body, in token order.
    pub calls: Vec<CallSite>,
}

/// Statistics for the v2 JSON report (`"graph": { ... }`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of `fn` items found (active ones only).
    pub functions: usize,
    /// Number of resolved intra-workspace call edges.
    pub call_edges: usize,
    /// Direct nondeterminism source sites (pre-allow).
    pub taint_sources: usize,
    /// Record/summary-writing sink functions.
    pub taint_sinks: usize,
    /// Source sites reachable from a sink (pre-allow).
    pub taint_paths: usize,
    /// Lock-guard acquisition sites.
    pub lock_sites: usize,
    /// Distinct held→acquired lock-order edges.
    pub lock_edges: usize,
    /// Entries in the generated schema (metric names, label keys, JSON keys).
    pub schema_entries: usize,
}

/// The merged workspace item graph.
pub struct Graph<'a> {
    /// The lexed files the graph was built from.
    pub files: &'a [SourceFile],
    /// Every active `fn` item, globally indexed.
    pub fns: Vec<FnDef>,
    /// Callee indices per function (deduplicated, sorted).
    pub calls_out: Vec<Vec<usize>>,
    /// Caller indices per function (deduplicated, sorted).
    pub calls_in: Vec<Vec<usize>>,
    /// Crate roots imported per file (`use dds::...` → `dds`), plus the
    /// file's own crate.
    pub imports: Vec<BTreeSet<String>>,
}

/// Rust keywords and control forms that look like `name (` at a call site
/// but are not calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "fn", "let",
    "move", "in", "as", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod", "unsafe",
    "async", "await", "struct", "enum", "union", "trait", "type", "const", "static", "crate",
    "self", "Self", "super", "box", "yield",
];

/// Cargo package names that differ from their `crates/<dir>` directory:
/// `use cuttlesys::...` imports the `crates/core` sources.
const CRATE_ALIASES: &[(&str, &str)] = &[("cuttlesys", "core")];

/// Maps an imported root ident to the `crates/<dir>` directory it names.
fn import_to_dir(root: &str) -> &str {
    CRATE_ALIASES
        .iter()
        .find(|(pkg, _)| *pkg == root)
        .map_or(root, |(_, dir)| dir)
}

impl<'a> Graph<'a> {
    /// Builds the merged graph over `files`.
    pub fn build(files: &'a [SourceFile]) -> Graph<'a> {
        let mut fns = Vec::new();
        let mut imports = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let tokens = &file.lexed.tokens;
            fns.extend(parse_fns(fi, tokens));
            let mut roots = import_roots(tokens);
            if let Some(c) = &file.crate_name {
                roots.insert(c.clone());
            }
            imports.push(roots);
        }

        // Name → candidate fn indices, for edge resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }

        let mut calls_out: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut calls_in: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (ci, caller) in fns.iter().enumerate() {
            let caller_crate = files[caller.file].crate_name.as_deref();
            let visible = &imports[caller.file];
            for call in &caller.calls {
                for &ti in by_name.get(call.name.as_str()).into_iter().flatten() {
                    let callee_crate = files[fns[ti].file].crate_name.as_deref();
                    let in_scope = match (caller_crate, callee_crate) {
                        (Some(a), Some(b)) => {
                            a == b || visible.iter().any(|r| import_to_dir(r) == b)
                        }
                        _ => caller_crate == callee_crate,
                    };
                    if in_scope && ti != ci {
                        calls_out[ci].push(ti);
                        calls_in[ti].push(ci);
                    }
                }
            }
        }
        for v in calls_out.iter_mut().chain(calls_in.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }

        Graph {
            files,
            fns,
            calls_out,
            calls_in,
            imports,
        }
    }

    /// The number of resolved call edges.
    pub fn edge_count(&self) -> usize {
        self.calls_out.iter().map(Vec::len).sum()
    }

    /// A stable human-readable handle for a function: `crate::name`.
    pub fn fn_label(&self, i: usize) -> String {
        match &self.files[self.fns[i].file].crate_name {
            Some(c) => format!("{c}::{}", self.fns[i].name),
            None => self.fns[i].name.clone(),
        }
    }
}

/// Parses every active `fn` item out of one file's token stream.
fn parse_fns(file: usize, tokens: &[Token]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() != Some("fn") {
            i += 1;
            continue;
        }
        // `fn` in type position (`fn(usize) -> bool`) has no name ident.
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            i += 1;
            continue;
        };
        // Walk to the body `{` (or a `;` for bodyless trait methods),
        // skipping parenthesized/bracketed groups — parens appear in both
        // generic bounds (`F: Fn(usize)`) and the parameter list.
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                let end =
                    crate::lexer::matching_bracket_pub(tokens, j).unwrap_or(tokens.len() - 1);
                body = Some((j, end));
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                j = crate::lexer::matching_bracket_pub(tokens, j).map_or(tokens.len(), |c| c + 1);
                continue;
            }
            j += 1;
        }
        let calls = body.map_or_else(Vec::new, |(s, e)| call_sites(&tokens[s..=e]));
        out.push(FnDef {
            file,
            name: name.to_string(),
            line: name_tok.line,
            col: name_tok.col,
            body,
            active: name_tok.active,
            calls,
        });
        i = body.map_or(j + 1, |(_, e)| e + 1);
    }
    out
}

/// Call sites in a body token slice: `name (` where `name` is not a
/// keyword, not a macro invocation (`name!(`), and not a definition.
fn call_sites(body: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if NOT_CALLS.contains(&name) {
            continue;
        }
        // Nested `fn` definitions inside the body are not calls.
        if i > 0 && body[i - 1].ident() == Some("fn") {
            continue;
        }
        // Only `name (` is a call. `name!(` is a macro; `name::seg(` is
        // reached at its last segment by this same loop.
        if body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            out.push(CallSite {
                name: name.to_string(),
                line: t.line,
                col: t.col,
            });
        }
    }
    out
}

/// Crate roots named by `use` declarations: `use dds::parallel::x;` → `dds`.
fn import_roots(tokens: &[Token]) -> BTreeSet<String> {
    let mut roots = BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("use") {
            // The root is the first ident after `use` (skipping leading `::`).
            let mut j = i + 1;
            while tokens.get(j).is_some_and(|t| t.is_punct(':')) {
                j += 1;
            }
            if let Some(root) = tokens.get(j).and_then(Token::ident) {
                if !matches!(root, "std" | "core" | "alloc" | "crate" | "self" | "super") {
                    roots.insert(root.to_string());
                }
            }
            // Skip to the terminating `;`, stepping over use-tree braces.
            while j < tokens.len() && !tokens[j].is_punct(';') {
                if tokens[j].is_punct('{') {
                    j = crate::lexer::matching_bracket_pub(tokens, j)
                        .map_or(tokens.len(), |c| c);
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(specs: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<(String, Vec<String>)>) {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(p, s)| SourceFile::new(p, s))
            .collect();
        let g = Graph::build(&files);
        let shaped = g
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (
                    f.name.clone(),
                    g.calls_out[i].iter().map(|&t| g.fns[t].name.clone()).collect(),
                )
            })
            .collect();
        (files, shaped)
    }

    #[test]
    fn fns_and_same_crate_edges_are_found() {
        let (_, shaped) = graph_of(&[(
            "crates/dds/src/a.rs",
            "fn leaf() {}\nfn caller() { leaf(); other(); }",
        )]);
        assert_eq!(shaped[0], ("leaf".into(), vec![]));
        assert_eq!(shaped[1], ("caller".into(), vec!["leaf".into()]));
    }

    #[test]
    fn cross_crate_edges_require_an_import() {
        let lib = ("crates/recsys/src/lib.rs", "pub fn fit() {}");
        let importing = (
            "crates/core/src/a.rs",
            "use recsys::fit;\nfn run() { fit(); }",
        );
        let blind = ("crates/cluster/src/b.rs", "fn run2() { fit(); }");
        let (_, shaped) = graph_of(&[lib, importing, blind]);
        let find = |n: &str| shaped.iter().find(|(f, _)| f == n).unwrap().1.clone();
        assert_eq!(find("run"), vec!["fit".to_string()]);
        assert!(find("run2").is_empty(), "no import, no edge");
    }

    #[test]
    fn the_cuttlesys_alias_reaches_the_core_crate() {
        let (_, shaped) = graph_of(&[
            ("crates/core/src/lib.rs", "pub fn decide() {}"),
            (
                "crates/service/src/a.rs",
                "use cuttlesys::pipeline;\nfn step() { decide(); }",
            ),
        ]);
        let step = shaped.iter().find(|(f, _)| f == "step").unwrap();
        assert_eq!(step.1, vec!["decide".to_string()]);
    }

    #[test]
    fn method_calls_and_generic_signatures_parse() {
        let (_, shaped) = graph_of(&[(
            "crates/core/src/a.rs",
            "fn apply<F: Fn(usize) -> bool>(f: F) -> bool { f(1) }\n\
             fn render() {}\n\
             fn page(r: &R) { r.render(); }",
        )]);
        let page = shaped.iter().find(|(f, _)| f == "page").unwrap();
        assert_eq!(page.1, vec!["render".to_string()]);
    }

    #[test]
    fn macros_keywords_and_test_items_are_not_call_targets() {
        let files: Vec<SourceFile> = vec![SourceFile::new(
            "crates/core/src/a.rs",
            "fn live() { println!(\"x\"); if cond() { } }\n\
             #[cfg(test)]\nmod t { fn gated() { live(); } }",
        )];
        let g = Graph::build(&files);
        let names: Vec<&str> = g
            .fns
            .iter()
            .filter(|f| f.active)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["live"]);
        let live = &g.fns[0];
        assert!(
            live.calls.iter().all(|c| c.name != "println"),
            "macro flagged as call: {:?}",
            live.calls
        );
        assert!(live.calls.iter().any(|c| c.name == "cond"));
    }
}
