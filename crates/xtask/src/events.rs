//! `EVT-EXHAUSTIVE`: event consumers must decide every variant.
//!
//! Inside the `service` and `sweep` crates — the renderers and aggregators
//! that turn `ControlEvent` / `ClusterEvent` streams into `/metrics`
//! lines and sweep summaries — a `_` wildcard arm over an event enum
//! silently swallows every variant added later: the event compiles, flows,
//! and vanishes from the artifacts it should have changed. The rule flags
//!
//! * `_ =>` arms in `match`es whose scrutinee or arms mention an event
//!   enum, and
//! * `matches!(e, Event::X { .. })` over an event enum, which desugars to
//!   exactly such a wildcard.
//!
//! Adding a variant then fails compilation (or this lint) at every
//! consumer, forcing each to decide.

use crate::lexer::Token;
use crate::rules::{Diagnostic, FileContext};

/// The event enums whose consumers are held exhaustive.
const EVENT_ENUMS: &[&str] = &["ControlEvent", "ClusterEvent"];

/// Crates in scope: the event consumers/renderers.
const SCOPE_CRATES: &[&str] = &["service", "sweep"];

/// Runs the rule over one file's tokens.
pub fn check(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !ctx.crate_name.is_some_and(|c| SCOPE_CRATES.contains(&c)) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.active {
            continue;
        }
        match t.ident() {
            Some("match") => check_match(ctx, tokens, i, out),
            Some("matches")
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct('(')) =>
            {
                let close = crate::lexer::matching_bracket_pub(tokens, i + 2).unwrap_or(i + 2);
                if mentions_event_enum(&tokens[i + 2..=close]) {
                    out.push(Diagnostic {
                        rule: "EVT-EXHAUSTIVE",
                        file: ctx.path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: "`matches!` over an event enum desugars to a `_` wildcard \
                                  arm: variants added later are silently ignored. Write a \
                                  full `match` that names every variant"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Checks one `match` expression (the `match` keyword at `i`).
fn check_match(ctx: &FileContext, tokens: &[Token], i: usize, out: &mut Vec<Diagnostic>) {
    // Find the arm block: the first `{` at group depth 0 after the
    // scrutinee (struct literals cannot appear unparenthesized there).
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            break;
        }
        j += 1;
    }
    let Some(close) = crate::lexer::matching_bracket_pub(tokens, j) else {
        return;
    };
    // In scope only when the scrutinee or the arm patterns name an event
    // enum (variant paths like `ControlEvent::Lifecycle`).
    if !mentions_event_enum(&tokens[i..=close]) {
        return;
    }
    // `_ =>` at arm depth: `_` directly inside the match braces.
    let mut depth = 0i32;
    for k in j + 1..close {
        let t = &tokens[k];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0
            && t.ident() == Some("_")
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('='))
            && tokens.get(k + 2).is_some_and(|n| n.is_punct('>'))
        {
            out.push(Diagnostic {
                rule: "EVT-EXHAUSTIVE",
                file: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: "`_` wildcard arm in a `match` over an event enum: variants \
                          added later are silently ignored here. Name every variant so \
                          new events force a decision at this consumer"
                    .to_string(),
            });
        }
    }
}

/// Whether any token in the slice names an event enum.
fn mentions_event_enum(tokens: &[Token]) -> bool {
    tokens
        .iter()
        .any(|t| t.ident().is_some_and(|n| EVENT_ENUMS.contains(&n)))
}
