//! The item-graph analysis pass (`cargo xtask analyze`, folded into `lint`).
//!
//! Builds the workspace [`Graph`](crate::graph::Graph) once and drives the
//! graph-aware rule families over it — `DET-TAINT`, `LOCK-ORDER` — plus
//! the per-file structural rules that share its scope discipline
//! (`ORD-TOTAL-FLOAT`, `EVT-EXHAUSTIVE`). Inline `lint:allow` suppression
//! applies exactly as for the token rules, including stacked allow blocks
//! for sites hit by several rules at once.

use crate::graph::{Graph, GraphStats, SourceFile};
use crate::rules::{self, Diagnostic, FileContext};
use std::collections::BTreeMap;

/// Runs every graph rule over the lexed files. Returns the surviving
/// (allow-suppressed) diagnostics and the graph statistics for the v2
/// report.
pub fn analyze(files: &[SourceFile]) -> (Vec<Diagnostic>, GraphStats) {
    let graph = Graph::build(files);

    let mut raw = Vec::new();
    let (taint_diags, (sources, sinks, tainted)) = crate::taint::check(&graph);
    raw.extend(taint_diags);
    let (lock_diags, (lock_sites, lock_edges)) = crate::lockorder::check(&graph);
    raw.extend(lock_diags);
    for file in files {
        let ctx = FileContext {
            path: &file.path,
            crate_name: file.crate_name.as_deref(),
        };
        crate::ordfloat::check(&ctx, &file.lexed.tokens, &mut raw);
        crate::events::check(&ctx, &file.lexed.tokens, &mut raw);
    }

    // Suppress through each diagnostic's own file's allow comments.
    let allows_by_path: BTreeMap<&str, &[crate::lexer::Allow]> = files
        .iter()
        .map(|f| (f.path.as_str(), f.lexed.allows.as_slice()))
        .collect();
    let mut out = Vec::new();
    for diag in raw {
        let allows = allows_by_path
            .get(diag.file.as_str())
            .copied()
            .unwrap_or(&[]);
        out.extend(rules::suppress(allows, vec![diag]));
    }

    let stats = GraphStats {
        functions: graph.fns.iter().filter(|f| f.active).count(),
        call_edges: graph.edge_count(),
        taint_sources: sources,
        taint_sinks: sinks,
        taint_paths: tainted,
        lock_sites,
        lock_edges,
        schema_entries: 0, // filled in by the caller after `schema::check`
    };
    (out, stats)
}

/// Convenience for tests and callers holding raw text: lexes `(path,
/// source)` pairs and runs [`analyze`].
pub fn analyze_sources(sources: &[(&str, &str)]) -> (Vec<Diagnostic>, GraphStats) {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| SourceFile::new(p, s))
        .collect();
    analyze(&files)
}
