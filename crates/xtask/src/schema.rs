//! `SCHEMA-LOCK`: the emitted metric/JSON schema is locked in `schema.lock`.
//!
//! Dashboards scrape `service::metrics` names, and the sweep's per-cell
//! baselines diff `summary.json` keys — renaming either silently orphans
//! every consumer. This pass extracts the emitted names from the emitter
//! sources (no runtime needed) into a generated, sorted, byte-stable
//! `schema.lock` at the workspace root:
//!
//! * **metric** — the name argument of `family(...)` / `sample(...)` calls
//!   in `service::metrics`;
//! * **label** — every `key="` label key inside the same file's literals;
//! * **json-key** — every `("key".to_string(), ...)` / `("key".into(), ...)`
//!   object-key literal in the `util::json` builder files (`to_json` impls,
//!   sweep's `summary_json` writer).
//!
//! `cargo xtask schema --check` (run inside the lint gate) fails on any
//! drift between the sources and the committed lock; a schema change ships
//! with a `cargo xtask schema --write` in the same commit, making the diff
//! reviewable where it belongs.

use crate::graph::SourceFile;
use crate::lexer::Token;
use crate::rules::Diagnostic;
use std::collections::BTreeSet;
use std::path::Path;

/// The lock file's workspace-relative path.
pub const LOCK_PATH: &str = "schema.lock";

/// How a source file's emitted names are extracted.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Extract {
    /// Prometheus exposition: `family(...)`/`sample(...)` names + label keys.
    Metrics,
    /// `util::json` object-key literals.
    JsonKeys,
}

/// The emitter files under schema lock. Bench output is deliberately *not*
/// here: bench JSON is an experiment artifact, not a stability contract.
pub const SCHEMA_SOURCES: &[(&str, Extract)] = &[
    ("crates/cluster/src/coordinator.rs", Extract::JsonKeys),
    ("crates/core/src/control.rs", Extract::JsonKeys),
    ("crates/core/src/telemetry.rs", Extract::JsonKeys),
    ("crates/core/src/types.rs", Extract::JsonKeys),
    ("crates/service/src/metrics.rs", Extract::Metrics),
    ("crates/service/src/trace.rs", Extract::JsonKeys),
    ("crates/sweep/src/detectors.rs", Extract::JsonKeys),
    ("crates/sweep/src/report.rs", Extract::JsonKeys),
];

/// One extracted schema entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// `metric`, `label`, or `json-key`.
    pub kind: &'static str,
    /// The emitted name.
    pub name: String,
    /// Workspace-relative emitter file.
    pub file: String,
    /// 1-based line of the defining literal (not written to the lock).
    pub line: usize,
    /// 1-based column of the defining literal (not written to the lock).
    pub col: usize,
}

impl Entry {
    fn lock_line(&self) -> String {
        format!("{} {} {}", self.kind, self.name, self.file)
    }
}

/// Extracts the schema entries from one lexed emitter file.
pub fn extract(file: &SourceFile, mode: Extract) -> Vec<Entry> {
    let tokens = &file.lexed.tokens;
    let mut out = Vec::new();
    match mode {
        Extract::Metrics => {
            for (i, t) in tokens.iter().enumerate() {
                // `family(out, "name", ...)` / `sample(out, "name", ...)`:
                // the first string literal in the argument group.
                if matches!(t.ident(), Some("family") | Some("sample"))
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    let close =
                        crate::lexer::matching_bracket_pub(tokens, i + 1).unwrap_or(i + 1);
                    if let Some(lit) = tokens[i + 1..close].iter().find(|t| t.str_lit().is_some())
                    {
                        let name = lit.str_lit().unwrap_or_default();
                        if !name.is_empty() {
                            out.push(Entry {
                                kind: "metric",
                                name: name.to_string(),
                                file: file.path.clone(),
                                line: lit.line,
                                col: lit.col,
                            });
                        }
                    }
                }
                // Label keys inside any literal: `key="` occurrences.
                if let Some(text) = t.str_lit() {
                    for key in label_keys(text) {
                        out.push(Entry {
                            kind: "label",
                            name: key,
                            file: file.path.clone(),
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
            }
        }
        Extract::JsonKeys => {
            for (i, t) in tokens.iter().enumerate() {
                let Some(text) = t.str_lit() else { continue };
                // `( "key" . to_string ( ) ,` / `( "key" . into ( ) ,` —
                // the trailing comma distinguishes a tuple-key position
                // from a plain `Str("value".to_string())` argument.
                let preceded = i > 0 && tokens[i - 1].is_punct('(');
                let key_call = tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    && matches!(
                        tokens.get(i + 2).and_then(Token::ident),
                        Some("to_string") | Some("into")
                    )
                    && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
                    && tokens.get(i + 4).is_some_and(|n| n.is_punct(')'))
                    && tokens.get(i + 5).is_some_and(|n| n.is_punct(','));
                if preceded && key_call && !text.is_empty() {
                    out.push(Entry {
                        kind: "json-key",
                        name: text.to_string(),
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }
    }
    out
}

/// Label keys in an exposition-format literal: `key="` occurrences.
fn label_keys(text: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = text.as_bytes();
    for idx in 0..bytes.len().saturating_sub(1) {
        if bytes[idx] == b'=' && bytes[idx + 1] == b'"' {
            let mut start = idx;
            while start > 0 {
                let c = bytes[start - 1];
                if c.is_ascii_alphanumeric() || c == b'_' {
                    start -= 1;
                } else {
                    break;
                }
            }
            if start < idx && bytes[start].is_ascii_alphabetic() {
                keys.push(text[start..idx].to_string());
            }
        }
    }
    keys
}

/// Extracts the full schema from the workspace's emitter files (missing
/// files contribute nothing — toy test workspaces have none). Entries are
/// sorted and site-deduplicated.
pub fn extract_workspace(workspace: &Path) -> std::io::Result<Vec<Entry>> {
    let mut entries = Vec::new();
    for (rel, mode) in SCHEMA_SOURCES {
        let abs = workspace.join(rel);
        if !abs.is_file() {
            continue;
        }
        let source = std::fs::read_to_string(&abs)?;
        entries.extend(extract(&SourceFile::new(rel, &source), *mode));
    }
    entries.sort();
    entries.dedup_by(|a, b| a.lock_line() == b.lock_line());
    Ok(entries)
}

/// Renders the byte-stable lock text for the given entries.
pub fn render_lock(entries: &[Entry]) -> String {
    let mut out = String::from(
        "# cuttlesys emitted-schema lock — generated by `cargo xtask schema --write`.\n\
         # One line per emitted name: <kind> <name> <emitter file>; sorted, deduplicated.\n\
         # `cargo xtask schema --check` (and the lint gate) fails on any drift.\n",
    );
    for e in entries {
        out.push_str(&e.lock_line());
        out.push('\n');
    }
    out
}

/// Writes the lock file; returns the entry count.
pub fn write_lock(workspace: &Path) -> std::io::Result<usize> {
    let entries = extract_workspace(workspace)?;
    std::fs::write(workspace.join(LOCK_PATH), render_lock(&entries))?;
    Ok(entries.len())
}

/// Checks the committed lock against the sources. Returns drift
/// diagnostics (empty when in sync) plus the extracted entry count.
pub fn check(workspace: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let entries = extract_workspace(workspace)?;
    let lock_path = workspace.join(LOCK_PATH);
    let mut diags = Vec::new();
    let lock_text = match std::fs::read_to_string(&lock_path) {
        Ok(t) => t,
        Err(_) if entries.is_empty() => return Ok((diags, 0)),
        Err(_) => {
            diags.push(Diagnostic {
                rule: "SCHEMA-LOCK",
                file: LOCK_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "schema.lock is missing but {} emitted names were extracted; \
                     create it with `cargo xtask schema --write` and commit it",
                    entries.len()
                ),
            });
            return Ok((diags, entries.len()));
        }
    };

    let locked: BTreeSet<&str> = lock_text
        .lines()
        .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
        .collect();
    let current: BTreeSet<String> = entries.iter().map(Entry::lock_line).collect();

    // Names in the sources but not the lock: anchored at the literal.
    for e in &entries {
        if !locked.contains(e.lock_line().as_str()) {
            diags.push(Diagnostic {
                rule: "SCHEMA-LOCK",
                file: e.file.clone(),
                line: e.line,
                col: e.col,
                message: format!(
                    "emitted {} `{}` is not in schema.lock: this changes the \
                     metrics/JSON contract. If intended, run `cargo xtask schema \
                     --write` and commit the lock diff alongside this change",
                    e.kind, e.name
                ),
            });
        }
    }
    // Names in the lock no longer emitted: anchored at the lock line.
    for (li, line) in lock_text.lines().enumerate() {
        if line.trim_start().starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if !current.contains(line) {
            diags.push(Diagnostic {
                rule: "SCHEMA-LOCK",
                file: LOCK_PATH.to_string(),
                line: li + 1,
                col: 1,
                message: format!(
                    "locked name `{line}` is no longer emitted by its source: \
                     consumers scraping it now read nothing. If the removal is \
                     intended, run `cargo xtask schema --write` and commit the diff"
                ),
            });
        }
    }
    Ok((diags, entries.len()))
}
