//! `cargo xtask` — repo-local developer tasks.
//!
//! The only task today is `lint`: a source-level pass that enforces the
//! determinism and concurrency invariants the golden-record tests depend
//! on, as named rules with span-accurate diagnostics (catalogue and
//! rationale: DESIGN.md §8, `rules.rs` module docs). Run it as
//!
//! ```text
//! cargo xtask lint            # human-readable, exit 1 on violations
//! cargo xtask lint --json     # stable machine-readable report on stdout
//! cargo xtask lint PATH...    # restrict to specific files/directories
//! ```
//!
//! The crate is a library so the integration tests (`tests/lint_rules.rs`)
//! drive the same engine the CLI does, over the fixture corpus in
//! `tests/fixtures/`.

pub mod lexer;
pub mod report;
pub mod rules;

use report::Report;
use std::path::{Path, PathBuf};

/// Directories never linted: vendored stand-ins are out of policy scope,
/// build output is not source, and the fixture corpus *intentionally*
/// violates every rule.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Lints every `.rs` file under `roots` (workspace-relative paths are
/// resolved against `workspace`). Returns the sorted report.
pub fn run_lint(workspace: &Path, roots: &[PathBuf]) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for root in roots {
        let abs = if root.is_absolute() {
            root.clone()
        } else {
            workspace.join(root)
        };
        collect_rs_files(&abs, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(workspace)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        report.diagnostics.extend(rules::lint_source(&rel, &source));
        report.checked_files += 1;
    }
    report.sort();
    Ok(report)
}

/// The default lint roots: all first-party crate sources.
pub fn default_roots() -> Vec<PathBuf> {
    vec![PathBuf::from("crates")]
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    if !path.is_dir() {
        return Ok(());
    }
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if SKIP_DIRS.contains(&name) {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        collect_rs_files(&entry, out)?;
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
