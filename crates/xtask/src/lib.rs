//! `cargo xtask` — repo-local developer tasks.
//!
//! Three tasks, all over the same engine:
//!
//! ```text
//! cargo xtask lint             # token + graph rules + schema, exit 1 on hits
//! cargo xtask lint --json      # stable machine-readable v2 report on stdout
//! cargo xtask lint PATH...     # restrict to specific files/directories
//! cargo xtask analyze          # graph rules + schema only (item-graph pass)
//! cargo xtask schema --check   # verify schema.lock matches the emitters
//! cargo xtask schema --write   # regenerate schema.lock
//! ```
//!
//! `lint` runs the per-file token rules (DESIGN.md §8.1), then builds the
//! workspace item graph (`graph.rs`) and drives the graph rule families
//! over it (§8.3): taint reachability, float comparator totality, event
//! exhaustiveness, schema lock, lock-order acyclicity.
//!
//! The crate is a library so the integration tests (`tests/lint_rules.rs`,
//! `tests/graph_rules.rs`, `tests/schema_lock.rs`) drive the same engine
//! the CLI does, over the fixture corpus in `tests/fixtures/`.

pub mod analysis;
pub mod events;
pub mod graph;
pub mod lexer;
pub mod lockorder;
pub mod ordfloat;
pub mod report;
pub mod rules;
pub mod schema;
pub mod taint;

use graph::SourceFile;
use report::Report;
use std::path::{Path, PathBuf};

/// Directories never linted: vendored stand-ins are out of policy scope,
/// build output is not source, and the fixture corpus *intentionally*
/// violates every rule.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Lints every `.rs` file under `roots` (workspace-relative paths are
/// resolved against `workspace`): token rules, graph rules, and the schema
/// lock. Returns the sorted report.
pub fn run_lint(workspace: &Path, roots: &[PathBuf]) -> std::io::Result<Report> {
    run(workspace, roots, true)
}

/// The item-graph analysis alone (`cargo xtask analyze`): graph rules and
/// the schema lock, without the per-file token rules.
pub fn run_analyze(workspace: &Path, roots: &[PathBuf]) -> std::io::Result<Report> {
    run(workspace, roots, false)
}

fn run(workspace: &Path, roots: &[PathBuf], token_rules: bool) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for root in roots {
        let abs = if root.is_absolute() {
            root.clone()
        } else {
            workspace.join(root)
        };
        collect_rs_files(&abs, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    let mut sources = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(workspace)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if token_rules {
            report.diagnostics.extend(rules::lint_source(&rel, &source));
        }
        sources.push(SourceFile::new(&rel, &source));
        report.checked_files += 1;
    }

    let (graph_diags, stats) = analysis::analyze(&sources);
    report.diagnostics.extend(graph_diags);
    report.graph = stats;

    let (schema_diags, schema_entries) = schema::check(workspace)?;
    report.diagnostics.extend(schema_diags);
    report.graph.schema_entries = schema_entries;

    report.sort();
    Ok(report)
}

/// The default lint roots: all first-party crate sources.
pub fn default_roots() -> Vec<PathBuf> {
    vec![PathBuf::from("crates")]
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    if !path.is_dir() {
        return Ok(());
    }
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if SKIP_DIRS.contains(&name) {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        collect_rs_files(&entry, out)?;
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
