//! Diagnostic rendering: human-readable text and a stable `--json` report.
//!
//! The JSON is hand-rolled (the container is offline, no `serde_json`) and
//! deliberately boring so CI and editors can depend on its shape:
//!
//! ```json
//! {
//!   "version": 2,
//!   "checked_files": 42,
//!   "counts": { "DET-HASH-ITER": 0, ... },
//!   "graph": { "functions": 0, "call_edges": 0, ... },
//!   "diagnostics": [
//!     { "rule": "...", "file": "...", "line": 1, "col": 2, "message": "..." }
//!   ]
//! }
//! ```
//!
//! Diagnostics are sorted by `(file, line, col, rule)`; `counts` lists every
//! known rule (zeroes included) in catalogue order; `graph` carries the
//! item-graph statistics (version 2 — zeroes when only token rules ran).
//! Same input → byte-equal report.

use crate::graph::GraphStats;
use crate::rules::{Diagnostic, RULE_IDS};

/// A full lint run's result.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files lexed and checked.
    pub checked_files: usize,
    /// All surviving diagnostics, sorted by `(file, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Item-graph statistics (v2 reports; zeroes when no graph pass ran).
    pub graph: GraphStats,
}

impl Report {
    /// Finalizes ordering; call once after all files are linted.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }

    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `file:line:col: RULE: message` lines plus a summary trailer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}:{}: {}: {}\n",
                d.file, d.line, d.col, d.rule, d.message
            ));
        }
        if self.diagnostics.is_empty() {
            out.push_str(&format!(
                "xtask lint: {} files checked, no violations\n",
                self.checked_files
            ));
        } else {
            out.push_str(&format!(
                "xtask lint: {} files checked, {} violation{}\n",
                self.checked_files,
                self.diagnostics.len(),
                if self.diagnostics.len() == 1 { "" } else { "s" }
            ));
        }
        out
    }

    /// The stable machine-readable report.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str(&format!("  \"checked_files\": {},\n", self.checked_files));
        out.push_str("  \"counts\": {\n");
        for (i, rule) in RULE_IDS.iter().enumerate() {
            let n = self.diagnostics.iter().filter(|d| d.rule == *rule).count();
            let comma = if i + 1 < RULE_IDS.len() { "," } else { "" };
            out.push_str(&format!("    {}: {}{}\n", json_string(rule), n, comma));
        }
        out.push_str("  },\n");
        let g = &self.graph;
        out.push_str("  \"graph\": {\n");
        let stats: [(&str, usize); 8] = [
            ("functions", g.functions),
            ("call_edges", g.call_edges),
            ("taint_sources", g.taint_sources),
            ("taint_sinks", g.taint_sinks),
            ("taint_paths", g.taint_paths),
            ("lock_sites", g.lock_sites),
            ("lock_edges", g.lock_edges),
            ("schema_entries", g.schema_entries),
        ];
        for (i, (key, value)) in stats.iter().enumerate() {
            let comma = if i + 1 < stats.len() { "," } else { "" };
            out.push_str(&format!("    {}: {}{}\n", json_string(key), value, comma));
        }
        out.push_str("  },\n");
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let comma = if i + 1 < self.diagnostics.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "\n    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {} }}{}",
                json_string(d.rule),
                json_string(&d.file),
                d.line,
                d.col,
                json_string(&d.message),
                comma
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            checked_files: 3,
            graph: GraphStats::default(),
            diagnostics: vec![
                Diagnostic {
                    rule: "DET-WALLCLOCK",
                    file: "crates/core/src/b.rs".into(),
                    line: 9,
                    col: 4,
                    message: "clock \"read\"".into(),
                },
                Diagnostic {
                    rule: "DET-HASH-ITER",
                    file: "crates/core/src/a.rs".into(),
                    line: 2,
                    col: 7,
                    message: "map".into(),
                },
            ],
        };
        r.sort();
        r
    }

    #[test]
    fn text_lines_are_span_accurate_and_sorted() {
        let text = sample().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("crates/core/src/a.rs:2:7: DET-HASH-ITER:"));
        assert!(lines[1].starts_with("crates/core/src/b.rs:9:4: DET-WALLCLOCK:"));
        assert_eq!(lines[2], "xtask lint: 3 files checked, 2 violations");
    }

    #[test]
    fn json_is_stable_and_escapes_strings() {
        let a = sample().render_json();
        let b = sample().render_json();
        assert_eq!(a, b, "same input must render byte-identical JSON");
        assert!(a.contains("\"version\": 2"));
        assert!(a.contains("\"checked_files\": 3"));
        assert!(a.contains("\"DET-HASH-ITER\": 1"));
        assert!(a.contains("\"PANIC-POLICY\": 0"), "zero counts are listed");
        assert!(a.contains("\"graph\": {"), "v2 carries graph stats");
        assert!(a.contains("\"taint_paths\": 0"));
        assert!(a.contains("clock \\\"read\\\""), "quotes are escaped");
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let r = Report {
            checked_files: 5,
            diagnostics: vec![],
            graph: GraphStats::default(),
        };
        assert!(r.render_json().contains("\"diagnostics\": []"));
        assert!(r.render_text().contains("no violations"));
    }
}
