//! A span-accurate Rust lexer for the invariant linter.
//!
//! The container this repo builds in has no crates.io access, so `syn` is
//! not available; the lint pass instead runs over a token stream produced
//! here. The lexer understands everything that can *hide* an identifier —
//! line and nested block comments, string/raw-string/byte-string and char
//! literals, lifetimes — so the rules in [`crate::rules`] never fire on
//! text inside a literal or comment, and never miss an identifier because
//! of one. That is the property the rules actually need; full expression
//! parsing is not.
//!
//! Two side products matter to the rules:
//!
//! * [`Allow`] records parsed `// lint:allow(RULE, reason = "...")`
//!   escape-hatch comments with their line numbers;
//! * inactive regions: tokens inside `#[cfg(test)]` / `#[cfg(loom)]` items
//!   (and files with a matching inner attribute) are marked inactive, since
//!   test-only and loom-model code is exempt from the runtime invariants.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
    /// Whether the token is live runtime code: `false` inside
    /// `#[cfg(test)]` / `#[cfg(loom)]` items.
    pub active: bool,
}

/// Token kinds the linter distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// A lifetime such as `'env` (kept distinct from char literals).
    Lifetime(String),
    /// Any literal: string, raw string, byte string, char, or number.
    /// Plain and raw string literals carry their (unescaped) text so the
    /// schema extractor can read emitted metric/JSON names; other literal
    /// kinds carry `None`.
    Literal(Option<String>),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The unescaped text, if this token is a plain or raw string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Literal(Some(s)) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is any literal.
    pub fn is_literal(&self) -> bool {
        matches!(self.kind, TokenKind::Literal(_))
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A parsed `lint:allow` escape-hatch comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule id being allowed, e.g. `DET-HASH-ITER`.
    pub rule: String,
    /// The justification string, empty when the comment omitted it.
    pub reason: String,
    /// 1-based line the comment appears on.
    pub line: usize,
    /// Whether the comment carried a non-empty `reason = "..."`.
    pub has_reason: bool,
}

/// The lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Escape-hatch comments in source order.
    pub allows: Vec<Allow>,
}

/// Lexes `source`, marking `#[cfg(test)]` / `#[cfg(loom)]` items inactive.
pub fn lex(source: &str) -> Lexed {
    let mut lx = RawLexer::new(source);
    let mut tokens = Vec::new();
    while let Some(tok) = lx.next_token() {
        tokens.push(tok);
    }
    mark_inactive(&mut tokens);
    Lexed {
        tokens,
        allows: lx.allows,
    }
}

struct RawLexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
    allows: Vec<Allow>,
}

impl<'a> RawLexer<'a> {
    fn new(source: &'a str) -> Self {
        RawLexer {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
            allows: Vec::new(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn peek2(&mut self) -> Option<char> {
        let mut clone = self.chars.clone();
        clone.next();
        clone.next()
    }

    fn next_token(&mut self) -> Option<Token> {
        loop {
            let c = self.peek()?;
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek2() == Some('/') => self.line_comment(),
                '/' if self.peek2() == Some('*') => self.block_comment(),
                '"' => {
                    let text = self.string_literal();
                    return Some(self.tok(TokenKind::Literal(Some(text)), line, col));
                }
                'r' if matches!(self.peek2(), Some('"') | Some('#')) && self.is_raw_string() => {
                    let text = self.raw_string_literal();
                    return Some(self.tok(TokenKind::Literal(Some(text)), line, col));
                }
                'b' if matches!(self.peek2(), Some('"')) => {
                    self.bump(); // b
                    self.string_literal();
                    return Some(self.tok(TokenKind::Literal(None), line, col));
                }
                'b' if matches!(self.peek2(), Some('\'')) => {
                    self.bump(); // b
                    self.char_literal();
                    return Some(self.tok(TokenKind::Literal(None), line, col));
                }
                '\'' => {
                    if let Some(tok) = self.lifetime_or_char(line, col) {
                        return Some(tok);
                    }
                }
                c if c.is_ascii_digit() => {
                    self.number_literal();
                    return Some(self.tok(TokenKind::Literal(None), line, col));
                }
                c if c.is_alphanumeric() || c == '_' => {
                    let ident = self.ident();
                    return Some(self.tok(TokenKind::Ident(ident), line, col));
                }
                c => {
                    self.bump();
                    return Some(self.tok(TokenKind::Punct(c), line, col));
                }
            }
        }
    }

    fn tok(&self, kind: TokenKind, line: usize, col: usize) -> Token {
        Token {
            kind,
            line,
            col,
            active: true,
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Only plain `//` comments carry annotations; `///` and `//!` doc
        // comments are documentation and may *mention* the syntax freely.
        let is_doc = matches!(text.chars().nth(2), Some('/' | '!'));
        if !is_doc {
            if let Some(allow) = parse_allow(&text, line) {
                self.allows.push(allow);
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    /// Consumes a `"..."` literal, returning its unescaped text.
    fn string_literal(&mut self) -> String {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('r') => text.push('\r'),
                    Some('t') => text.push('\t'),
                    Some('0') => text.push('\0'),
                    Some('u') => {
                        // `\u{hex}`: decode, or skip on malformed input.
                        let mut hex = String::new();
                        if self.peek() == Some('{') {
                            self.bump();
                            while let Some(h) = self.peek() {
                                if h == '}' {
                                    self.bump();
                                    break;
                                }
                                hex.push(h);
                                self.bump();
                            }
                        }
                        if let Some(decoded) =
                            u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                        {
                            text.push(decoded);
                        }
                    }
                    Some('\n') => {
                        // Line-continuation escape: skip leading whitespace.
                        while self.peek().is_some_and(|c| c.is_whitespace()) {
                            self.bump();
                        }
                    }
                    Some(e) => text.push(e),
                    None => break,
                },
                '"' => break,
                c => text.push(c),
            }
        }
        text
    }

    /// Whether the upcoming `r...` really starts a raw string (`r"`, `r#"`),
    /// as opposed to an identifier that merely starts with `r`.
    fn is_raw_string(&mut self) -> bool {
        let mut clone = self.chars.clone();
        clone.next(); // 'r'
        let mut c = clone.next();
        while c == Some('#') {
            c = clone.next();
        }
        c == Some('"')
    }

    /// Consumes an `r"..."` / `r#"..."#` literal, returning its text.
    fn raw_string_literal(&mut self) -> String {
        let mut text = String::new();
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return text;
                    }
                    text.push('"');
                    for _ in 0..seen {
                        text.push('#');
                    }
                }
                Some(c) => text.push(c),
                None => return text,
            }
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    /// Disambiguates a `'` between a lifetime (`'env`) and a char literal
    /// (`'a'`, `'\n'`): an identifier directly after the quote that is *not*
    /// closed by another quote is a lifetime.
    fn lifetime_or_char(&mut self, line: usize, col: usize) -> Option<Token> {
        let mut clone = self.chars.clone();
        clone.next(); // the quote
        let first = clone.next();
        match first {
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Walk the identifier; if it ends with a closing quote it
                // was a char literal like 'a'.
                let n = clone.clone();
                let mut len = 1;
                let mut closed = false;
                for nc in n {
                    if nc.is_alphanumeric() || nc == '_' {
                        len += 1;
                    } else {
                        closed = nc == '\'';
                        break;
                    }
                }
                if closed && len == 1 {
                    self.char_literal();
                    Some(self.tok(TokenKind::Literal(None), line, col))
                } else {
                    self.bump(); // quote
                    let ident = self.ident();
                    Some(self.tok(TokenKind::Lifetime(ident), line, col))
                }
            }
            _ => {
                self.char_literal();
                Some(self.tok(TokenKind::Literal(None), line, col))
            }
        }
    }

    fn number_literal(&mut self) {
        while let Some(c) = self.peek() {
            // Good enough for spans: consume digits, radix letters, `_`,
            // `.` followed by a digit, and exponent signs.
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' {
                match self.peek2() {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
    }
}

/// Parses `lint:allow(RULE)` / `lint:allow(RULE, reason = "...")` out of a
/// line comment's text.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let idx = comment.find("lint:allow(")?;
    let rest = &comment[idx + "lint:allow(".len()..];
    // The rule id runs to the first `,` or `)`. The reason, when present,
    // is a double-quoted string that may itself contain `(`/`)`/`,` — so it
    // is parsed by its quotes, not by the closing paren.
    let rule_end = rest.find([',', ')'])?;
    let rule = rest[..rule_end].trim();
    let reason = if rest[rule_end..].starts_with(',') {
        rest[rule_end + 1..]
            .trim_start()
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.split('"').next())
            .unwrap_or("")
            .to_string()
    } else {
        String::new()
    };
    let has_reason = !reason.is_empty();
    Some(Allow {
        rule: rule.to_string(),
        reason,
        line,
        has_reason,
    })
}

/// Marks tokens inside `#[cfg(test)]` / `#[cfg(loom)]` items as inactive.
///
/// Also handles the inner-attribute form `#![cfg(loom)]`, which deactivates
/// the whole file. The "item" following an exempting attribute extends over
/// any further attributes, up to and including its brace block (or a `;`
/// that arrives before any brace — e.g. a gated `use`).
fn mark_inactive(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // `#![cfg(...)]` — inner attribute: whole file.
        let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let bracket = if inner { i + 2 } else { i + 1 };
        if !tokens.get(bracket).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(end) = matching_bracket(tokens, bracket) else {
            i += 1;
            continue;
        };
        if !attr_is_exempting_cfg(&tokens[bracket + 1..end]) {
            i = bracket + 1;
            continue;
        }
        if inner {
            for t in tokens.iter_mut() {
                t.active = false;
            }
            return;
        }
        // Attribute applies to the following item: deactivate through the
        // end of its block (or terminating semicolon).
        let item_end = item_end(tokens, end + 1);
        for t in &mut tokens[i..item_end] {
            t.active = false;
        }
        i = item_end;
    }
}

/// Whether the attribute tokens (inside `[...]`) are a `cfg(...)` whose
/// predicate mentions `test` or `loom`.
fn attr_is_exempting_cfg(attr: &[Token]) -> bool {
    if attr.first().and_then(Token::ident) != Some("cfg") {
        return false;
    }
    attr.iter()
        .filter_map(Token::ident)
        .any(|id| id == "test" || id == "loom")
}

/// Public view of [`matching_bracket`] for the rules pass (clippy-allow
/// attribute spans in `PANIC-POLICY`).
pub fn matching_bracket_pub(tokens: &[Token], open: usize) -> Option<usize> {
    matching_bracket(tokens, open)
}

/// Public view of [`item_end`] for the rules pass.
pub fn item_end_pub(tokens: &[Token], start: usize) -> usize {
    item_end(tokens, start)
}

/// Index of the matching `]`/`}`/`)` for the opener at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens[open].kind {
        TokenKind::Punct('[') => ('[', ']'),
        TokenKind::Punct('{') => ('{', '}'),
        TokenKind::Punct('(') => ('(', ')'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// End index (exclusive) of the item starting at `start`: skips further
/// attributes, then runs to the close of the first brace block, or to a
/// top-level `;` if one comes first.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes.
    while i < tokens.len() && tokens[i].is_punct('#') {
        if let Some(close) = tokens
            .get(i + 1)
            .filter(|t| t.is_punct('['))
            .and_then(|_| matching_bracket(tokens, i + 1))
        {
            i = close + 1;
        } else {
            break;
        }
    }
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct(';') {
            return i + 1;
        }
        if t.is_punct('{') {
            return matching_bracket(tokens, i).map_or(tokens.len(), |c| c + 1);
        }
        // Skip parenthesized/bracketed groups (where `;` can legally occur,
        // e.g. `[0u8; 4]` in a signature default) without ending the item.
        if t.is_punct('(') || t.is_punct('[') {
            i = matching_bracket(tokens, i).map_or(tokens.len(), |c| c + 1);
            continue;
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<(&str, bool)> {
        lexed
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(|s| (s, t.active)))
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap<_, _>";
            let r = r#"HashMap"#;
            let c = 'H';
            fn f<'env>(x: &'env str) {}
        "##;
        let lexed = lex(src);
        assert!(idents(&lexed).iter().all(|(s, _)| *s != "HashMap"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Lifetime(l) if l == "env")));
    }

    #[test]
    fn spans_are_line_and_column_accurate() {
        let src = "fn main() {\n    let map = HashMap::new();\n}\n";
        let lexed = lex(src);
        let tok = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("HashMap"))
            .unwrap();
        assert_eq!((tok.line, tok.col), (2, 15));
    }

    #[test]
    fn cfg_test_items_are_inactive() {
        let src = r#"
            fn live() { thread_rng(); }
            #[cfg(test)]
            mod tests {
                fn gated() { thread_rng(); }
            }
            fn live_again() {}
        "#;
        let lexed = lex(src);
        let rngs: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.ident() == Some("thread_rng"))
            .map(|t| t.active)
            .collect();
        assert_eq!(rngs, vec![true, false]);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.ident() == Some("live_again") && t.active));
    }

    #[test]
    fn cfg_loom_and_inner_attributes_deactivate() {
        let gated = lex("#[cfg(loom)]\nfn model() { spawn(); }\nfn live() {}");
        let spawn = gated
            .tokens
            .iter()
            .find(|t| t.ident() == Some("spawn"))
            .unwrap();
        assert!(!spawn.active);
        let whole = lex("#![cfg(loom)]\nfn anything() { spawn(); }");
        assert!(whole.tokens.iter().all(|t| !t.active));
    }

    #[test]
    fn allow_comments_parse_rule_and_reason() {
        let src = "// lint:allow(DET-HASH-ITER, reason = \"lookup only\")\nlet x = 1;\n// lint:allow(DET-RNG)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "DET-HASH-ITER");
        assert_eq!(lexed.allows[0].reason, "lookup only");
        assert!(lexed.allows[0].has_reason);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[1].rule, "DET-RNG");
        assert!(!lexed.allows[1].has_reason);
    }

    #[test]
    fn allow_reasons_may_contain_parens_and_commas() {
        let src = "// lint:allow(DET-HASH-ITER, reason = \"keyed O(1) lookup, never iterated (see field doc)\")\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].has_reason);
        assert_eq!(
            lexed.allows[0].reason,
            "keyed O(1) lookup, never iterated (see field doc)"
        );
    }

    #[test]
    fn doc_comments_do_not_carry_annotations() {
        let src = "/// mentions lint:allow(DET-RNG, reason = \"docs\") in prose\n//! and lint:allow(DET-RNG) here\nfn f() {}\n";
        assert!(lex(src).allows.is_empty());
    }

    #[test]
    fn raw_identifier_prefix_r_is_not_a_raw_string() {
        let lexed = lex("let radius = r_values[0];");
        assert!(lexed.tokens.iter().any(|t| t.ident() == Some("r_values")));
    }
}
