//! CLI entry point for `cargo xtask`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => check(&args[1..], xtask::run_lint, "lint"),
        Some("analyze") => check(&args[1..], xtask::run_analyze, "analyze"),
        Some("schema") => schema(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint [--json] [PATH...]   check determinism/concurrency invariants:
                            per-file token rules, the item-graph rules
                            (taint, lock order, float comparators, event
                            exhaustiveness), and the schema lock (default
                            PATH: crates/). --json writes the stable v2
                            machine-readable report to stdout. Exits 0
                            when clean, 1 on violations.
  lint --table              print the per-rule allowed-paths/scope table
                            (the workspace's nondeterminism boundary).
  analyze [--json] [PATH...]
                            the item-graph analysis alone: graph rules and
                            the schema lock, without the token rules.
  schema                    print the generated emitted-schema lock text.
  schema --check            fail (exit 1) if schema.lock drifted from the
                            emitter sources.
  schema --write            regenerate schema.lock from the sources.
";

fn workspace_root() -> Result<PathBuf, ExitCode> {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask: cannot determine working directory: {e}");
            return Err(ExitCode::from(2));
        }
    };
    match xtask::find_workspace_root(&cwd) {
        Some(w) => Ok(w),
        None => {
            eprintln!("xtask: no workspace Cargo.toml above {}", cwd.display());
            Err(ExitCode::from(2))
        }
    }
}

type Runner = fn(&Path, &[PathBuf]) -> std::io::Result<xtask::report::Report>;

fn check(args: &[String], run: Runner, task: &str) -> ExitCode {
    let mut json = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--table" => {
                print!("{}", xtask::rules::render_allowed_paths());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("xtask {task}: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots = xtask::default_roots();
    }
    let workspace = match workspace_root() {
        Ok(w) => w,
        Err(code) => return code,
    };
    match run(&workspace, &roots) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask {task}: {e}");
            ExitCode::from(2)
        }
    }
}

fn schema(args: &[String]) -> ExitCode {
    let mode = match args.first().map(String::as_str) {
        None => "print",
        Some("--check") => "check",
        Some("--write") => "write",
        Some("--help" | "-h") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("xtask schema: unknown argument `{other}`");
            return ExitCode::from(2);
        }
    };
    let workspace = match workspace_root() {
        Ok(w) => w,
        Err(code) => return code,
    };
    let outcome = match mode {
        "print" => xtask::schema::extract_workspace(&workspace).map(|entries| {
            print!("{}", xtask::schema::render_lock(&entries));
            ExitCode::SUCCESS
        }),
        "write" => xtask::schema::write_lock(&workspace).map(|n| {
            println!("xtask schema: wrote {} entries to schema.lock", n);
            ExitCode::SUCCESS
        }),
        _ => xtask::schema::check(&workspace).map(|(diags, entries)| {
            if diags.is_empty() {
                println!("xtask schema: schema.lock is in sync ({entries} entries)");
                ExitCode::SUCCESS
            } else {
                for d in &diags {
                    println!("{}:{}:{}: {}: {}", d.file, d.line, d.col, d.rule, d.message);
                }
                println!("xtask schema: {} drift finding(s)", diags.len());
                ExitCode::FAILURE
            }
        }),
    };
    outcome.unwrap_or_else(|e| {
        eprintln!("xtask schema: {e}");
        ExitCode::from(2)
    })
}
