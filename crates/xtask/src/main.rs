//! CLI entry point for `cargo xtask`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint [--json] [PATH...]   check determinism/concurrency invariants
                            (default PATH: crates/). --json writes the
                            stable machine-readable report to stdout.
                            Exits 0 when clean, 1 on violations.
  lint --table              print the per-rule allowed-paths table (the
                            workspace's nondeterminism boundary) and exit.
";

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--table" => {
                print!("{}", xtask::rules::render_allowed_paths());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("xtask lint: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots = xtask::default_roots();
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(workspace) = xtask::find_workspace_root(&cwd) else {
        eprintln!(
            "xtask lint: no workspace Cargo.toml above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    match xtask::run_lint(&workspace, &roots) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}
