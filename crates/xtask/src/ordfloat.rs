//! `ORD-TOTAL-FLOAT`: float comparators must impose a total order.
//!
//! `partial_cmp` inside a `sort_by` / `max_by` / `min_by` comparator
//! returns `None` on NaN, and the usual `.unwrap()`/`.expect()` escape
//! turns a single NaN — which the power-blackout fault injection *does*
//! produce — into a panic or, worse, an `Ordering` that varies with
//! element order. Decision-path crates and the bench/sweep reporting
//! layers must compare floats with `f64::total_cmp` (total order over all
//! bit patterns) or reduce through `util::reduce::best`.

use crate::lexer::Token;
use crate::rules::{Diagnostic, FileContext};

/// Comparator-taking methods whose closure is checked.
const COMPARATOR_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "select_nth_unstable_by",
];

/// Crates outside the decision path whose float comparisons still shape
/// published artifacts (bench tables, sweep summaries).
const EXTRA_CRATES: &[&str] = &["bench", "sweep"];

/// Runs the rule over one file's tokens.
pub fn check(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let in_scope = ctx.decision_path()
        || ctx.crate_name.is_some_and(|c| EXTRA_CRATES.contains(&c));
    if !in_scope {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.active {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if !COMPARATOR_FNS.contains(&name) {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|t| t.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        let close = crate::lexer::matching_bracket_pub(tokens, open).unwrap_or(open);
        for j in open..=close {
            if tokens[j].ident() == Some("partial_cmp") {
                out.push(Diagnostic {
                    rule: "ORD-TOTAL-FLOAT",
                    file: ctx.path.to_string(),
                    line: tokens[j].line,
                    col: tokens[j].col,
                    message: format!(
                        "`partial_cmp` inside `{name}`: NaN breaks the comparator (panic \
                         or order-dependent result). Compare with `f64::total_cmp`, or \
                         reduce through `util::reduce::best`"
                    ),
                });
            }
        }
    }
}
