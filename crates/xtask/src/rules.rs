//! The determinism/concurrency invariant rules.
//!
//! Each rule is a named pass over the token stream of one file (see
//! [`crate::lexer`]); every hit becomes a [`Diagnostic`] with a
//! span-accurate `file:line:col`. A hit is suppressed by an inline
//! `// lint:allow(<RULE>, reason = "...")` on the same line or the line
//! directly above — and the reason is mandatory: an allow without one is
//! itself reported (`LINT-ALLOW-REASON`), as is an allow naming an unknown
//! rule (`LINT-UNKNOWN-RULE`).
//!
//! The rule catalogue (rationale in DESIGN.md §8):
//!
//! | id | scope | invariant |
//! |----|-------|-----------|
//! | `DET-HASH-ITER` | decision-path crates | no `HashMap`/`HashSet`: hasher order must not reach SGD sample streams or plans; iterated maps are `BTreeMap`, lookup-only maps carry an allow |
//! | `DET-WALLCLOCK` | all but its [`ALLOWED_PATHS`] row | no `Instant::now` / `SystemTime` reads in stage logic |
//! | `DET-RAW-SPAWN` | all but its [`ALLOWED_PATHS`] row | no raw `std::thread` / `crossbeam::scope` / `rayon`; parallelism goes through the shared `WorkerPool` |
//! | `DET-RNG` | workspace | all randomness is seeded through `util::rng64` / `StdRng::seed_from_u64`; ambient entropy (`thread_rng`, `from_entropy`, `OsRng`) is banned |
//! | `DET-FLOAT-REDUCE` | decision-path crates | no atomic float accumulation (`fetch_*` over `to_bits`/`from_bits`) or `Mutex<f64>` accumulators; reductions go through `util::reduce` |
//! | `PANIC-POLICY` | decision-path crates | `.unwrap()` / `.expect()` are deny-by-default; each use carries an allow or a clippy `allow(clippy::unwrap_used/expect_used)` with rationale |

use crate::lexer::{lex, Allow, Token};

/// Crates whose source participates in decisions the golden record pins.
/// `cluster` joined when the coordinator landed: cross-node placement,
/// migration, and balancing decide what every node runs, so they are as
/// record-pinned as the per-node decision loop.
pub const DECISION_PATH_CRATES: &[&str] = &["core", "dds", "recsys", "simulator", "cluster"];

/// One rule's path-level exemptions: which files may violate it, and why.
pub struct AllowedPaths {
    /// The rule id these paths are exempt from.
    pub rule: &'static str,
    /// Path fragments (workspace-relative, `/` separators); a file whose
    /// path contains any fragment is exempt.
    pub paths: &'static [&'static str],
    /// Why the exemption exists — rendered by `cargo xtask lint --table`.
    pub rationale: &'static str,
}

/// The per-rule allowed-paths table. This is the workspace's *entire*
/// nondeterminism boundary, in one place: a file not named here obeys
/// every rule (or carries an inline, reasoned `lint:allow`). Growing this
/// table is an architectural decision, not a lint chore.
pub const ALLOWED_PATHS: &[AllowedPaths] = &[
    AllowedPaths {
        rule: "DET-WALLCLOCK",
        paths: &[
            "crates/bench/",
            "crates/core/src/telemetry.rs",
            "crates/service/src/pacing.rs",
            "crates/sweep/src/bin/",
        ],
        rationale: "telemetry and benching are what wall clocks are *for*, and the \
                    service's quantum pacing is the one place live time enters; the \
                    sweep CLI times its run for the console footer only — nothing \
                    timed reaches summary.json; none may feed back into stage logic",
    },
    AllowedPaths {
        rule: "DET-RAW-SPAWN",
        paths: &[
            "crates/util/src/pool.rs",
            "crates/service/src/reactor.rs",
            "crates/service/src/http.rs",
        ],
        rationale: "the worker pool owns the deterministic fan-out threads; the \
                    service's reactor and scrape endpoint own its two long-lived \
                    threads — everything else goes through `util::pool::WorkerPool`",
    },
    AllowedPaths {
        rule: "DET-TAINT",
        paths: &[
            "crates/bench/",
            "crates/sweep/src/bin/",
            "crates/service/src/pacing.rs",
        ],
        rationale: "bench binaries time and report their own runs; the sweep CLI's \
                    clock feeds only the console footer; pacing's clock bounds \
                    *when* a quantum runs, never what it decides — none of these \
                    clock reads count as taint sources",
    },
    AllowedPaths {
        rule: "ORD-TOTAL-FLOAT",
        paths: &[],
        rationale: "scope: decision-path crates plus the bench/sweep reporting \
                    layers; no path is exempt — float comparators use \
                    `f64::total_cmp` or `util::reduce::best` everywhere",
    },
    AllowedPaths {
        rule: "EVT-EXHAUSTIVE",
        paths: &[],
        rationale: "scope: `service` and `sweep` event consumers/renderers; no \
                    path is exempt — a `_` arm over `ControlEvent`/`ClusterEvent` \
                    silently swallows events added later",
    },
    AllowedPaths {
        rule: "SCHEMA-LOCK",
        paths: &[],
        rationale: "scope: the emitter files named in `schema.rs`; the committed \
                    schema.lock is the only sanctioned drift mechanism — update it \
                    with `cargo xtask schema --write` in the same change",
    },
    AllowedPaths {
        rule: "LOCK-ORDER",
        paths: &[],
        rationale: "scope: whole workspace; lock-acquisition order must be \
                    acyclic — there is no path where a deadlock is acceptable",
    },
];

/// The exempt path fragments for `rule` (empty for rules with no
/// path-level exemptions).
pub fn allowed_paths(rule: &str) -> &'static [&'static str] {
    ALLOWED_PATHS
        .iter()
        .find(|entry| entry.rule == rule)
        .map_or(&[], |entry| entry.paths)
}

/// Renders the allowed-paths table (`cargo xtask lint --table`).
pub fn render_allowed_paths() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for entry in ALLOWED_PATHS {
        let _ = writeln!(out, "{}", entry.rule);
        for path in entry.paths {
            let _ = writeln!(out, "  {path}");
        }
        let _ = writeln!(out, "  ({})", entry.rationale);
    }
    out
}

/// Every rule id this linter knows, in report order.
pub const RULE_IDS: &[&str] = &[
    "DET-HASH-ITER",
    "DET-WALLCLOCK",
    "DET-RAW-SPAWN",
    "DET-RNG",
    "DET-FLOAT-REDUCE",
    "PANIC-POLICY",
    "DET-TAINT",
    "ORD-TOTAL-FLOAT",
    "EVT-EXHAUSTIVE",
    "SCHEMA-LOCK",
    "LOCK-ORDER",
    "LINT-ALLOW-REASON",
    "LINT-UNKNOWN-RULE",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, e.g. `DET-HASH-ITER`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// What the linter knows about the file being checked.
pub struct FileContext<'a> {
    /// Workspace-relative path, with `/` separators.
    pub path: &'a str,
    /// The `crates/<name>` the file belongs to, if any.
    pub crate_name: Option<&'a str>,
}

impl FileContext<'_> {
    /// Whether the file belongs to a [`DECISION_PATH_CRATES`] crate.
    pub fn decision_path(&self) -> bool {
        self.crate_name
            .is_some_and(|c| DECISION_PATH_CRATES.contains(&c))
    }

    fn in_list(&self, list: &[&str]) -> bool {
        list.iter().any(|frag| self.path.contains(frag))
    }
}

/// Derives the `crates/<name>` component from a workspace-relative path.
pub fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Lints one file's source text. Returns the surviving diagnostics
/// (allow-suppressed hits removed) plus diagnostics for malformed allows.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let ctx = FileContext {
        path,
        crate_name: crate_of(path),
    };
    let lexed = lex(source);
    let mut raw = Vec::new();
    det_hash_iter(&ctx, &lexed.tokens, &mut raw);
    det_wallclock(&ctx, &lexed.tokens, &mut raw);
    det_raw_spawn(&ctx, &lexed.tokens, &mut raw);
    det_rng(&ctx, &lexed.tokens, &mut raw);
    det_float_reduce(&ctx, &lexed.tokens, &mut raw);
    panic_policy(&ctx, &lexed.tokens, &mut raw);

    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !is_allowed(&lexed.allows, d))
        .collect();
    allow_hygiene(&ctx, &lexed.allows, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// An allow suppresses a hit of its rule on its own line, the line below,
/// or — so several rules can be allowed for one site — any line reached
/// from the allow through an unbroken run of further allow-comment lines
/// (a *stacked* allow block annotates the first code line after it).
fn is_allowed(allows: &[Allow], d: &Diagnostic) -> bool {
    use std::collections::BTreeSet;
    let allow_lines: BTreeSet<usize> = allows.iter().map(|a| a.line).collect();
    allows.iter().any(|a| {
        a.rule == d.rule
            && a.has_reason
            && (a.line == d.line
                || (a.line < d.line && (a.line + 1..d.line).all(|l| allow_lines.contains(&l))))
    })
}

/// Applies [`is_allowed`] suppression to a batch of diagnostics produced
/// outside `lint_source` (the graph rules lex files themselves).
pub fn suppress(allows: &[Allow], diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| !is_allowed(allows, d))
        .collect()
}

/// Reports allows that are missing a reason or name an unknown rule.
fn allow_hygiene(ctx: &FileContext, allows: &[Allow], out: &mut Vec<Diagnostic>) {
    for a in allows {
        if !RULE_IDS.contains(&a.rule.as_str()) {
            out.push(Diagnostic {
                rule: "LINT-UNKNOWN-RULE",
                file: ctx.path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "lint:allow names unknown rule `{}`; known rules: {}",
                    a.rule,
                    RULE_IDS.join(", ")
                ),
            });
        } else if !a.has_reason {
            out.push(Diagnostic {
                rule: "LINT-ALLOW-REASON",
                file: ctx.path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "lint:allow({}) must carry a reason: `lint:allow({}, reason = \"...\")`",
                    a.rule, a.rule
                ),
            });
        }
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    ctx: &FileContext,
    tok: &Token,
    rule: &'static str,
    message: String,
) {
    out.push(Diagnostic {
        rule,
        file: ctx.path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
    });
}

/// Active identifier tokens, with their index into `tokens`.
fn active_idents<'a>(
    tokens: &'a [Token],
) -> impl Iterator<Item = (usize, &'a Token, &'a str)> + 'a {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.active)
        .filter_map(|(i, t)| t.ident().map(|s| (i, t, s)))
}

/// Whether token `i` sits inside a `use` declaration (between a `use`
/// keyword and its terminating `;`). Imports alone are not hazards; uses
/// at expression sites are what the rules flag.
fn in_use_decl(tokens: &[Token], i: usize) -> bool {
    // Scan back to the nearest `;`, `{`, or `}` that is *not* part of a
    // use-tree, looking for the `use` keyword.
    let mut j = i;
    let mut brace_depth = 0i32;
    loop {
        if j == 0 {
            return false;
        }
        j -= 1;
        let t = &tokens[j];
        match &t.kind {
            k if *k == crate::lexer::TokenKind::Punct('}') => brace_depth += 1,
            k if *k == crate::lexer::TokenKind::Punct('{') => {
                if brace_depth == 0 {
                    // An un-matched `{` opening before us: a use-tree brace
                    // keeps scanning; a block brace means no `use`.
                    // Distinguish by what precedes: use-trees follow `::`.
                    if j >= 1 && tokens[j - 1].is_punct(':') {
                        continue;
                    }
                    return false;
                }
                brace_depth -= 1;
            }
            k if *k == crate::lexer::TokenKind::Punct(';') => return false,
            _ => {
                if t.ident() == Some("use") {
                    return true;
                }
            }
        }
    }
}

/// `seq_follows(tokens, i, &["::", "now"])`-style helper: whether the
/// tokens after `i` match the given idents separated by `::`. Shared with
/// the graph rules (`taint.rs`), which detect the same clock-read shapes.
pub fn path_follows(tokens: &[Token], i: usize, segments: &[&str]) -> bool {
    let mut j = i + 1;
    for seg in segments {
        if !(tokens.get(j).is_some_and(|t| t.is_punct(':'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(':')))
        {
            return false;
        }
        j += 2;
        if tokens.get(j).and_then(Token::ident) != Some(*seg) {
            return false;
        }
        j += 1;
    }
    true
}

fn det_hash_iter(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !ctx.decision_path() {
        return;
    }
    for (i, tok, name) in active_idents(tokens) {
        if (name == "HashMap" || name == "HashSet") && !in_use_decl(tokens, i) {
            push(
                out,
                ctx,
                tok,
                "DET-HASH-ITER",
                format!(
                    "`{name}` in a decision-path crate: hasher order is per-process random and \
                     must not reach training-sample or plan order. Iterated maps must be \
                     `BTreeMap`; a provably lookup-only map needs \
                     `lint:allow(DET-HASH-ITER, reason = \"...\")`"
                ),
            );
        }
    }
}

fn det_wallclock(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if ctx.in_list(allowed_paths("DET-WALLCLOCK")) {
        return;
    }
    for (i, tok, name) in active_idents(tokens) {
        let hit = match name {
            "Instant" => path_follows(tokens, i, &["now"]),
            "SystemTime" => {
                path_follows(tokens, i, &["now"]) || path_follows(tokens, i, &["UNIX_EPOCH"])
            }
            _ => false,
        };
        if hit {
            push(
                out,
                ctx,
                tok,
                "DET-WALLCLOCK",
                format!(
                    "`{name}` reads the wall clock outside the telemetry/bench allowlist; \
                     stage logic must be a pure function of its inputs (simulated time lives \
                     in the slice index). Timing for telemetry carries \
                     `lint:allow(DET-WALLCLOCK, reason = \"...\")`"
                ),
            );
        }
    }
}

fn det_raw_spawn(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if ctx.in_list(allowed_paths("DET-RAW-SPAWN")) {
        return;
    }
    for (i, tok, name) in active_idents(tokens) {
        let hit = match name {
            "thread" => {
                path_follows(tokens, i, &["spawn"])
                    || path_follows(tokens, i, &["scope"])
                    || path_follows(tokens, i, &["Builder"])
            }
            "crossbeam" => path_follows(tokens, i, &["scope"]),
            "rayon" => true,
            _ => false,
        };
        if hit {
            push(
                out,
                ctx,
                tok,
                "DET-RAW-SPAWN",
                format!(
                    "raw thread machinery (`{name}`): all fan-out goes through \
                     `util::pool::WorkerPool`, whose helping wait and worker-ordered \
                     scopes the loom models cover. A reference back-end kept for \
                     cross-checks carries `lint:allow(DET-RAW-SPAWN, reason = \"...\")`"
                ),
            );
        }
    }
}

fn det_rng(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, tok, name) in active_idents(tokens) {
        let hit = matches!(
            name,
            "thread_rng" | "from_entropy" | "OsRng" | "from_os_rng"
        ) || (name == "rand" && path_follows(tokens, i, &["random"]));
        if hit {
            push(
                out,
                ctx,
                tok,
                "DET-RNG",
                format!(
                    "`{name}` draws ambient OS entropy; every random value must derive \
                     from an explicit seed via `util::rng64` (counter-based streams) or \
                     `StdRng::seed_from_u64`, or replays stop replaying"
                ),
            );
        }
    }
}

fn det_float_reduce(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !ctx.decision_path() {
        return;
    }
    // Gate: only files that move floats through atomic bit patterns can
    // accumulate floats atomically. (Plain `AtomicUsize` counters and
    // HOGWILD's racy load/store are fine; CAS/fetch accumulation is not.)
    let touches_float_bits =
        active_idents(tokens).any(|(_, _, name)| name == "to_bits" || name == "from_bits");
    for (i, tok, name) in active_idents(tokens) {
        let fetch_hit = touches_float_bits
            && matches!(
                name,
                "fetch_add"
                    | "fetch_sub"
                    | "fetch_update"
                    | "compare_exchange"
                    | "compare_exchange_weak"
            );
        let mutex_f64_hit = name == "Mutex"
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('<'))
            && tokens.get(i + 2).and_then(Token::ident) == Some("f64");
        if fetch_hit || mutex_f64_hit {
            push(
                out,
                ctx,
                tok,
                "DET-FLOAT-REDUCE",
                format!(
                    "`{name}` looks like a shared float accumulator: parallel float \
                     reduction is completion-order-dependent. Deposit per-worker \
                     partials and fold them with `util::reduce` (worker-index order) \
                     after the scope barrier"
                ),
            );
        }
    }
}

fn panic_policy(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !ctx.decision_path() {
        return;
    }
    let clippy_covered = clippy_allow_spans(tokens);
    for (i, tok, name) in active_idents(tokens) {
        if name != "unwrap" && name != "expect" {
            continue;
        }
        // Only method calls: `.unwrap(` / `.expect(`.
        let is_method = i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_method {
            continue;
        }
        if clippy_covered
            .iter()
            .any(|&(start, end)| i >= start && i < end)
        {
            continue;
        }
        push(
            out,
            ctx,
            tok,
            "PANIC-POLICY",
            format!(
                "`.{name}()` in a decision-path crate: the runtime degrades through \
                 `Result` + the circuit breaker instead of panicking. Either return a \
                 `StageError`, or document the invariant with \
                 `lint:allow(PANIC-POLICY, reason = \"...\")` or a commented \
                 `#[allow(clippy::{name}_used)]`"
            ),
        );
    }
}

/// Token index ranges covered by `#[allow(clippy::unwrap_used)]` /
/// `#[allow(clippy::expect_used)]` attributes (the PR-3 documented-panic
/// convention): the attribute's item is exempt.
fn clippy_allow_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let bracket = if inner { i + 2 } else { i + 1 };
        let Some(end) = tokens
            .get(bracket)
            .filter(|t| t.is_punct('['))
            .and_then(|_| crate::lexer::matching_bracket_pub(tokens, bracket))
        else {
            i += 1;
            continue;
        };
        let attr = &tokens[bracket + 1..end];
        let is_allow = attr.first().and_then(Token::ident) == Some("allow");
        let covers = attr
            .iter()
            .filter_map(Token::ident)
            .any(|s| s == "unwrap_used" || s == "expect_used");
        if is_allow && covers {
            if inner {
                spans.push((0, tokens.len()));
            } else {
                spans.push((end + 1, crate::lexer::item_end_pub(tokens, end + 1)));
            }
        }
        i = end + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_iter_fires_only_in_decision_path_crates() {
        let src = "fn f() { let m: HashMap<u32, f64> = HashMap::new(); }";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec!["DET-HASH-ITER", "DET-HASH-ITER"]
        );
        assert!(rules_hit("crates/workloads/src/x.rs", src).is_empty());
    }

    #[test]
    fn use_declarations_are_not_flagged() {
        let src = "use std::collections::HashMap;\nuse std::collections::{BTreeMap, HashSet};\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_reports() {
        let with = "// lint:allow(DET-HASH-ITER, reason = \"lookup only\")\nlet m: HashMap<u32, f64> = make();";
        assert_eq!(rules_hit("crates/core/src/x.rs", with), Vec::<&str>::new());
        let without = "// lint:allow(DET-HASH-ITER)\nlet m: HashMap<u32, f64> = make();";
        let hits = rules_hit("crates/core/src/x.rs", without);
        assert!(hits.contains(&"LINT-ALLOW-REASON"));
        assert!(hits.contains(&"DET-HASH-ITER"));
    }

    #[test]
    fn stacked_allows_cover_the_first_code_line_below_the_block() {
        // Two rules fire on one line; a stacked pair of allows covers both.
        let src = "\
// lint:allow(DET-HASH-ITER, reason = \"lookup only\")\n\
// lint:allow(PANIC-POLICY, reason = \"len checked above\")\n\
let v = table.get::<HashMap<u32, f64>>().unwrap();";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), Vec::<&str>::new());
        // The chain breaks at the first non-allow line: an allow two lines
        // up with code in between does not leak downward.
        let gapped = "\
// lint:allow(DET-HASH-ITER, reason = \"lookup only\")\n\
let a = 1;\n\
let m: HashMap<u32, f64> = make();";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", gapped),
            vec!["DET-HASH-ITER"]
        );
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// lint:allow(DET-NOPE, reason = \"x\")\nfn f() {}";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec!["LINT-UNKNOWN-RULE"]
        );
    }

    #[test]
    fn wallclock_respects_the_allowed_paths_table() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec!["DET-WALLCLOCK"]
        );
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/core/src/telemetry.rs", src).is_empty());
        // The service's pacing module is the one clock-reading service file.
        assert!(rules_hit("crates/service/src/pacing.rs", src).is_empty());
        assert_eq!(
            rules_hit("crates/service/src/lib.rs", src),
            vec!["DET-WALLCLOCK"]
        );
        // The type alone (a parameter) is not a clock read.
        assert!(rules_hit("crates/core/src/x.rs", "fn g(t: Instant) {}").is_empty());
    }

    #[test]
    fn the_allowed_paths_table_names_only_known_rules() {
        for entry in ALLOWED_PATHS {
            assert!(RULE_IDS.contains(&entry.rule), "{}", entry.rule);
            // Graph rules may have no exempt paths; their row still
            // documents the scope boundary for `lint --table`.
            assert!(
                !entry.rationale.is_empty(),
                "{} lacks rationale",
                entry.rule
            );
        }
        assert!(allowed_paths("DET-RNG").is_empty());
        let rendered = render_allowed_paths();
        assert!(rendered.contains("DET-WALLCLOCK"));
        assert!(rendered.contains("crates/service/src/pacing.rs"));
    }

    #[test]
    fn raw_spawn_fires_everywhere_but_the_spawn_boundary() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_hit("crates/workloads/src/x.rs", src),
            vec!["DET-RAW-SPAWN"]
        );
        assert!(rules_hit("crates/util/src/pool.rs", src).is_empty());
        // The service's two thread owners are on the table; the rest of the
        // service crate is not.
        assert!(rules_hit("crates/service/src/reactor.rs", src).is_empty());
        assert!(rules_hit("crates/service/src/http.rs", src).is_empty());
        assert_eq!(
            rules_hit("crates/service/src/lib.rs", src),
            vec!["DET-RAW-SPAWN"]
        );
        assert_eq!(
            rules_hit(
                "crates/dds/src/x.rs",
                "fn f() { crossbeam::scope(|s| {}); }"
            ),
            vec!["DET-RAW-SPAWN"]
        );
    }

    #[test]
    fn rng_bans_ambient_entropy_workspace_wide() {
        assert_eq!(
            rules_hit("crates/workloads/src/x.rs", "let mut r = thread_rng();"),
            vec!["DET-RNG"]
        );
        assert_eq!(
            rules_hit("crates/bench/src/x.rs", "let r = StdRng::from_entropy();"),
            vec!["DET-RNG"]
        );
        assert!(rules_hit("crates/dds/src/x.rs", "let r = StdRng::seed_from_u64(7);").is_empty());
    }

    #[test]
    fn float_reduce_needs_the_bitcast_gate() {
        let accum = "fn f(a: &AtomicU64) { a.fetch_add(1.0f64.to_bits(), O); }";
        assert_eq!(
            rules_hit("crates/recsys/src/x.rs", accum),
            vec!["DET-FLOAT-REDUCE"]
        );
        // Integer counters without float bitcasts are fine.
        let counter = "fn f(a: &AtomicUsize) { a.fetch_add(1, O); }";
        assert!(rules_hit("crates/recsys/src/x.rs", counter).is_empty());
        let mutexed = "struct S { acc: Mutex<f64> }";
        assert_eq!(
            rules_hit("crates/dds/src/x.rs", mutexed),
            vec!["DET-FLOAT-REDUCE"]
        );
    }

    #[test]
    fn panic_policy_honors_clippy_allows_and_test_mods() {
        let bare = "fn f() { x.unwrap(); }";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", bare),
            vec!["PANIC-POLICY"]
        );
        let clippy = "#[allow(clippy::unwrap_used)]\nfn f() { x.unwrap(); }";
        assert!(rules_hit("crates/core/src/x.rs", clippy).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }";
        assert!(rules_hit("crates/core/src/x.rs", test_mod).is_empty());
        // `unwrap_or` is not unwrap.
        assert!(rules_hit("crates/core/src/x.rs", "fn f() { x.unwrap_or(0); }").is_empty());
        assert!(rules_hit("crates/workloads/src/x.rs", bare).is_empty());
    }

    #[test]
    fn diagnostics_carry_spans() {
        let d = &lint_source(
            "crates/core/src/x.rs",
            "fn f() {\n  let m = HashMap::new();\n}",
        )[0];
        assert_eq!((d.line, d.col), (2, 11));
        assert_eq!(d.rule, "DET-HASH-ITER");
    }
}
