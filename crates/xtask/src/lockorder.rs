//! `LOCK-ORDER`: the static lock-acquisition graph must be acyclic.
//!
//! Every `Mutex`/`RwLock` guard site is a zero-argument `.lock()`,
//! `.read()`, or `.write()` call; the lock's *identity* is the nearest
//! field or variable identifier before the call (`self.state.pending`
//! → `pending`, `posts[t]` → `posts`), qualified by crate so same-named
//! locks in different crates stay distinct. Guard lifetimes are
//! approximated lexically:
//!
//! * a guard bound by `let` (including `if let`/`while let`) is held to the
//!   end of its enclosing brace block, or to an explicit `drop(name)`;
//! * a statement-temporary guard (`x.lock().unwrap().field = ...`) is held
//!   to the end of its statement.
//!
//! While a guard is held, every later acquisition adds a *held→acquired*
//! edge, and every call to a workspace function adds edges to all locks
//! that function transitively acquires. A cycle in the edge set is a
//! potential deadlock and fails the gate. The approximation over-holds
//! guards (it ignores early drops via scope exits), which can only add
//! edges — the conservative direction for a deadlock check.

use crate::graph::Graph;
use crate::lexer::Token;
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// One guard-acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Crate-qualified lock identity, e.g. `util::pending`.
    pub lock: String,
    /// Token index of the `.lock()`/`.read()`/`.write()` ident.
    pub tok: usize,
    /// Exclusive token index the guard is held to.
    pub held_to: usize,
    /// 1-based line/col of the call for diagnostics.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Runs the rule. Returns raw diagnostics plus `(sites, edges)` counts.
pub fn check(graph: &Graph) -> (Vec<Diagnostic>, (usize, usize)) {
    // Per-function direct acquisition sites.
    let mut sites_per_fn: Vec<Vec<LockSite>> = Vec::with_capacity(graph.fns.len());
    for f in &graph.fns {
        let file = &graph.files[f.file];
        let crate_name = file.crate_name.as_deref().unwrap_or("");
        let sites = match f.body {
            Some((start, end)) if f.active => {
                lock_sites(&file.lexed.tokens, start, end, crate_name)
            }
            _ => Vec::new(),
        };
        sites_per_fn.push(sites);
    }

    // Transitive lock sets per function (fixpoint over the call graph).
    let mut acquires: Vec<BTreeSet<String>> = sites_per_fn
        .iter()
        .map(|sites| sites.iter().map(|s| s.lock.clone()).collect())
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..graph.fns.len() {
            for &callee in &graph.calls_out[i] {
                if acquires[callee].is_empty() {
                    continue;
                }
                let add: Vec<String> = acquires[callee]
                    .iter()
                    .filter(|l| !acquires[i].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    acquires[i].extend(add);
                    changed = true;
                }
            }
        }
    }

    // Held→acquired edges, with the site that witnessed each edge.
    let mut edges: BTreeMap<(String, String), (String, usize, usize)> = BTreeMap::new();
    for (fi, f) in graph.fns.iter().enumerate() {
        let file = &graph.files[f.file];
        let tokens = &file.lexed.tokens;
        for held in &sites_per_fn[fi] {
            // Later direct acquisitions while this guard is held.
            for other in &sites_per_fn[fi] {
                if other.tok > held.tok && other.tok < held.held_to && other.lock != held.lock {
                    edges
                        .entry((held.lock.clone(), other.lock.clone()))
                        .or_insert((file.path.clone(), other.line, other.col));
                }
            }
            // Calls while held: edges to everything the callee acquires.
            for call in &f.calls {
                let Some(call_tok) = position_of(tokens, call.line, call.col) else {
                    continue;
                };
                if call_tok <= held.tok || call_tok >= held.held_to {
                    continue;
                }
                for &callee in &graph.calls_out[fi] {
                    if graph.fns[callee].name != call.name {
                        continue;
                    }
                    for lock in &acquires[callee] {
                        if *lock != held.lock {
                            edges
                                .entry((held.lock.clone(), lock.clone()))
                                .or_insert((file.path.clone(), call.line, call.col));
                        }
                    }
                }
            }
        }
    }

    let site_count = sites_per_fn.iter().map(Vec::len).sum();
    let mut diags = Vec::new();
    for cycle in find_cycles(&edges) {
        let (file, line, col) = edges[&(cycle[0].clone(), cycle[1].clone())].clone();
        let ring = cycle.join(" -> ");
        diags.push(Diagnostic {
            rule: "LOCK-ORDER",
            file,
            line,
            col,
            message: format!(
                "lock-order cycle [{ring} -> {}]: two threads taking these locks in \
                 opposite orders deadlock; impose one global order (acquire in the \
                 cycle-breaking direction) or narrow a guard's scope with `drop()`",
                cycle[0]
            ),
        });
    }
    (diags, (site_count, edges.len()))
}

/// Direct guard acquisitions in a body token range.
fn lock_sites(tokens: &[Token], start: usize, end: usize, crate_name: &str) -> Vec<LockSite> {
    let mut out = Vec::new();
    for i in start..=end {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        if !matches!(name, "lock" | "read" | "write") {
            continue;
        }
        // Method call with an *empty* argument list: `.lock()` — the
        // zero-arg requirement excludes `io::Read::read(&mut buf)`.
        if i == 0 || !tokens[i - 1].is_punct('.') {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(')')))
        {
            continue;
        }
        let Some(ident) = receiver_ident(tokens, i - 1) else {
            continue;
        };
        let held_to = guard_extent(tokens, i, end);
        out.push(LockSite {
            lock: format!("{crate_name}::{ident}"),
            tok: i,
            held_to,
            line: tokens[i].line,
            col: tokens[i].col,
        });
    }
    out
}

/// The nearest field/variable ident before the `.` at `dot`: walks back
/// over one optional index group (`posts[t]` → `posts`).
fn receiver_ident(tokens: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    if tokens[j].is_punct(']') {
        // Skip the index group.
        let mut depth = 1usize;
        while depth > 0 {
            j = j.checked_sub(1)?;
            if tokens[j].is_punct(']') {
                depth += 1;
            } else if tokens[j].is_punct('[') {
                depth -= 1;
            }
        }
        j = j.checked_sub(1)?;
    }
    tokens[j].ident().map(str::to_string)
}

/// Exclusive token index the guard acquired at `i` is held to.
fn guard_extent(tokens: &[Token], i: usize, body_end: usize) -> usize {
    // `let`-bound (searching back to the statement head): held to the end
    // of the enclosing block, or to `drop(name)`.
    let mut j = i;
    let mut bound: Option<String> = None;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.ident() == Some("let") {
            // The bound name is the first plain ident after `let`
            // (skipping `mut`); `if let Some(g)` patterns bind inside.
            let mut k = j + 1;
            while tokens.get(k).and_then(Token::ident) == Some("mut") {
                k += 1;
            }
            // Walk into tuple/enum patterns to the innermost first ident.
            while k < i {
                match tokens[k].ident() {
                    Some(id) if id != "Some" && id != "Ok" && id != "Err" => {
                        bound = Some(id.to_string());
                        break;
                    }
                    _ => k += 1,
                }
            }
            break;
        }
    }
    match bound {
        Some(name) => {
            // End of enclosing block: first `}` that closes the depth the
            // guard sits at; or an explicit `drop(name)`.
            let mut depth = 0i32;
            for k in i..=body_end {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                } else if tokens[k].ident() == Some("drop")
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(k + 2).and_then(Token::ident) == Some(name.as_str())
                {
                    return k;
                }
            }
            body_end + 1
        }
        None => {
            // Statement temporary: held to the statement's `;` (or the end
            // of the enclosing block if none — e.g. a tail expression).
            let mut depth = 0i32;
            for k in i..=body_end {
                if tokens[k].is_punct('{') || tokens[k].is_punct('(') || tokens[k].is_punct('[') {
                    depth += 1;
                } else if tokens[k].is_punct('}') || tokens[k].is_punct(')') || tokens[k].is_punct(']')
                {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                } else if tokens[k].is_punct(';') && depth == 0 {
                    return k;
                }
            }
            body_end + 1
        }
    }
}

/// Token index of the token at `(line, col)`, if any.
fn position_of(tokens: &[Token], line: usize, col: usize) -> Option<usize> {
    tokens.iter().position(|t| t.line == line && t.col == col)
}

/// Elementary cycles in the edge set, canonicalized (rotation-minimal,
/// deduplicated) and sorted for deterministic reports.
fn find_cycles(edges: &BTreeMap<(String, String), (String, usize, usize)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (held, acquired) in edges.keys() {
        adj.entry(held).or_default().push(acquired);
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from every node; a back-edge to the path head closes a cycle.
    // Lock graphs here are tiny (≤ dozens of nodes), so this is plenty.
    fn dfs<'a>(
        node: &'a str,
        head: &str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        path: &mut Vec<&'a str>,
        cycles: &mut BTreeSet<Vec<String>>,
    ) {
        for &next in adj.get(node).into_iter().flatten() {
            if next == head {
                // Canonical rotation: start at the smallest lock name.
                let min = path.iter().enumerate().min_by_key(|(_, s)| **s).map(|(i, _)| i);
                if let Some(start) = min {
                    let rotated: Vec<String> = path[start..]
                        .iter()
                        .chain(path[..start].iter())
                        .map(|s| s.to_string())
                        .collect();
                    cycles.insert(rotated);
                }
            } else if !path.contains(&next) && next > head {
                // Only explore nodes ordered after the head so each cycle
                // is found from its smallest node exactly once.
                path.push(next);
                dfs(next, head, adj, path, cycles);
                path.pop();
            }
        }
    }
    for &node in adj.keys() {
        let mut path = vec![node];
        dfs(node, node, &adj, &mut path, &mut cycles);
    }
    cycles.into_iter().collect()
}
