//! Cluster-scale CuttleSys: N per-node agents under one deterministic
//! coordinator.
//!
//! The paper manages a single 32-core reconfigurable chip. This crate
//! lifts that per-chip manager into a two-level architecture in the shape
//! of Google-scale cluster schedulers: each simulated node runs its own
//! [`cuttlesys::control::ControlCore`] (driver + manager + tenant table),
//! and a [`ClusterCoordinator`] steps every node through the same 100 ms
//! decision quantum in lockstep, making the *cross-node* decisions the
//! per-node agents cannot:
//!
//! * **Placement** ([`placement`]) — a registering batch tenant is
//!   bin-packed onto a node by reconstructed demand against each node's
//!   steady-state power budget (the same admission arithmetic the node
//!   itself enforces, previewed via
//!   [`cuttlesys::control::ControlCore::admission_preview`]), shaped by
//!   affinity and contention scores.
//! * **Migration** ([`migration`]) — a cross-node move is a drain on the
//!   source plus an admit on the destination, with a modeled cost in
//!   whole quanta during which the tenant is in flight and its
//!   cluster-visible lifecycle state is `Relocating(Node(dest))`.
//! * **Balance** ([`balance`]) — when a node's worst tail-latency-to-QoS
//!   ratio breaches a threshold, the coordinator shifts a fraction of
//!   that service's traffic share to the least-loaded replica,
//!   conserving the total offered load.
//! * **Fault tolerance** ([`faults`], [`health`]) — a seeded
//!   [`FleetFaultPlan`] deterministically injects node crashes,
//!   blackouts, slow nodes, and maintenance drains; a per-node
//!   [`NodeHealth`] state machine driven by quantum-counted heartbeat
//!   timeouts detects them; detection triggers evacuation (batch tenants
//!   re-enter admission elsewhere, LC traffic folds onto surviving
//!   replicas), unplaceable tenants park in a displaced queue with
//!   bounded backoff, and sustained infeasibility engages a hysteretic
//!   fleet degraded mode that sheds batch work, then shrinks LC shares
//!   toward safe-mode allocations.
//!
//! # Determinism rules
//!
//! Everything here is sans-io: no wall clock, no sockets, no spawned
//! threads (stepping may *borrow* a [`util::WorkerPool`], which owns the
//! only threads involved). Determinism rests on two structural rules:
//!
//! 1. **Nodes are share-nothing within a quantum.** Each node's step is a
//!    pure function of its own state, so the coordinator may step nodes
//!    in any order — or on any pool width — and reach bit-identical
//!    per-node state ([`ClusterCoordinator::step_quantum_ordered`],
//!    [`ClusterCoordinator::step_quantum_pooled`]).
//! 2. **Cross-node decisions are serial and node-id-ordered.** Migration
//!    completions, event draining, balancing, and auto-migration all
//!    read and mutate state in ascending [`NodeId`] order, after every
//!    node has stepped. Ties break toward the lowest node id.
//!
//! A one-node cluster is the degenerate case: every cross-node policy is
//! a no-op, node 0 keeps the base scenario's seed
//! ([`topology::node_seed_salt`] of 0 is 0), and the traffic share
//! multiplier stays exactly 1.0 — so the cluster replays the single-node
//! golden record bit-for-bit (`tests/cluster.rs` pins this).

pub mod balance;
pub mod coordinator;
pub mod faults;
pub mod health;
pub mod migration;
pub mod node;
pub mod placement;
pub mod topology;

pub use balance::BalanceConfig;
pub use coordinator::{
    ClusterConfig, ClusterCoordinator, ClusterError, ClusterEvent, ClusterRecord, ClusterSnapshot,
    ClusterTenantId, ClusterTenantSnapshot, StepOrder,
};
pub use cuttlesys::lifecycle::{NodeId, RelocationTarget};
pub use faults::{
    FleetFaultInjector, FleetFaultKind, FleetFaultPlan, NodeQuantumFaults, ScheduledFault,
};
pub use health::{HealthConfig, NodeHealth};
pub use migration::{MigrateError, MigrationConfig};
pub use node::NodeAgent;
pub use placement::{PlacementConfig, PlacementError, PlacementScore};
pub use topology::ClusterScenario;
