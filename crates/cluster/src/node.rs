//! One node of the cluster: a [`ControlCore`] agent plus the per-quantum
//! readings the coordinator's cross-node policies consume.

use cuttlesys::control::{ControlCore, ControlError};
use cuttlesys::lifecycle::NodeId;
use cuttlesys::types::{Scenario, SliceRecord};

/// A per-node agent: the node's control plane, stepped by the coordinator
/// one lockstep quantum at a time.
pub struct NodeAgent {
    core: ControlCore,
}

impl NodeAgent {
    /// Builds the agent for `node` over its scenario.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ControlCore::on_node`].
    pub fn new(scenario: &Scenario, node: NodeId) -> NodeAgent {
        NodeAgent {
            core: ControlCore::on_node(scenario, node),
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.core.node()
    }

    /// The node's control plane.
    pub fn core(&self) -> &ControlCore {
        &self.core
    }

    /// The node's control plane, mutably (the coordinator routes
    /// registrations, drains, and share updates through this).
    pub fn core_mut(&mut self) -> &mut ControlCore {
        &mut self.core
    }

    /// Consumes the agent into its control plane (for record extraction).
    pub fn into_core(self) -> ControlCore {
        self.core
    }

    /// Runs one decision quantum on this node.
    ///
    /// # Errors
    ///
    /// Propagates [`ControlError`] from the node's control plane.
    pub fn step(&mut self) -> Result<SliceRecord, ControlError> {
        self.core.step_quantum()
    }

    /// The most recent quantum's record, if the node has stepped.
    pub fn last_record(&self) -> Option<&SliceRecord> {
        self.core.records().last()
    }

    /// Worst tail-latency-to-QoS ratio across this node's LC tenants in
    /// its most recent quantum (0.0 before the first step) — the signal
    /// the balance and auto-migration policies read.
    pub fn last_tail_ratio(&self) -> f64 {
        self.last_record()
            .map(|r| {
                r.lc.iter()
                    .map(|l| l.tail_ms / l.qos_ms)
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0)
    }

    /// Tail-latency-to-QoS ratio of LC service `lc_index` in the most
    /// recent quantum (`None` before the first step or out of range).
    pub fn lc_tail_ratio(&self, lc_index: usize) -> Option<f64> {
        self.last_record()
            .and_then(|r| r.lc.get(lc_index))
            .map(|l| l.tail_ms / l.qos_ms)
    }

    /// Number of live (resource-holding) tenants on this node.
    pub fn live_tenants(&self) -> usize {
        self.core
            .tenants()
            .iter()
            .filter(|t| t.state().is_live())
            .count()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn a_node_steps_and_reports_its_tail_signal() {
        let s = Scenario {
            noise: 0.0,
            phases: false,
            duration_slices: 2,
            ..Scenario::quick_demo()
        };
        let mut node = NodeAgent::new(&s, NodeId::from_index(3));
        assert_eq!(node.id(), NodeId::from_index(3));
        assert_eq!(node.last_tail_ratio(), 0.0, "no quantum yet");
        assert_eq!(node.lc_tail_ratio(0), None);
        node.step().unwrap();
        assert!(node.last_tail_ratio() > 0.0);
        assert_eq!(
            node.lc_tail_ratio(0),
            Some(node.last_tail_ratio()),
            "one LC tenant: the worst ratio is its ratio"
        );
        assert!(node.live_tenants() > 0);
    }
}
