//! Deterministic fleet-level fault injection.
//!
//! PR 3 gave one node's sensors and reconfiguration commands a seeded,
//! bit-replayable fault model (`cuttlesys::faults`). This module lifts the
//! same discipline to the fleet: node crashes, temporary blackouts (a node
//! silent for K quanta), slow nodes (step-deadline overruns, one missed
//! heartbeat each), and scheduled maintenance drains. Every probabilistic
//! verdict is a pure function of `(seed, stream, node, quantum)` drawn
//! from the workspace's counter-based splitmix64 streams
//! ([`simulator::fault`]), so fault draws never perturb the simulation's
//! own randomness: a clean run and a faulty run of the same scenario step
//! the exact same per-node quanta, and two faulty runs with the same plan
//! fail the exact same nodes at the exact same quanta — at any pool width.
//!
//! Policy — what the coordinator *does* about a failed node — lives in
//! [`crate::health`] and the coordinator's health phase; this module only
//! decides what breaks, and when.

use cuttlesys::lifecycle::NodeId;
use simulator::fault::{unit, FaultStream};

/// One kind of fleet fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetFaultKind {
    /// The node halts permanently; heartbeats never resume.
    Crash,
    /// The node goes silent (alive but unobservable) for `quanta`
    /// lockstep quanta, then resumes heartbeating.
    Blackout {
        /// How many quanta the node stays silent.
        quanta: usize,
    },
    /// The node overruns its step deadline this quantum: one missed
    /// heartbeat, then business as usual.
    Slow,
    /// A scheduled maintenance drain: the coordinator evacuates the node
    /// with warning, then takes it out of the fleet.
    Drain,
}

/// A fault pinned to exact coordinates: fires at `(node, quantum)`,
/// deterministically, with no draw involved. Tests and demos use these to
/// kill a specific node mid-run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// The node the fault strikes.
    pub node: NodeId,
    /// The lockstep quantum at whose start it strikes.
    pub quantum: usize,
    /// What happens.
    pub kind: FleetFaultKind,
}

/// Which fleet faults can fire, at what per-(node, quantum) rates, from
/// which seed — plus any exactly-scheduled faults. The plan is pure data;
/// [`FleetFaultInjector`] turns it into per-quantum verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultPlan {
    /// Seed for every probabilistic draw in this plan.
    pub seed: u64,
    /// Per-(node, quantum) probability of a permanent crash.
    pub crash: f64,
    /// Per-(node, quantum) probability that a blackout starts.
    pub blackout: f64,
    /// How many quanta a probabilistic blackout lasts.
    pub blackout_quanta: usize,
    /// Per-(node, quantum) probability of a step-deadline overrun.
    pub slow: f64,
    /// Per-(node, quantum) probability of a scheduled maintenance drain.
    pub drain: f64,
    /// Probabilistic faults fire only in `[start, end)` quanta when set.
    /// Scheduled faults carry their own coordinates and ignore the window.
    pub window: Option<(usize, usize)>,
    /// Exactly-scheduled faults, applied on top of the probabilistic ones.
    pub scheduled: Vec<ScheduledFault>,
}

impl FleetFaultPlan {
    /// The guaranteed no-op plan: nothing ever fires, and the coordinator
    /// runs bit-identically to one built without a plan at all.
    pub fn none() -> FleetFaultPlan {
        FleetFaultPlan {
            seed: 0,
            crash: 0.0,
            blackout: 0.0,
            blackout_quanta: 0,
            slow: 0.0,
            drain: 0.0,
            window: None,
            scheduled: Vec::new(),
        }
    }

    /// A named profile, mirroring `cuttlesys::faults` — `"clean"`,
    /// `"node-crash"`, `"blackout"`, `"slow-node"`, `"maintenance-drain"`.
    /// Returns `None` for an unknown name.
    pub fn named(name: &str, seed: u64) -> Option<FleetFaultPlan> {
        let base = FleetFaultPlan {
            seed,
            ..FleetFaultPlan::none()
        };
        Some(match name {
            "clean" => base,
            "node-crash" => FleetFaultPlan {
                crash: 0.02,
                ..base
            },
            "blackout" => FleetFaultPlan {
                blackout: 0.05,
                blackout_quanta: 3,
                ..base
            },
            "slow-node" => FleetFaultPlan { slow: 0.2, ..base },
            "maintenance-drain" => FleetFaultPlan {
                drain: 0.02,
                ..base
            },
            _ => return None,
        })
    }

    /// Schedules a permanent crash of `node` at `quantum`.
    pub fn with_crash(mut self, node: NodeId, quantum: usize) -> FleetFaultPlan {
        self.scheduled.push(ScheduledFault {
            node,
            quantum,
            kind: FleetFaultKind::Crash,
        });
        self
    }

    /// Schedules a `quanta`-long blackout of `node` starting at `quantum`.
    pub fn with_blackout(mut self, node: NodeId, quantum: usize, quanta: usize) -> FleetFaultPlan {
        self.scheduled.push(ScheduledFault {
            node,
            quantum,
            kind: FleetFaultKind::Blackout { quanta },
        });
        self
    }

    /// Schedules one step-deadline overrun of `node` at `quantum`.
    pub fn with_slow(mut self, node: NodeId, quantum: usize) -> FleetFaultPlan {
        self.scheduled.push(ScheduledFault {
            node,
            quantum,
            kind: FleetFaultKind::Slow,
        });
        self
    }

    /// Schedules a maintenance drain of `node` at `quantum`.
    pub fn with_drain(mut self, node: NodeId, quantum: usize) -> FleetFaultPlan {
        self.scheduled.push(ScheduledFault {
            node,
            quantum,
            kind: FleetFaultKind::Drain,
        });
        self
    }

    /// Whether this plan can never fire anything.
    pub fn is_clean(&self) -> bool {
        self.crash == 0.0
            && self.blackout == 0.0
            && self.slow == 0.0
            && self.drain == 0.0
            && self.scheduled.is_empty()
    }

    /// Whether probabilistic faults are live at `quantum`.
    pub fn active_at(&self, quantum: usize) -> bool {
        match self.window {
            Some((start, end)) => quantum >= start && quantum < end,
            None => true,
        }
    }
}

impl Default for FleetFaultPlan {
    fn default() -> FleetFaultPlan {
        FleetFaultPlan::none()
    }
}

/// The faults striking one node at the start of one quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeQuantumFaults {
    /// The node crashes permanently.
    pub crash: bool,
    /// A blackout of this many quanta starts (0 = none).
    pub blackout_quanta: usize,
    /// The node overruns this quantum's step deadline.
    pub slow: bool,
    /// A maintenance drain is scheduled.
    pub drain: bool,
}

impl NodeQuantumFaults {
    /// No faults this quantum.
    pub const NONE: NodeQuantumFaults = NodeQuantumFaults {
        crash: false,
        blackout_quanta: 0,
        slow: false,
        drain: false,
    };
}

/// Packs `(node, quantum)` into one draw index. Nodes occupy the high
/// bits so no realistic quantum count can alias across nodes.
fn pack(node: NodeId, quantum: usize) -> u64 {
    ((node.index() as u64) << 40) ^ quantum as u64
}

/// Stateless verdict engine over a [`FleetFaultPlan`]: every verdict is a
/// pure function of the plan and the `(node, quantum)` coordinates, so
/// the coordinator can ask in any order (or never) without perturbing
/// anything.
#[derive(Debug, Clone)]
pub struct FleetFaultInjector {
    plan: FleetFaultPlan,
}

impl FleetFaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FleetFaultPlan) -> FleetFaultInjector {
        FleetFaultInjector { plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FleetFaultPlan {
        &self.plan
    }

    /// The faults striking `node` at the start of `quantum`.
    pub fn node_quantum(&self, node: NodeId, quantum: usize) -> NodeQuantumFaults {
        if self.plan.is_clean() {
            return NodeQuantumFaults::NONE;
        }
        let mut out = NodeQuantumFaults::NONE;
        for s in &self.plan.scheduled {
            if s.node != node || s.quantum != quantum {
                continue;
            }
            match s.kind {
                FleetFaultKind::Crash => out.crash = true,
                FleetFaultKind::Blackout { quanta } => {
                    out.blackout_quanta = out.blackout_quanta.max(quanta.max(1));
                }
                FleetFaultKind::Slow => out.slow = true,
                FleetFaultKind::Drain => out.drain = true,
            }
        }
        if self.plan.active_at(quantum) {
            let (seed, idx) = (self.plan.seed, pack(node, quantum));
            // Short-circuit on a zero rate so a purely scheduled plan
            // performs no draws at all.
            if self.plan.crash > 0.0 && unit(seed, FaultStream::NodeCrash, idx) < self.plan.crash {
                out.crash = true;
            }
            if self.plan.blackout > 0.0
                && unit(seed, FaultStream::NodeBlackout, idx) < self.plan.blackout
            {
                out.blackout_quanta = out.blackout_quanta.max(self.plan.blackout_quanta.max(1));
            }
            if self.plan.slow > 0.0 && unit(seed, FaultStream::NodeSlow, idx) < self.plan.slow {
                out.slow = true;
            }
            if self.plan.drain > 0.0 && unit(seed, FaultStream::NodeDrain, idx) < self.plan.drain {
                out.drain = true;
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn the_clean_plan_never_fires() {
        let injector = FleetFaultInjector::new(FleetFaultPlan::none());
        assert!(injector.plan().is_clean());
        for node in 0..8 {
            for quantum in 0..200 {
                assert_eq!(
                    injector.node_quantum(NodeId::from_index(node), quantum),
                    NodeQuantumFaults::NONE
                );
            }
        }
    }

    #[test]
    fn verdicts_are_deterministic_and_seed_sensitive() {
        let plan = FleetFaultPlan::named("node-crash", 7).unwrap();
        let a = FleetFaultInjector::new(plan.clone());
        let b = FleetFaultInjector::new(plan.clone());
        let c = FleetFaultInjector::new(FleetFaultPlan { seed: 8, ..plan });
        let verdicts = |inj: &FleetFaultInjector| -> Vec<NodeQuantumFaults> {
            (0..4)
                .flat_map(|n| (0..500).map(move |q| (n, q)))
                .map(|(n, q)| inj.node_quantum(NodeId::from_index(n), q))
                .collect()
        };
        assert_eq!(verdicts(&a), verdicts(&b), "same plan, same verdicts");
        assert_ne!(verdicts(&a), verdicts(&c), "a new seed re-rolls the run");
        assert!(
            verdicts(&a).iter().any(|v| v.crash),
            "2% over 2000 coordinates should crash something"
        );
    }

    #[test]
    fn the_window_confines_probabilistic_faults() {
        let plan = FleetFaultPlan {
            window: Some((10, 20)),
            slow: 0.9,
            ..FleetFaultPlan::none()
        };
        let injector = FleetFaultInjector::new(plan);
        for q in 0..40 {
            let v = injector.node_quantum(NodeId::local(), q);
            if !(10..20).contains(&q) {
                assert_eq!(v, NodeQuantumFaults::NONE, "quantum {q} outside window");
            }
        }
        assert!((10..20).any(|q| injector.node_quantum(NodeId::local(), q).slow));
    }

    #[test]
    fn scheduled_faults_fire_at_exactly_their_coordinates() {
        let plan = FleetFaultPlan::none()
            .with_crash(NodeId::from_index(1), 3)
            .with_blackout(NodeId::from_index(2), 5, 4)
            .with_drain(NodeId::from_index(0), 7);
        let injector = FleetFaultInjector::new(plan);
        for node in 0..3 {
            for q in 0..12 {
                let v = injector.node_quantum(NodeId::from_index(node), q);
                match (node, q) {
                    (1, 3) => assert!(v.crash),
                    (2, 5) => assert_eq!(v.blackout_quanta, 4),
                    (0, 7) => assert!(v.drain),
                    _ => assert_eq!(v, NodeQuantumFaults::NONE, "n{node} q{q}"),
                }
            }
        }
    }

    #[test]
    fn named_profiles_cover_the_catalog() {
        for name in [
            "clean",
            "node-crash",
            "blackout",
            "slow-node",
            "maintenance-drain",
        ] {
            let plan = FleetFaultPlan::named(name, 1).expect(name);
            assert_eq!(plan.is_clean(), name == "clean", "{name}");
        }
        assert!(FleetFaultPlan::named("nope", 1).is_none());
    }
}
