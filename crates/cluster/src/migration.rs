//! Migration: moving a batch tenant between nodes.
//!
//! A cross-node move reuses the churn machinery the single-node control
//! plane already has: it is a **drain on the source** (the tenant stops
//! being scheduled there at the next slice boundary) plus an **admit on
//! the destination**, separated by a modeled migration cost of
//! [`MigrationConfig::cost_quanta`] whole quanta during which the tenant
//! executes nowhere — the degraded-service window of copying its state.
//! While in flight the tenant's cluster-visible lifecycle state is
//! `Relocating(Node(dest))`, the relocation target the lifecycle state
//! machine carries since this refactor.
//!
//! Because the move *is* a drain plus an admit, a migration is
//! bit-identical to issuing the same drain and the same (delayed) admit
//! by hand — `tests/cluster.rs` pins that equivalence.

use cuttlesys::control::{AdmissionError, ControlError};
use cuttlesys::lifecycle::NodeId;

use crate::coordinator::ClusterTenantId;

/// Migration policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Modeled cost of a move: whole quanta between the source drain and
    /// the destination admit (clamped to at least 1 — state transfer is
    /// never free).
    pub cost_quanta: usize,
    /// When `Some(r)`, the coordinator auto-migrates: a node whose worst
    /// tail ratio exceeds `r` after a quantum offloads its most recently
    /// placed live batch tenant to the best-scoring other node.
    pub auto_tail_ratio: Option<f64>,
    /// How many times a rejected destination admit is retried (against the
    /// next-best placement, with bounded backoff) before the move is
    /// abandoned and the tenant retires drained.
    pub max_retries: usize,
    /// Retry backoff ceiling, in quanta: attempt `k` waits
    /// `min(cost_quanta · 2^k, retry_cap_quanta)` before re-admitting.
    pub retry_cap_quanta: usize,
}

impl Default for MigrationConfig {
    fn default() -> MigrationConfig {
        MigrationConfig {
            cost_quanta: 2,
            auto_tail_ratio: None,
            max_retries: 3,
            retry_cap_quanta: 8,
        }
    }
}

/// One tenant mid-move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct InFlight {
    /// The moving tenant.
    pub tenant: ClusterTenantId,
    /// Where it came from.
    pub from: NodeId,
    /// Where it is headed.
    pub dest: NodeId,
    /// The quantum at whose start the destination admit happens.
    pub admit_at: usize,
    /// How many destination admits have been refused so far; drives the
    /// retry backoff and the abandon threshold.
    pub attempts: usize,
}

/// Why a migration request was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// No tenant has this id.
    UnknownTenant(ClusterTenantId),
    /// Only batch tenants move; LC tenants are pinned to their node (their
    /// traffic shifts instead, via the balance policy).
    NotABatchTenant(ClusterTenantId),
    /// The tenant is already mid-move.
    AlreadyInFlight(ClusterTenantId),
    /// Source and destination are the same node.
    SameNode(NodeId),
    /// The destination node id is not in the cluster.
    UnknownNode(NodeId),
    /// The source node refused the drain (e.g. the tenant is not live).
    Source(ControlError),
    /// The destination's admission control rejected the tenant when the
    /// move completed; the tenant retires drained.
    Rejected(AdmissionError),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::UnknownTenant(t) => write!(f, "unknown cluster tenant {t}"),
            MigrateError::NotABatchTenant(t) => {
                write!(f, "tenant {t} is latency-critical and pinned to its node")
            }
            MigrateError::AlreadyInFlight(t) => write!(f, "tenant {t} is already migrating"),
            MigrateError::SameNode(n) => write!(f, "tenant already lives on {n}"),
            MigrateError::UnknownNode(n) => write!(f, "unknown node {n}"),
            MigrateError::Source(e) => write!(f, "source drain failed: {e}"),
            MigrateError::Rejected(e) => write!(f, "destination rejected the move: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn errors_name_the_parties() {
        let t = ClusterTenantId::from_index(4);
        assert!(MigrateError::UnknownTenant(t).to_string().contains("c4"));
        assert!(MigrateError::NotABatchTenant(t)
            .to_string()
            .contains("pinned"));
        assert!(MigrateError::SameNode(NodeId::from_index(2))
            .to_string()
            .contains("n2"));
    }

    #[test]
    fn default_cost_is_nonzero() {
        assert!(MigrationConfig::default().cost_quanta >= 1);
        assert_eq!(MigrationConfig::default().auto_tail_ratio, None);
        assert!(MigrationConfig::default().max_retries >= 1);
        assert!(
            MigrationConfig::default().retry_cap_quanta >= MigrationConfig::default().cost_quanta
        );
    }
}
