//! Cluster topologies: which scenario each node runs.
//!
//! A cluster is just a list of per-node [`Scenario`]s stepped in lockstep.
//! The common case is a *uniform* fleet — every node runs the same job mix
//! under the same cap — differing only in the per-node seed, so noise and
//! phase draws decorrelate across nodes the way independent machines do.

use cuttlesys::faults::FaultPlan;
use cuttlesys::types::Scenario;
use workloads::loadgen::LoadPattern;

/// Per-node seed salt: a golden-ratio multiplicative mix of the node
/// index. Node 0's salt is 0, so the first node replays the base
/// scenario's seed exactly — that is what lets a one-node cluster
/// reproduce the single-node golden record bit-for-bit.
pub fn node_seed_salt(index: usize) -> u64 {
    (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The scenarios a cluster's nodes run, in node-id order.
#[derive(Debug, Clone)]
pub struct ClusterScenario {
    /// One scenario per node; index `i` is node `n{i}`.
    pub nodes: Vec<Scenario>,
}

impl ClusterScenario {
    /// A uniform fleet: `nodes` copies of `base`, node `i` reseeded with
    /// `base.seed ^ node_seed_salt(i)` (node 0 keeps the base seed).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero — an empty cluster cannot step.
    pub fn uniform(base: &Scenario, nodes: usize) -> ClusterScenario {
        assert!(nodes > 0, "a cluster needs at least one node");
        ClusterScenario {
            nodes: (0..nodes)
                .map(|i| {
                    let mut s = base.clone();
                    s.seed = base.seed ^ node_seed_salt(i);
                    s
                })
                .collect(),
        }
    }

    /// Number of nodes in the topology.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Replaces every node's quantum count.
    #[must_use]
    pub fn with_duration_slices(mut self, slices: usize) -> ClusterScenario {
        for node in &mut self.nodes {
            node.duration_slices = slices;
        }
        self
    }

    /// Replaces every node's power-cap pattern.
    #[must_use]
    pub fn with_cap(mut self, cap: LoadPattern) -> ClusterScenario {
        for node in &mut self.nodes {
            node.cap = cap.clone();
        }
        self
    }

    /// Re-seeds the fleet from a new base seed: node `i` gets
    /// `seed ^ node_seed_salt(i)`, the same derivation
    /// [`ClusterScenario::uniform`] uses, so node 0 keeps `seed` exactly.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ClusterScenario {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.seed = seed ^ node_seed_salt(i);
        }
        self
    }

    /// Replaces every node's single-node fault plan, re-salting the plan
    /// seed per node so fault draws decorrelate across the fleet the same
    /// way scenario seeds do.
    #[must_use]
    pub fn with_node_faults(mut self, faults: FaultPlan) -> ClusterScenario {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let mut plan = faults.clone();
            plan.seed = faults.seed ^ node_seed_salt(i);
            node.faults = plan;
        }
        self
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn uniform_reseeds_every_node_but_the_first() {
        let base = Scenario::quick_demo();
        let cs = ClusterScenario::uniform(&base, 4);
        assert_eq!(cs.num_nodes(), 4);
        assert_eq!(cs.nodes[0].seed, base.seed, "node 0 keeps the base seed");
        let mut seeds: Vec<u64> = cs.nodes.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "per-node seeds are distinct");
        assert!(cs.nodes.iter().all(|s| s.jobs.len() == base.jobs.len()));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn an_empty_cluster_is_rejected() {
        ClusterScenario::uniform(&Scenario::quick_demo(), 0);
    }

    #[test]
    fn setters_apply_fleet_wide_and_preserve_salts() {
        let base = Scenario::quick_demo();
        let cs = ClusterScenario::uniform(&base, 3)
            .with_duration_slices(7)
            .with_cap(LoadPattern::Constant(0.5))
            .with_seed(99)
            .with_node_faults(FaultPlan::lossy_sensors(11));
        for (i, node) in cs.nodes.iter().enumerate() {
            assert_eq!(node.duration_slices, 7);
            assert_eq!(node.cap, LoadPattern::Constant(0.5));
            assert_eq!(node.seed, 99 ^ node_seed_salt(i));
            assert_eq!(node.faults.seed, 11 ^ node_seed_salt(i));
            assert!(!node.faults.is_clean());
        }
        // The derivation matches `uniform` itself: re-seeding with the
        // original seed reproduces the uniform fleet.
        let reseeded = ClusterScenario::uniform(&base, 3).with_seed(base.seed);
        let direct = ClusterScenario::uniform(&base, 3);
        for (a, b) in reseeded.nodes.iter().zip(&direct.nodes) {
            assert_eq!(a.seed, b.seed);
        }
    }
}
