//! The deterministic cluster coordinator.
//!
//! [`ClusterCoordinator`] owns N [`NodeAgent`]s and steps them through the
//! same 100 ms decision quantum in lockstep. One quantum is five phases,
//! in a fixed order:
//!
//! 1. **Complete due migrations** (serial, start order): a tenant whose
//!    modeled migration cost has elapsed is admitted on its destination.
//! 2. **Step every node** — serially in either direction or on a borrowed
//!    [`WorkerPool`]; nodes share nothing within a quantum, so any
//!    schedule reaches bit-identical state.
//! 3. **Drain node events** into the cluster event queue, in node-id
//!    order.
//! 4. **Balance** LC traffic shares from the quantum's tail ratios.
//! 5. **Auto-migrate** (when configured): a node still breaching after
//!    balancing offloads its most recently placed batch tenant.
//!
//! Phases 1 and 3–5 are the only cross-node code, and they run serially
//! in node-id order — that is the whole determinism argument (see the
//! crate docs), and `tests/cluster.rs` pins it.

use cuttlesys::control::AdmissionError;
use cuttlesys::control::{ControlError, ControlEvent, ControlSnapshot, TenantId, TenantKind};
use cuttlesys::lifecycle::{LifecycleState, NodeId, RelocationTarget};
use cuttlesys::types::RunRecord;
use util::json::JsonValue;
use util::WorkerPool;
use workloads::batch::SpecBenchmark;

use crate::balance::{decide_shift, BalanceConfig};
use crate::migration::{InFlight, MigrateError, MigrationConfig};
use crate::node::NodeAgent;
use crate::placement::{pick_best, PlacementConfig, PlacementError, PlacementScore};
use crate::topology::ClusterScenario;

/// Opaque handle to one tenant in the cluster's tenant table. Ids are
/// never reused; a migrated tenant keeps its id across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterTenantId(usize);

impl ClusterTenantId {
    /// The tenant's index in the cluster tenant table.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from its table index.
    pub fn from_index(index: usize) -> ClusterTenantId {
        ClusterTenantId(index)
    }
}

impl std::fmt::Display for ClusterTenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Which direction the serial stepper walks the node table — exists so
/// the determinism tests can pin that the order is immaterial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepOrder {
    /// Ascending node id (the canonical order).
    #[default]
    Forward,
    /// Descending node id.
    Reverse,
}

/// Cluster-wide policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterConfig {
    /// Placement score weights.
    pub placement: PlacementConfig,
    /// Migration cost model and auto-migration trigger.
    pub migration: MigrationConfig,
    /// Traffic balancing; `None` disables it.
    pub balance: Option<BalanceConfig>,
}

/// One row of the cluster tenant table.
#[derive(Debug, Clone)]
struct ClusterTenantEntry {
    name: String,
    /// The batch app, kept for re-admission on migration (`None` for LC
    /// tenants, which never move).
    app: Option<SpecBenchmark>,
    node: NodeId,
    local: TenantId,
}

/// A cluster-level occurrence. Per-node [`ControlEvent`]s are wrapped so
/// one drain sees the whole fleet's history in order.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterEvent {
    /// A node's control plane produced an event.
    Node(ControlEvent),
    /// Placement put a tenant on a node.
    Placed {
        /// The new tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The chosen node.
        node: NodeId,
    },
    /// A migration began: the tenant drained from `from` and is in flight.
    MigrationStarted {
        /// The moving tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The source node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The quantum at whose start the destination admit happens.
        admit_at: usize,
    },
    /// A migration completed: the tenant was admitted on its destination.
    MigrationCompleted {
        /// The moved tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The source node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The quantum at whose start the admit happened.
        quantum: usize,
    },
    /// A migration failed at completion: the destination's admission
    /// control rejected the tenant, which retires drained.
    MigrationFailed {
        /// The tenant that failed to move.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The destination that rejected it.
        to: NodeId,
        /// The quantum at whose start the admit was attempted.
        quantum: usize,
    },
    /// The balance policy moved LC traffic share between replicas.
    SharesShifted {
        /// The LC service index.
        lc_index: usize,
        /// The replica that shed traffic.
        from: NodeId,
        /// The replica that absorbed it.
        to: NodeId,
        /// Share units moved.
        amount: f64,
        /// The quantum whose tail ratios triggered the shift.
        quantum: usize,
    },
}

/// A cluster request that could not be honored.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// No tenant has this id.
    UnknownTenant(ClusterTenantId),
    /// The operation applies only to batch tenants.
    NotABatchTenant(ClusterTenantId),
    /// The node id is not in the cluster.
    UnknownNode(NodeId),
    /// The tenant is mid-migration; wait for the move to settle.
    InFlight(ClusterTenantId),
    /// A node's admission control rejected a directed registration.
    Admission(AdmissionError),
    /// A node's control plane refused a request.
    Control(ControlError),
    /// A migration request was refused.
    Migrate(MigrateError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownTenant(t) => write!(f, "unknown cluster tenant {t}"),
            ClusterError::NotABatchTenant(t) => {
                write!(f, "tenant {t} is latency-critical and pinned to its node")
            }
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::InFlight(t) => write!(f, "tenant {t} is mid-migration"),
            ClusterError::Admission(e) => write!(f, "{e}"),
            ClusterError::Control(e) => write!(f, "{e}"),
            ClusterError::Migrate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ControlError> for ClusterError {
    fn from(e: ControlError) -> ClusterError {
        ClusterError::Control(e)
    }
}

impl From<MigrateError> for ClusterError {
    fn from(e: MigrateError) -> ClusterError {
        ClusterError::Migrate(e)
    }
}

/// A serializable view of one cluster tenant for [`ClusterSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTenantSnapshot {
    /// Registered name.
    pub name: String,
    /// `"latency_critical"` or `"batch"`.
    pub kind: &'static str,
    /// The node currently (or last) hosting the tenant.
    pub node: NodeId,
    /// The cluster-visible lifecycle state: the hosting node's view, or
    /// `Relocating(Node(dest))` while the tenant is in flight.
    pub state: LifecycleState,
}

/// A point-in-time view of the whole cluster (the cluster `/state`
/// endpoint renders it via [`ClusterSnapshot::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// Lockstep quanta completed so far.
    pub quantum: usize,
    /// Per-node control-plane snapshots, in node-id order.
    pub nodes: Vec<ControlSnapshot>,
    /// Per-node LC traffic shares, in node-id order.
    pub lc_shares: Vec<Vec<f64>>,
    /// The cluster tenant table, in registration order.
    pub tenants: Vec<ClusterTenantSnapshot>,
    /// Tenants currently mid-migration.
    pub in_flight: usize,
}

impl ClusterSnapshot {
    /// The snapshot as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("quantum", self.quantum.into()),
            ("in_flight", self.in_flight.into()),
            (
                "nodes",
                JsonValue::Arr(self.nodes.iter().map(ControlSnapshot::to_json).collect()),
            ),
            (
                "lc_shares",
                JsonValue::Arr(
                    self.lc_shares
                        .iter()
                        .map(|shares| JsonValue::array(shares.iter().copied()))
                        .collect(),
                ),
            ),
            (
                "tenants",
                JsonValue::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            JsonValue::object([
                                ("name", t.name.as_str().into()),
                                ("kind", t.kind.into()),
                                ("node", t.node.to_string().into()),
                                ("state", t.state.name().into()),
                                (
                                    "target",
                                    t.state
                                        .relocation_target()
                                        .map(|n| n.to_string().into())
                                        .unwrap_or(JsonValue::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A completed cluster run: every node's [`RunRecord`] plus the lockstep
/// quantum count. Bit-for-bit equality of two `ClusterRecord`s (after
/// [`comparable`](Self::comparable)) is the determinism criterion the
/// cluster tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRecord {
    /// Lockstep quanta the coordinator ran.
    pub quanta: usize,
    /// Per-node records, in node-id order.
    pub nodes: Vec<RunRecord>,
}

impl ClusterRecord {
    /// The record with every node's wall-clock telemetry zeroed (see
    /// [`RunRecord::comparable`]).
    pub fn comparable(self) -> ClusterRecord {
        ClusterRecord {
            quanta: self.quanta,
            nodes: self.nodes.into_iter().map(RunRecord::comparable).collect(),
        }
    }

    /// Worst tail-latency-to-QoS ratio across the fleet.
    pub fn worst_tail_ratio(&self) -> f64 {
        self.nodes
            .iter()
            .map(RunRecord::worst_tail_ratio)
            .fold(0.0, f64::max)
    }
}

/// N per-node agents stepped in lockstep under deterministic cross-node
/// placement, migration, and balancing policies.
pub struct ClusterCoordinator {
    nodes: Vec<NodeAgent>,
    tenants: Vec<ClusterTenantEntry>,
    in_flight: Vec<InFlight>,
    config: ClusterConfig,
    quantum: usize,
    pending: Vec<ClusterEvent>,
}

impl ClusterCoordinator {
    /// Builds the coordinator with default policies. Every tenant each
    /// node's scenario declares is seeded into the cluster tenant table.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NodeAgent::new`].
    pub fn new(scenario: &ClusterScenario) -> ClusterCoordinator {
        ClusterCoordinator::with_config(scenario, ClusterConfig::default())
    }

    /// Builds the coordinator with explicit policies.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NodeAgent::new`].
    pub fn with_config(scenario: &ClusterScenario, config: ClusterConfig) -> ClusterCoordinator {
        let nodes: Vec<NodeAgent> = scenario
            .nodes
            .iter()
            .enumerate()
            .map(|(i, s)| NodeAgent::new(s, NodeId::from_index(i)))
            .collect();
        let mut tenants = Vec::new();
        for agent in &nodes {
            let scenario = agent.core().scenario();
            let batch_apps: Vec<SpecBenchmark> =
                scenario.batch_jobs().iter().map(|b| b.app).collect();
            for (i, t) in agent.core().tenants().iter().enumerate() {
                tenants.push(ClusterTenantEntry {
                    name: t.name().to_string(),
                    app: match t.kind() {
                        TenantKind::Batch { batch_index } => batch_apps.get(batch_index).copied(),
                        TenantKind::LatencyCritical { .. } => None,
                    },
                    node: agent.id(),
                    local: TenantId::from_index(i),
                });
            }
        }
        ClusterCoordinator {
            nodes,
            tenants,
            in_flight: Vec::new(),
            config,
            quantum: 0,
            pending: Vec::new(),
        }
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Lockstep quanta completed so far.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// One node's agent, if the id is valid.
    pub fn node(&self, id: NodeId) -> Option<&NodeAgent> {
        self.nodes.get(id.index())
    }

    /// The cluster-visible lifecycle state of a tenant: its hosting
    /// node's view, overlaid with `Relocating(Node(dest))` while the
    /// tenant is in flight between nodes.
    pub fn tenant_state(&self, id: ClusterTenantId) -> Option<LifecycleState> {
        let entry = self.tenants.get(id.0)?;
        if let Some(m) = self.in_flight.iter().find(|m| m.tenant == id) {
            return Some(LifecycleState::Relocating(RelocationTarget::Node(m.dest)));
        }
        self.nodes
            .get(entry.node.index())?
            .core()
            .tenant(entry.local)
            .map(|t| t.state())
    }

    /// The node currently (or last) hosting a tenant.
    pub fn tenant_node(&self, id: ClusterTenantId) -> Option<NodeId> {
        if let Some(m) = self.in_flight.iter().find(|m| m.tenant == id) {
            return Some(m.dest);
        }
        self.tenants.get(id.0).map(|e| e.node)
    }

    /// Scores every node (minus `exclude`) as a placement candidate for
    /// `app`, in node-id order.
    fn scores_for(&self, app: SpecBenchmark, exclude: Option<NodeId>) -> Vec<PlacementScore> {
        self.nodes
            .iter()
            .filter(|n| Some(n.id()) != exclude)
            .map(|n| {
                let (required, budget) = n.core().admission_preview(app);
                let scenario = n.core().scenario();
                let batch_names: Vec<&'static str> =
                    scenario.batch_jobs().iter().map(|b| b.app.name).collect();
                let same_app = n
                    .core()
                    .tenants()
                    .iter()
                    .filter(|t| t.state().is_live())
                    .filter(|t| match t.kind() {
                        TenantKind::Batch { batch_index } => {
                            batch_names.get(batch_index) == Some(&app.name)
                        }
                        TenantKind::LatencyCritical { .. } => false,
                    })
                    .count();
                PlacementScore {
                    node: n.id(),
                    headroom_watts: budget - required,
                    same_app_tenants: same_app,
                    live_tenants: n.live_tenants(),
                }
            })
            .collect()
    }

    /// The placement arithmetic for a candidate, without registering it:
    /// per-node scores in node-id order (the bench and example report
    /// these).
    pub fn placement_scores(&self, app: SpecBenchmark) -> Vec<PlacementScore> {
        self.scores_for(app, None)
    }

    /// Registers a batch tenant, letting placement choose the node.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NoCapacity`] when no node's steady-state
    /// budget fits the candidate's worst case.
    pub fn register_batch(
        &mut self,
        name: &str,
        app: SpecBenchmark,
    ) -> Result<ClusterTenantId, PlacementError> {
        let scores = self.scores_for(app, None);
        let Some(node) = pick_best(&scores, &self.config.placement) else {
            // Report the least-infeasible node's arithmetic (ties toward
            // the lowest id, matching every other policy here).
            let closest = scores.iter().reduce(|a, b| {
                if b.headroom_watts > a.headroom_watts {
                    b
                } else {
                    a
                }
            });
            return Err(match closest {
                Some(s) => {
                    let (required, budget) = self
                        .nodes
                        .get(s.node.index())
                        .map(|n| n.core().admission_preview(app))
                        .unwrap_or((0.0, 0.0));
                    PlacementError::NoCapacity {
                        closest: s.node,
                        required_watts: required,
                        budget_watts: budget,
                    }
                }
                None => PlacementError::UnknownNode(NodeId::local()),
            });
        };
        self.register_batch_on(node, name, app)
            .map_err(|e| match e {
                ClusterError::Admission(AdmissionError::PowerBudgetExceeded {
                    required_watts,
                    budget_watts,
                }) => PlacementError::NoCapacity {
                    closest: node,
                    required_watts,
                    budget_watts,
                },
                // register_batch_on only fails with Admission or UnknownNode,
                // and the node came from our own table.
                _ => PlacementError::UnknownNode(node),
            })
    }

    /// Registers a batch tenant on a specific node, bypassing placement
    /// (the migration engine's admit half uses exactly this path, which
    /// is what makes a migration equal a drain plus a directed admit).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] for an invalid node,
    /// [`ClusterError::Admission`] when the node's admission control
    /// rejects the tenant (the rejection is still recorded on the node).
    pub fn register_batch_on(
        &mut self,
        node: NodeId,
        name: &str,
        app: SpecBenchmark,
    ) -> Result<ClusterTenantId, ClusterError> {
        let agent = self
            .nodes
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        let local = agent
            .core_mut()
            .register_batch(name, app)
            .map_err(ClusterError::Admission)?;
        let id = ClusterTenantId(self.tenants.len());
        self.tenants.push(ClusterTenantEntry {
            name: name.to_string(),
            app: Some(app),
            node,
            local,
        });
        self.pending.push(ClusterEvent::Placed {
            tenant: id,
            name: name.to_string(),
            node,
        });
        Ok(id)
    }

    /// Deregisters a batch tenant: it drains on its node and retires.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InFlight`] while the tenant is mid-migration;
    /// otherwise the hosting node's [`ControlError`].
    pub fn deregister(&mut self, id: ClusterTenantId) -> Result<(), ClusterError> {
        if self.in_flight.iter().any(|m| m.tenant == id) {
            return Err(ClusterError::InFlight(id));
        }
        let entry = self
            .tenants
            .get(id.0)
            .ok_or(ClusterError::UnknownTenant(id))?;
        if entry.app.is_none() {
            return Err(ClusterError::NotABatchTenant(id));
        }
        let (node, local) = (entry.node, entry.local);
        self.nodes
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?
            .core_mut()
            .deregister(local)?;
        Ok(())
    }

    /// Starts migrating a batch tenant to `dest`: drains it on its source
    /// now, admits it on `dest` after the configured cost in quanta.
    /// While in flight the tenant's cluster state is
    /// `Relocating(Node(dest))`.
    ///
    /// # Errors
    ///
    /// Returns [`MigrateError`] when the tenant cannot move (unknown, LC,
    /// already in flight, same node, unknown destination, or the source
    /// refuses the drain).
    pub fn migrate(&mut self, id: ClusterTenantId, dest: NodeId) -> Result<(), MigrateError> {
        if self.in_flight.iter().any(|m| m.tenant == id) {
            return Err(MigrateError::AlreadyInFlight(id));
        }
        let entry = self
            .tenants
            .get(id.0)
            .ok_or(MigrateError::UnknownTenant(id))?;
        if entry.app.is_none() {
            return Err(MigrateError::NotABatchTenant(id));
        }
        if dest.index() >= self.nodes.len() {
            return Err(MigrateError::UnknownNode(dest));
        }
        if entry.node == dest {
            return Err(MigrateError::SameNode(dest));
        }
        let (from, local, name) = (entry.node, entry.local, entry.name.clone());
        self.nodes[from.index()]
            .core_mut()
            .deregister(local)
            .map_err(MigrateError::Source)?;
        let admit_at = self.quantum + self.config.migration.cost_quanta.max(1);
        self.in_flight.push(InFlight {
            tenant: id,
            from,
            dest,
            admit_at,
        });
        self.pending.push(ClusterEvent::MigrationStarted {
            tenant: id,
            name,
            from,
            to: dest,
            admit_at,
        });
        Ok(())
    }

    /// Phase 1: admit every migration whose cost has elapsed.
    fn complete_due_migrations(&mut self) {
        let due: Vec<InFlight> = self
            .in_flight
            .iter()
            .filter(|m| m.admit_at <= self.quantum)
            .copied()
            .collect();
        self.in_flight.retain(|m| m.admit_at > self.quantum);
        for m in due {
            let entry = &self.tenants[m.tenant.0];
            let name = entry.name.clone();
            // In-flight tenants are batch by construction (migrate()
            // refuses LC tenants), so the app is always present.
            let Some(app) = entry.app else { continue };
            match self.nodes[m.dest.index()]
                .core_mut()
                .register_batch(&name, app)
            {
                Ok(local) => {
                    let entry = &mut self.tenants[m.tenant.0];
                    entry.node = m.dest;
                    entry.local = local;
                    self.pending.push(ClusterEvent::MigrationCompleted {
                        tenant: m.tenant,
                        name,
                        from: m.from,
                        to: m.dest,
                        quantum: self.quantum,
                    });
                }
                Err(_) => {
                    // The tenant already drained from its source; it
                    // retires there, and the destination records the
                    // rejection as its own AdmissionRejected event.
                    self.pending.push(ClusterEvent::MigrationFailed {
                        tenant: m.tenant,
                        name,
                        to: m.dest,
                        quantum: self.quantum,
                    });
                }
            }
        }
    }

    /// Phases 3–5: drain node events, balance traffic, auto-migrate.
    fn settle_cross_node(&mut self) {
        for i in 0..self.nodes.len() {
            let events: Vec<ControlEvent> = self.nodes[i].core_mut().drain_events();
            self.pending
                .extend(events.into_iter().map(ClusterEvent::Node));
        }

        if let Some(balance) = self.config.balance {
            let num_lc = self
                .nodes
                .iter()
                .map(|n| n.core().scenario().num_lc())
                .min()
                .unwrap_or(0);
            for lc_index in 0..num_lc {
                let replicas: Vec<(f64, f64)> = self
                    .nodes
                    .iter()
                    .map(|n| {
                        (
                            n.lc_tail_ratio(lc_index).unwrap_or(0.0),
                            n.core().lc_traffic_shares()[lc_index],
                        )
                    })
                    .collect();
                if let Some(shift) = decide_shift(&balance, lc_index, &replicas) {
                    let from_share = replicas[shift.from.index()].1 - shift.amount;
                    let to_share = replicas[shift.to.index()].1 + shift.amount;
                    // Indices came from the replica table we just built,
                    // so the driver cannot refuse them.
                    let _ = self.nodes[shift.from.index()]
                        .core_mut()
                        .set_lc_traffic_share(lc_index, from_share);
                    let _ = self.nodes[shift.to.index()]
                        .core_mut()
                        .set_lc_traffic_share(lc_index, to_share);
                    self.pending.push(ClusterEvent::SharesShifted {
                        lc_index,
                        from: shift.from,
                        to: shift.to,
                        amount: shift.amount,
                        quantum: self.quantum,
                    });
                }
            }
        }

        if let Some(threshold) = self.config.migration.auto_tail_ratio {
            for i in 0..self.nodes.len() {
                if self.nodes[i].last_tail_ratio() <= threshold {
                    continue;
                }
                let source = NodeId::from_index(i);
                // The most recently placed live batch tenant on the
                // breaching node, skipping tenants already in flight.
                let candidate = self
                    .tenants
                    .iter()
                    .enumerate()
                    .rev()
                    .map(|(idx, e)| (ClusterTenantId(idx), e))
                    .find(|(id, e)| {
                        e.node == source
                            && e.app.is_some()
                            && !self.in_flight.iter().any(|m| m.tenant == *id)
                            && self.nodes[i]
                                .core()
                                .tenant(e.local)
                                .is_some_and(|t| t.state().is_live())
                    });
                let Some((id, entry)) = candidate else {
                    continue;
                };
                let Some(app) = entry.app else { continue };
                let scores = self.scores_for(app, Some(source));
                if let Some(dest) = pick_best(&scores, &self.config.placement) {
                    // All preconditions were just checked; a refusal here
                    // would be a coordinator logic bug.
                    let moved = self.migrate(id, dest);
                    debug_assert!(moved.is_ok(), "auto-migration refused: {moved:?}");
                }
            }
        }
    }

    /// Steps one lockstep quantum across the fleet, serially in ascending
    /// node-id order.
    ///
    /// # Errors
    ///
    /// Returns the first stepping node's [`ControlError`] in node-id
    /// order (a control-plane logic bug, surfaced hard).
    pub fn step_quantum(&mut self) -> Result<(), ClusterError> {
        self.step_quantum_ordered(StepOrder::Forward)
    }

    /// Steps one lockstep quantum, walking nodes in the given serial
    /// order. Nodes share nothing within a quantum, so the resulting
    /// state is bit-identical for every order — the determinism tests
    /// step the same cluster both ways and compare records.
    ///
    /// # Errors
    ///
    /// As [`step_quantum`](Self::step_quantum).
    pub fn step_quantum_ordered(&mut self, order: StepOrder) -> Result<(), ClusterError> {
        self.complete_due_migrations();
        let mut first_err: Vec<Option<ControlError>> = Vec::new();
        first_err.resize_with(self.nodes.len(), || None);
        let indices: Vec<usize> = match order {
            StepOrder::Forward => (0..self.nodes.len()).collect(),
            StepOrder::Reverse => (0..self.nodes.len()).rev().collect(),
        };
        for i in indices {
            if let Err(e) = self.nodes[i].step() {
                first_err[i] = Some(e);
            }
        }
        self.finish_quantum(first_err)
    }

    /// Steps one lockstep quantum with per-node work spread over a
    /// borrowed [`WorkerPool`]. Nodes share nothing within a quantum, so
    /// any pool width yields state bit-identical to the serial stepper.
    ///
    /// # Errors
    ///
    /// As [`step_quantum`](Self::step_quantum).
    pub fn step_quantum_pooled(&mut self, pool: &WorkerPool) -> Result<(), ClusterError> {
        self.complete_due_migrations();
        let mut results: Vec<Option<ControlError>> = Vec::new();
        results.resize_with(self.nodes.len(), || None);
        pool.scope(|scope| {
            for (node, slot) in self.nodes.iter_mut().zip(results.iter_mut()) {
                scope.spawn(move || {
                    if let Err(e) = node.step() {
                        *slot = Some(e);
                    }
                });
            }
        });
        self.finish_quantum(results)
    }

    /// Phase-2 epilogue shared by every stepper: surface the first error
    /// in node-id order, then run the serial cross-node phases.
    fn finish_quantum(
        &mut self,
        mut errors: Vec<Option<ControlError>>,
    ) -> Result<(), ClusterError> {
        if let Some(e) = errors.iter_mut().find_map(Option::take) {
            return Err(ClusterError::Control(e));
        }
        self.settle_cross_node();
        self.quantum += 1;
        Ok(())
    }

    /// Whether every node's declared horizon has been simulated.
    pub fn is_done(&self) -> bool {
        self.nodes.iter().all(|n| n.core().is_done())
    }

    /// Takes every cluster event queued since the previous drain.
    pub fn drain_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.pending)
    }

    /// A point-in-time view of the whole cluster.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            quantum: self.quantum,
            nodes: self.nodes.iter().map(|n| n.core().snapshot()).collect(),
            lc_shares: self
                .nodes
                .iter()
                .map(|n| n.core().lc_traffic_shares().to_vec())
                .collect(),
            tenants: self
                .tenants
                .iter()
                .enumerate()
                .map(|(i, e)| ClusterTenantSnapshot {
                    name: e.name.clone(),
                    kind: if e.app.is_some() {
                        "batch"
                    } else {
                        "latency_critical"
                    },
                    node: self.tenant_node(ClusterTenantId(i)).unwrap_or(e.node),
                    state: self
                        .tenant_state(ClusterTenantId(i))
                        .unwrap_or(LifecycleState::Retired),
                })
                .collect(),
            in_flight: self.in_flight.len(),
        }
    }

    /// Drains every node to retirement: in-flight migrations are
    /// abandoned (the tenant is already drained from its source), then
    /// each node's control plane shuts down in node-id order.
    ///
    /// # Errors
    ///
    /// Propagates the first node's [`ControlError`] — impossible by the
    /// transition table, so any error here is a logic bug.
    pub fn shutdown(&mut self) -> Result<(), ClusterError> {
        self.in_flight.clear();
        for node in self.nodes.iter_mut() {
            node.core_mut().shutdown()?;
            // The drain emits lifecycle events (Draining, Retired) on the
            // node core; surface them like any other quantum's phase 3.
            let events: Vec<ControlEvent> = node.core_mut().drain_events();
            self.pending
                .extend(events.into_iter().map(ClusterEvent::Node));
        }
        Ok(())
    }

    /// Consumes the coordinator into the completed cluster record.
    pub fn into_record(self) -> ClusterRecord {
        ClusterRecord {
            quanta: self.quantum,
            nodes: self
                .nodes
                .into_iter()
                .map(|n| {
                    let core = n.into_core();
                    core.into_record()
                })
                .collect(),
        }
    }
}
