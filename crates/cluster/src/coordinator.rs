//! The deterministic cluster coordinator.
//!
//! [`ClusterCoordinator`] owns N [`NodeAgent`]s and steps them through the
//! same 100 ms decision quantum in lockstep. One quantum is six phases,
//! in a fixed order:
//!
//! 0. **Health** (serial, node-id order): inject this quantum's planned
//!    fleet faults ([`FleetFaultPlan`]), observe every node's heartbeat
//!    (did it answer the previous steps, or is it crashed / blacked out /
//!    slow?), advance each node's [`NodeHealth`] state machine, evacuate
//!    nodes newly declared Down, retry the displaced queue with bounded
//!    backoff, and run the fleet degraded-mode hysteresis.
//! 1. **Complete due migrations** (serial, start order): a tenant whose
//!    modeled migration cost has elapsed is admitted on its destination;
//!    a refusal schedules a bounded retry against the next-best node.
//! 2. **Step every steppable node** — serially in either direction or on
//!    a borrowed [`WorkerPool`]; nodes share nothing within a quantum, so
//!    any schedule reaches bit-identical state. Crashed and drained nodes
//!    never step again; blacked-out nodes keep stepping (they are alive,
//!    just unobservable — the split-brain is reconciled on rejoin).
//! 3. **Drain node events** into the cluster event queue, in node-id
//!    order.
//! 4. **Balance** LC traffic shares from the quantum's tail ratios.
//! 5. **Auto-migrate** (when configured): a node still breaching after
//!    balancing offloads its most recently placed batch tenant.
//!
//! Phases 0–1 and 3–5 are the only cross-node code, and they run serially
//! in node-id order — that is the whole determinism argument (see the
//! crate docs), and `tests/cluster.rs` plus `tests/fleet_resilience.rs`
//! pin it. With [`FleetFaultPlan::none`] phase 0 observes a clean
//! heartbeat on every Up node and does nothing at all, so a fault-free
//! coordinator is bit-identical to one built before faults existed.

use cuttlesys::control::AdmissionError;
use cuttlesys::control::{ControlError, ControlEvent, ControlSnapshot, TenantId, TenantKind};
use cuttlesys::lifecycle::{LifecycleState, NodeId, RelocationTarget};
use cuttlesys::types::RunRecord;
use util::json::JsonValue;
use util::WorkerPool;
use workloads::batch::SpecBenchmark;

use crate::balance::{decide_shift, BalanceConfig};
use crate::faults::{FleetFaultInjector, FleetFaultPlan};
use crate::health::{retry_backoff, DegradedMode, HealthConfig, HealthTracker, NodeHealth};
use crate::migration::{InFlight, MigrateError, MigrationConfig};
use crate::node::NodeAgent;
use crate::placement::{pick_best, PlacementConfig, PlacementError, PlacementScore};
use crate::topology::ClusterScenario;

/// Opaque handle to one tenant in the cluster's tenant table. Ids are
/// never reused; a migrated tenant keeps its id across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterTenantId(usize);

impl ClusterTenantId {
    /// The tenant's index in the cluster tenant table.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from its table index.
    pub fn from_index(index: usize) -> ClusterTenantId {
        ClusterTenantId(index)
    }
}

impl std::fmt::Display for ClusterTenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Which direction the serial stepper walks the node table — exists so
/// the determinism tests can pin that the order is immaterial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepOrder {
    /// Ascending node id (the canonical order).
    #[default]
    Forward,
    /// Descending node id.
    Reverse,
}

/// Cluster-wide policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterConfig {
    /// Placement score weights.
    pub placement: PlacementConfig,
    /// Migration cost model and auto-migration trigger.
    pub migration: MigrationConfig,
    /// Traffic balancing; `None` disables it.
    pub balance: Option<BalanceConfig>,
    /// Health detection thresholds, displaced-retry backoff, and the
    /// fleet degraded-mode hysteresis.
    pub health: HealthConfig,
}

/// What the fault plan has done to one node so far — mechanical truth,
/// as opposed to the coordinator's *knowledge* in [`NodeHealth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct NodeFate {
    /// The node crashed; it never steps again.
    crashed: bool,
    /// The node was drained for maintenance; it never steps again.
    drained: bool,
    /// Blacked out (silent but alive) until this quantum.
    silent_until: usize,
    /// This quantum's step overran its deadline (one missed heartbeat);
    /// refreshed by fault injection every quantum.
    slow: bool,
}

impl NodeFate {
    /// Whether the node still executes steps.
    fn steppable(self) -> bool {
        !self.crashed && !self.drained
    }

    /// Whether the node fails to heartbeat at `quantum`.
    fn silent_at(self, quantum: usize) -> bool {
        self.crashed || self.drained || quantum < self.silent_until || self.slow
    }
}

/// One evacuated tenant the fleet had no room for: parked, retried each
/// quantum its backoff allows, never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DisplacedTenant {
    tenant: ClusterTenantId,
    /// The failed node it was evacuated from.
    from: NodeId,
    /// Placement attempts so far (drives the backoff).
    attempts: u32,
    /// The next quantum at which placement is retried.
    retry_at: usize,
}

/// One row of the cluster tenant table.
#[derive(Debug, Clone)]
struct ClusterTenantEntry {
    name: String,
    /// The batch app, kept for re-admission on migration (`None` for LC
    /// tenants, which never move).
    app: Option<SpecBenchmark>,
    node: NodeId,
    local: TenantId,
}

/// A cluster-level occurrence. Per-node [`ControlEvent`]s are wrapped so
/// one drain sees the whole fleet's history in order.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterEvent {
    /// A node's control plane produced an event.
    Node(ControlEvent),
    /// Placement put a tenant on a node.
    Placed {
        /// The new tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The chosen node.
        node: NodeId,
    },
    /// A migration began: the tenant drained from `from` and is in flight.
    MigrationStarted {
        /// The moving tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The source node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The quantum at whose start the destination admit happens.
        admit_at: usize,
    },
    /// A migration completed: the tenant was admitted on its destination.
    MigrationCompleted {
        /// The moved tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The source node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The quantum at whose start the admit happened.
        quantum: usize,
    },
    /// A destination refused an in-flight tenant's admit (the node is
    /// down, or its admission control rejected the tenant). Followed by
    /// either [`ClusterEvent::MigrationRetried`] or
    /// [`ClusterEvent::MigrationAbandoned`].
    MigrationFailed {
        /// The tenant that failed to move.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The destination that rejected it.
        to: NodeId,
        /// The quantum at whose start the admit was attempted.
        quantum: usize,
    },
    /// A refused migration was re-aimed at the next-best node with
    /// bounded backoff.
    MigrationRetried {
        /// The still-in-flight tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The new destination (the old one when nothing else fits).
        to: NodeId,
        /// The quantum at whose start the next admit happens.
        admit_at: usize,
        /// Refusals so far.
        attempt: usize,
        /// The quantum of the refusal.
        quantum: usize,
    },
    /// A migration exhausted its retries; the tenant retires drained.
    MigrationAbandoned {
        /// The abandoned tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The last destination that refused it.
        to: NodeId,
        /// Total refusals.
        attempts: usize,
        /// The quantum of the final refusal.
        quantum: usize,
    },
    /// A node's health state changed (missed or recovered heartbeats, or
    /// a deliberate drain).
    NodeHealthChanged {
        /// The node.
        node: NodeId,
        /// Previous state.
        from: NodeHealth,
        /// New state.
        to: NodeHealth,
        /// The quantum of the transition.
        quantum: usize,
    },
    /// A node was deliberately drained for maintenance: tenants evacuate
    /// with warning, then the node's control plane shuts down cleanly.
    NodeDrained {
        /// The drained node.
        node: NodeId,
        /// The quantum of the drain.
        quantum: usize,
    },
    /// A tenant was moved off a failed or draining node: batch tenants
    /// re-enter admission on the destination; LC tenants fold their
    /// traffic share onto the surviving replica.
    Evacuated {
        /// The evacuated tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The failed node.
        from: NodeId,
        /// The node that took it in.
        to: NodeId,
        /// The quantum of the evacuation.
        quantum: usize,
    },
    /// An evacuated tenant had nowhere to go and was parked in the
    /// displaced queue; emitted again after every failed retry.
    Displaced {
        /// The parked tenant.
        tenant: ClusterTenantId,
        /// Its registered name.
        name: String,
        /// The failed node it came from.
        from: NodeId,
        /// Placement attempts so far.
        attempts: u32,
        /// The quantum of the next retry.
        retry_at: usize,
        /// The quantum of this failure.
        quantum: usize,
    },
    /// Lost capacity left displaced tenants unplaceable for long enough;
    /// the fleet starts shedding batch work (then shrinking LC shares
    /// toward safe-mode allocations) until placement is feasible again.
    FleetDegraded {
        /// The quantum degraded mode engaged.
        quantum: usize,
    },
    /// The fleet has been feasible long enough to leave degraded mode.
    FleetRecovered {
        /// The quantum degraded mode disengaged.
        quantum: usize,
    },
    /// The balance policy moved LC traffic share between replicas.
    SharesShifted {
        /// The LC service index.
        lc_index: usize,
        /// The replica that shed traffic.
        from: NodeId,
        /// The replica that absorbed it.
        to: NodeId,
        /// Share units moved.
        amount: f64,
        /// The quantum whose tail ratios triggered the shift.
        quantum: usize,
    },
}

/// A cluster request that could not be honored.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// No tenant has this id.
    UnknownTenant(ClusterTenantId),
    /// The operation applies only to batch tenants.
    NotABatchTenant(ClusterTenantId),
    /// The node id is not in the cluster.
    UnknownNode(NodeId),
    /// The node is already down, drained, or crashed.
    NodeUnavailable(NodeId),
    /// The tenant is mid-migration; wait for the move to settle.
    InFlight(ClusterTenantId),
    /// A node's admission control rejected a directed registration.
    Admission(AdmissionError),
    /// A node's control plane refused a request.
    Control(ControlError),
    /// A migration request was refused.
    Migrate(MigrateError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownTenant(t) => write!(f, "unknown cluster tenant {t}"),
            ClusterError::NotABatchTenant(t) => {
                write!(f, "tenant {t} is latency-critical and pinned to its node")
            }
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::NodeUnavailable(n) => {
                write!(f, "node {n} is already down, drained, or crashed")
            }
            ClusterError::InFlight(t) => write!(f, "tenant {t} is mid-migration"),
            ClusterError::Admission(e) => write!(f, "{e}"),
            ClusterError::Control(e) => write!(f, "{e}"),
            ClusterError::Migrate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ControlError> for ClusterError {
    fn from(e: ControlError) -> ClusterError {
        ClusterError::Control(e)
    }
}

impl From<MigrateError> for ClusterError {
    fn from(e: MigrateError) -> ClusterError {
        ClusterError::Migrate(e)
    }
}

/// A serializable view of one cluster tenant for [`ClusterSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTenantSnapshot {
    /// Registered name.
    pub name: String,
    /// `"latency_critical"` or `"batch"`.
    pub kind: &'static str,
    /// The node currently (or last) hosting the tenant.
    pub node: NodeId,
    /// The cluster-visible lifecycle state: the hosting node's view, or
    /// `Relocating(Node(dest))` while the tenant is in flight.
    pub state: LifecycleState,
}

/// A point-in-time view of the whole cluster (the cluster `/state`
/// endpoint renders it via [`ClusterSnapshot::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// Lockstep quanta completed so far.
    pub quantum: usize,
    /// Per-node control-plane snapshots, in node-id order.
    pub nodes: Vec<ControlSnapshot>,
    /// Per-node LC traffic shares, in node-id order.
    pub lc_shares: Vec<Vec<f64>>,
    /// The cluster tenant table, in registration order.
    pub tenants: Vec<ClusterTenantSnapshot>,
    /// Tenants currently mid-migration.
    pub in_flight: usize,
    /// Per-node health state names, in node-id order.
    pub node_health: Vec<&'static str>,
    /// Tenants parked in the displaced queue.
    pub displaced: usize,
    /// Evacuations performed so far.
    pub evacuations: usize,
    /// Whether the fleet is in degraded mode.
    pub degraded: bool,
}

impl ClusterSnapshot {
    /// The snapshot as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("quantum", self.quantum.into()),
            ("in_flight", self.in_flight.into()),
            ("displaced", self.displaced.into()),
            ("evacuations", self.evacuations.into()),
            ("degraded", self.degraded.into()),
            (
                "node_health",
                JsonValue::Arr(
                    self.node_health
                        .iter()
                        .map(|h| JsonValue::from(*h))
                        .collect(),
                ),
            ),
            (
                "nodes",
                JsonValue::Arr(self.nodes.iter().map(ControlSnapshot::to_json).collect()),
            ),
            (
                "lc_shares",
                JsonValue::Arr(
                    self.lc_shares
                        .iter()
                        .map(|shares| JsonValue::array(shares.iter().copied()))
                        .collect(),
                ),
            ),
            (
                "tenants",
                JsonValue::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            JsonValue::object([
                                ("name", t.name.as_str().into()),
                                ("kind", t.kind.into()),
                                ("node", t.node.to_string().into()),
                                ("state", t.state.name().into()),
                                (
                                    "target",
                                    t.state
                                        .relocation_target()
                                        .map(|n| n.to_string().into())
                                        .unwrap_or(JsonValue::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A completed cluster run: every node's [`RunRecord`] plus the lockstep
/// quantum count. Bit-for-bit equality of two `ClusterRecord`s (after
/// [`comparable`](Self::comparable)) is the determinism criterion the
/// cluster tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRecord {
    /// Lockstep quanta the coordinator ran.
    pub quanta: usize,
    /// Per-node records, in node-id order.
    pub nodes: Vec<RunRecord>,
}

impl ClusterRecord {
    /// The record with every node's wall-clock telemetry zeroed (see
    /// [`RunRecord::comparable`]).
    pub fn comparable(self) -> ClusterRecord {
        ClusterRecord {
            quanta: self.quanta,
            nodes: self.nodes.into_iter().map(RunRecord::comparable).collect(),
        }
    }

    /// Worst tail-latency-to-QoS ratio across the fleet.
    pub fn worst_tail_ratio(&self) -> f64 {
        self.nodes
            .iter()
            .map(RunRecord::worst_tail_ratio)
            .fold(0.0, f64::max)
    }
}

/// N per-node agents stepped in lockstep under deterministic cross-node
/// placement, migration, and balancing policies.
pub struct ClusterCoordinator {
    nodes: Vec<NodeAgent>,
    tenants: Vec<ClusterTenantEntry>,
    in_flight: Vec<InFlight>,
    config: ClusterConfig,
    quantum: usize,
    pending: Vec<ClusterEvent>,
    faults: FleetFaultInjector,
    /// Per-node health detectors, in node-id order.
    health: Vec<HealthTracker>,
    /// Per-node mechanical fault state, in node-id order.
    fate: Vec<NodeFate>,
    /// Evacuated tenants with nowhere to go, in displacement order.
    displaced: Vec<DisplacedTenant>,
    /// Per-node local tenant rows that were evacuated elsewhere while the
    /// node was unobservable-but-alive (blackout split-brain); drained
    /// when the node rejoins.
    stale_locals: Vec<Vec<TenantId>>,
    degraded: DegradedMode,
    /// Evacuations performed so far (batch re-placements + LC foldings).
    evacuations: usize,
}

impl ClusterCoordinator {
    /// Builds the coordinator with default policies. Every tenant each
    /// node's scenario declares is seeded into the cluster tenant table.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NodeAgent::new`].
    pub fn new(scenario: &ClusterScenario) -> ClusterCoordinator {
        ClusterCoordinator::with_config(scenario, ClusterConfig::default())
    }

    /// Builds the coordinator with explicit policies and no fleet faults.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NodeAgent::new`].
    pub fn with_config(scenario: &ClusterScenario, config: ClusterConfig) -> ClusterCoordinator {
        ClusterCoordinator::with_faults(scenario, config, FleetFaultPlan::none())
    }

    /// Builds the coordinator with explicit policies and a fleet fault
    /// plan. [`FleetFaultPlan::none`] makes this identical to
    /// [`with_config`](Self::with_config) — the clean plan performs no
    /// draws and injects nothing.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NodeAgent::new`].
    pub fn with_faults(
        scenario: &ClusterScenario,
        config: ClusterConfig,
        plan: FleetFaultPlan,
    ) -> ClusterCoordinator {
        let nodes: Vec<NodeAgent> = scenario
            .nodes
            .iter()
            .enumerate()
            .map(|(i, s)| NodeAgent::new(s, NodeId::from_index(i)))
            .collect();
        let mut tenants = Vec::new();
        for agent in &nodes {
            let scenario = agent.core().scenario();
            let batch_apps: Vec<SpecBenchmark> =
                scenario.batch_jobs().iter().map(|b| b.app).collect();
            for (i, t) in agent.core().tenants().iter().enumerate() {
                tenants.push(ClusterTenantEntry {
                    name: t.name().to_string(),
                    app: match t.kind() {
                        TenantKind::Batch { batch_index } => batch_apps.get(batch_index).copied(),
                        TenantKind::LatencyCritical { .. } => None,
                    },
                    node: agent.id(),
                    local: TenantId::from_index(i),
                });
            }
        }
        let n = nodes.len();
        ClusterCoordinator {
            nodes,
            tenants,
            in_flight: Vec::new(),
            config,
            quantum: 0,
            pending: Vec::new(),
            faults: FleetFaultInjector::new(plan),
            health: vec![HealthTracker::new(); n],
            fate: vec![NodeFate::default(); n],
            displaced: Vec::new(),
            stale_locals: vec![Vec::new(); n],
            degraded: DegradedMode::new(),
            evacuations: 0,
        }
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Lockstep quanta completed so far.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// One node's agent, if the id is valid.
    pub fn node(&self, id: NodeId) -> Option<&NodeAgent> {
        self.nodes.get(id.index())
    }

    /// One node's health state, if the id is valid.
    pub fn node_health(&self, id: NodeId) -> Option<NodeHealth> {
        self.health.get(id.index()).map(HealthTracker::state)
    }

    /// Tenants currently parked in the displaced queue.
    pub fn displaced_tenants(&self) -> usize {
        self.displaced.len()
    }

    /// Evacuations performed so far (batch re-placements plus LC traffic
    /// foldings).
    pub fn evacuations_total(&self) -> usize {
        self.evacuations
    }

    /// Whether the fleet is in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.active()
    }

    /// The fleet fault plan this coordinator injects from.
    pub fn fault_plan(&self) -> &FleetFaultPlan {
        self.faults.plan()
    }

    /// The cluster-visible lifecycle state of a tenant: its hosting
    /// node's view, overlaid with `Relocating(Node(dest))` while the
    /// tenant is in flight between nodes and `Relocating(Displaced)`
    /// while it is parked in the displaced queue.
    pub fn tenant_state(&self, id: ClusterTenantId) -> Option<LifecycleState> {
        let entry = self.tenants.get(id.0)?;
        if let Some(m) = self.in_flight.iter().find(|m| m.tenant == id) {
            return Some(LifecycleState::Relocating(RelocationTarget::Node(m.dest)));
        }
        if self.displaced.iter().any(|d| d.tenant == id) {
            return Some(LifecycleState::Relocating(RelocationTarget::Displaced));
        }
        self.nodes
            .get(entry.node.index())?
            .core()
            .tenant(entry.local)
            .map(|t| t.state())
    }

    /// The node currently (or last) hosting a tenant.
    pub fn tenant_node(&self, id: ClusterTenantId) -> Option<NodeId> {
        if let Some(m) = self.in_flight.iter().find(|m| m.tenant == id) {
            return Some(m.dest);
        }
        self.tenants.get(id.0).map(|e| e.node)
    }

    /// Scores every *serving* node (minus `exclude`) as a placement
    /// candidate for `app`, in node-id order. "Serving" is the
    /// coordinator's knowledge ([`NodeHealth::is_serving`]), not ground
    /// truth: a crashed node stays a candidate until its failure is
    /// detected, and the tenants placed on it in that window are
    /// recovered by the evacuation the detection triggers.
    fn scores_for(&self, app: SpecBenchmark, exclude: Option<NodeId>) -> Vec<PlacementScore> {
        self.nodes
            .iter()
            .filter(|n| Some(n.id()) != exclude)
            .filter(|n| self.health[n.id().index()].state().is_serving())
            .map(|n| {
                let (required, budget) = n.core().admission_preview(app);
                let scenario = n.core().scenario();
                let batch_names: Vec<&'static str> =
                    scenario.batch_jobs().iter().map(|b| b.app.name).collect();
                let same_app = n
                    .core()
                    .tenants()
                    .iter()
                    .filter(|t| t.state().is_live())
                    .filter(|t| match t.kind() {
                        TenantKind::Batch { batch_index } => {
                            batch_names.get(batch_index) == Some(&app.name)
                        }
                        TenantKind::LatencyCritical { .. } => false,
                    })
                    .count();
                PlacementScore {
                    node: n.id(),
                    headroom_watts: budget - required,
                    same_app_tenants: same_app,
                    live_tenants: n.live_tenants(),
                }
            })
            .collect()
    }

    /// The placement arithmetic for a candidate, without registering it:
    /// per-node scores in node-id order (the bench and example report
    /// these).
    pub fn placement_scores(&self, app: SpecBenchmark) -> Vec<PlacementScore> {
        self.scores_for(app, None)
    }

    /// Registers a batch tenant, letting placement choose the node.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NoCapacity`] when no node's steady-state
    /// budget fits the candidate's worst case.
    pub fn register_batch(
        &mut self,
        name: &str,
        app: SpecBenchmark,
    ) -> Result<ClusterTenantId, PlacementError> {
        let scores = self.scores_for(app, None);
        let Some(node) = pick_best(&scores, &self.config.placement) else {
            // Report the least-infeasible node's arithmetic (ties toward
            // the lowest id, matching every other policy here).
            let closest = scores.iter().reduce(|a, b| {
                if b.headroom_watts > a.headroom_watts {
                    b
                } else {
                    a
                }
            });
            return Err(match closest {
                Some(s) => {
                    let (required, budget) = self
                        .nodes
                        .get(s.node.index())
                        .map(|n| n.core().admission_preview(app))
                        .unwrap_or((0.0, 0.0));
                    PlacementError::NoCapacity {
                        closest: s.node,
                        required_watts: required,
                        budget_watts: budget,
                    }
                }
                None => PlacementError::UnknownNode(NodeId::local()),
            });
        };
        self.register_batch_on(node, name, app)
            .map_err(|e| match e {
                ClusterError::Admission(AdmissionError::PowerBudgetExceeded {
                    required_watts,
                    budget_watts,
                }) => PlacementError::NoCapacity {
                    closest: node,
                    required_watts,
                    budget_watts,
                },
                // register_batch_on only fails with Admission or UnknownNode,
                // and the node came from our own table.
                _ => PlacementError::UnknownNode(node),
            })
    }

    /// Registers a batch tenant on a specific node, bypassing placement
    /// (the migration engine's admit half uses exactly this path, which
    /// is what makes a migration equal a drain plus a directed admit).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] for an invalid node,
    /// [`ClusterError::Admission`] when the node's admission control
    /// rejects the tenant (the rejection is still recorded on the node).
    pub fn register_batch_on(
        &mut self,
        node: NodeId,
        name: &str,
        app: SpecBenchmark,
    ) -> Result<ClusterTenantId, ClusterError> {
        let agent = self
            .nodes
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        let local = agent
            .core_mut()
            .register_batch(name, app)
            .map_err(ClusterError::Admission)?;
        let id = ClusterTenantId(self.tenants.len());
        self.tenants.push(ClusterTenantEntry {
            name: name.to_string(),
            app: Some(app),
            node,
            local,
        });
        self.pending.push(ClusterEvent::Placed {
            tenant: id,
            name: name.to_string(),
            node,
        });
        Ok(id)
    }

    /// Deregisters a batch tenant: it drains on its node and retires.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InFlight`] while the tenant is mid-migration;
    /// otherwise the hosting node's [`ControlError`].
    pub fn deregister(&mut self, id: ClusterTenantId) -> Result<(), ClusterError> {
        if self.in_flight.iter().any(|m| m.tenant == id) {
            return Err(ClusterError::InFlight(id));
        }
        let entry = self
            .tenants
            .get(id.0)
            .ok_or(ClusterError::UnknownTenant(id))?;
        if entry.app.is_none() {
            return Err(ClusterError::NotABatchTenant(id));
        }
        let (node, local) = (entry.node, entry.local);
        self.nodes
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?
            .core_mut()
            .deregister(local)?;
        Ok(())
    }

    /// Starts migrating a batch tenant to `dest`: drains it on its source
    /// now, admits it on `dest` after the configured cost in quanta.
    /// While in flight the tenant's cluster state is
    /// `Relocating(Node(dest))`.
    ///
    /// # Errors
    ///
    /// Returns [`MigrateError`] when the tenant cannot move (unknown, LC,
    /// already in flight, same node, unknown destination, or the source
    /// refuses the drain).
    pub fn migrate(&mut self, id: ClusterTenantId, dest: NodeId) -> Result<(), MigrateError> {
        if self.in_flight.iter().any(|m| m.tenant == id) {
            return Err(MigrateError::AlreadyInFlight(id));
        }
        let entry = self
            .tenants
            .get(id.0)
            .ok_or(MigrateError::UnknownTenant(id))?;
        if entry.app.is_none() {
            return Err(MigrateError::NotABatchTenant(id));
        }
        if dest.index() >= self.nodes.len() {
            return Err(MigrateError::UnknownNode(dest));
        }
        if entry.node == dest {
            return Err(MigrateError::SameNode(dest));
        }
        let (from, local, name) = (entry.node, entry.local, entry.name.clone());
        self.nodes[from.index()]
            .core_mut()
            .deregister(local)
            .map_err(MigrateError::Source)?;
        let admit_at = self.quantum + self.config.migration.cost_quanta.max(1);
        self.in_flight.push(InFlight {
            tenant: id,
            from,
            dest,
            admit_at,
            attempts: 0,
        });
        self.pending.push(ClusterEvent::MigrationStarted {
            tenant: id,
            name,
            from,
            to: dest,
            admit_at,
        });
        Ok(())
    }

    /// Deliberately drains a node for maintenance: its tenants evacuate
    /// with warning (batch re-enters admission elsewhere, LC traffic
    /// folds onto surviving replicas), its control plane shuts down
    /// cleanly, and it is declared Down. The node never steps again.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] for an invalid id;
    /// [`ClusterError::NodeUnavailable`] when the node is already down,
    /// drained, or crashed.
    pub fn drain_node(&mut self, node: NodeId) -> Result<(), ClusterError> {
        if node.index() >= self.nodes.len() {
            return Err(ClusterError::UnknownNode(node));
        }
        let fate = self.fate[node.index()];
        if fate.crashed || fate.drained || self.health[node.index()].state().is_down() {
            return Err(ClusterError::NodeUnavailable(node));
        }
        self.drain_node_inner(node.index());
        Ok(())
    }

    /// The drain mechanics, shared by [`drain_node`](Self::drain_node)
    /// and the fault plan's scheduled-maintenance stream.
    fn drain_node_inner(&mut self, node_index: usize) {
        let node = NodeId::from_index(node_index);
        self.pending.push(ClusterEvent::NodeDrained {
            node,
            quantum: self.quantum,
        });
        self.fate[node_index].drained = true;
        // Down *before* evacuating, so the node cannot be chosen as its
        // own tenants' destination.
        if let Some((from, to)) = self.health[node_index].force_down() {
            self.pending.push(ClusterEvent::NodeHealthChanged {
                node,
                from,
                to,
                quantum: self.quantum,
            });
        }
        self.evacuate_node(node_index);
        // The node's control plane shuts down cleanly: every remaining
        // local row (the evacuees' old rows and any unplaceable
        // stragglers') drains and retires. Impossible to refuse by the
        // transition table.
        let _ = self.nodes[node_index].core_mut().shutdown();
    }

    /// Phase 0: inject planned faults, observe heartbeats, advance every
    /// node's health state machine, evacuate nodes newly declared Down,
    /// retry the displaced queue, and run the degraded-mode hysteresis —
    /// all serial, in node-id order. On a healthy fleet with a clean
    /// fault plan every step here is a no-op, which is why
    /// [`FleetFaultPlan::none`] leaves the coordinator bit-identical to
    /// one built before faults existed.
    fn health_phase(&mut self) {
        let q = self.quantum;
        // (a) Inject this quantum's faults (a clean plan performs no
        // draws at all).
        for i in 0..self.nodes.len() {
            let verdict = self.faults.node_quantum(NodeId::from_index(i), q);
            self.fate[i].slow = verdict.slow;
            if verdict.crash {
                self.fate[i].crashed = true;
            }
            if verdict.blackout_quanta > 0 {
                let until = q + verdict.blackout_quanta;
                self.fate[i].silent_until = self.fate[i].silent_until.max(until);
            }
            if verdict.drain && self.fate[i].steppable() && !self.health[i].state().is_down() {
                self.drain_node_inner(i);
            }
        }
        // (b) Observe heartbeats and advance each state machine. The
        // heartbeat is the one observable the coordinator has: did the
        // node answer this quantum, or is it crashed / blacked out /
        // overrunning its step deadline? Timeouts are quantum-counted,
        // never wall-clock.
        for i in 0..self.nodes.len() {
            let beat = !self.fate[i].silent_at(q);
            let Some((from, to)) = self.health[i].observe(beat, &self.config.health) else {
                continue;
            };
            self.pending.push(ClusterEvent::NodeHealthChanged {
                node: NodeId::from_index(i),
                from,
                to,
                quantum: q,
            });
            if to.is_down() {
                self.evacuate_node(i);
            } else if from.is_down() {
                self.reconcile_rejoin(i);
            }
        }
        // (c) Retry displaced tenants whose backoff has elapsed.
        self.retry_displaced();
        // (d) Degraded-mode hysteresis: the fleet is infeasible while
        // displaced tenants remain unplaceable after their retries.
        let infeasible = !self.displaced.is_empty();
        match self.degraded.observe(infeasible, &self.config.health) {
            Some(true) => self
                .pending
                .push(ClusterEvent::FleetDegraded { quantum: q }),
            Some(false) => self
                .pending
                .push(ClusterEvent::FleetRecovered { quantum: q }),
            None => {}
        }
        if self.degraded.active() {
            self.shed_for_capacity();
        }
    }

    /// Moves every recoverable tenant off a node that has been declared
    /// Down, in tenant-id order: batch tenants re-enter admission on the
    /// best-scoring serving node (or park in the displaced queue), LC
    /// tenants fold their traffic share onto the best surviving replica.
    fn evacuate_node(&mut self, node_index: usize) {
        let source = NodeId::from_index(node_index);
        let candidates: Vec<ClusterTenantId> = (0..self.tenants.len())
            .map(ClusterTenantId)
            .filter(|id| {
                let e = &self.tenants[id.0];
                e.node == source
                    && !self.in_flight.iter().any(|m| m.tenant == *id)
                    && !self.displaced.iter().any(|d| d.tenant == *id)
                    && self.nodes[node_index]
                        .core()
                        .tenant(e.local)
                        .is_some_and(|t| {
                            matches!(
                                t.state(),
                                LifecycleState::Admitted
                                    | LifecycleState::Running
                                    | LifecycleState::Degraded
                                    | LifecycleState::Relocating(_)
                            )
                        })
            })
            .collect();
        for id in candidates {
            if self.tenants[id.0].app.is_some() {
                if !self.place_evacuee(id) {
                    self.park(id, source);
                }
            } else {
                self.evacuate_lc(id);
            }
        }
    }

    /// Parks an unplaceable evacuee in the displaced queue with the
    /// initial backoff. Parked tenants are retried every quantum their
    /// backoff allows; they are never dropped.
    fn park(&mut self, id: ClusterTenantId, from: NodeId) {
        let retry_at = self.quantum + retry_backoff(&self.config.health, 0);
        self.displaced.push(DisplacedTenant {
            tenant: id,
            from,
            attempts: 0,
            retry_at,
        });
        self.pending.push(ClusterEvent::Displaced {
            tenant: id,
            name: self.tenants[id.0].name.clone(),
            from,
            attempts: 0,
            retry_at,
            quantum: self.quantum,
        });
    }

    /// Tries to find a batch evacuee a home. Returns `true` when the
    /// tenant is settled: admitted on a serving node, or resolved in
    /// place because its home node rejoined (a short blackout can end
    /// before the tenant is ever re-placed) — its old row is still live
    /// there, so it never actually left.
    fn place_evacuee(&mut self, id: ClusterTenantId) -> bool {
        let entry = &self.tenants[id.0];
        let home = entry.node;
        let old_local = entry.local;
        let name = entry.name.clone();
        if self.health[home.index()].state().is_serving()
            && self.fate[home.index()].steppable()
            && self.nodes[home.index()]
                .core()
                .tenant(old_local)
                .is_some_and(|t| t.state().is_live())
        {
            return true;
        }
        let Some(app) = entry.app else { return true };
        let scores = self.scores_for(app, Some(home));
        let Some(dest) = pick_best(&scores, &self.config.placement) else {
            return false;
        };
        match self.nodes[dest.index()]
            .core_mut()
            .register_batch(&name, app)
        {
            Ok(local) => {
                if self.fate[home.index()].steppable() {
                    // The old row still exists on an alive-but-silent
                    // node (blackout split-brain): remember it so the
                    // duplicate drains when the node rejoins.
                    self.stale_locals[home.index()].push(old_local);
                }
                let entry = &mut self.tenants[id.0];
                entry.node = dest;
                entry.local = local;
                self.evacuations += 1;
                self.pending.push(ClusterEvent::Evacuated {
                    tenant: id,
                    name,
                    from: home,
                    to: dest,
                    quantum: self.quantum,
                });
                true
            }
            Err(_) => false,
        }
    }

    /// Evacuates one LC tenant by folding its traffic share onto the
    /// best surviving replica of the same service. LC tenants cannot
    /// re-enter admission (their matrix rows and queue state are pinned),
    /// so the *traffic* moves instead — the cluster entry is re-homed to
    /// the survivor's own LC row, which may leave two cluster entries
    /// mapping to the same local row until the failed node is replaced.
    fn evacuate_lc(&mut self, id: ClusterTenantId) {
        let entry = &self.tenants[id.0];
        let source = entry.node;
        let old_local = entry.local;
        let name = entry.name.clone();
        let Some(TenantKind::LatencyCritical { lc_index }) = self.nodes[source.index()]
            .core()
            .tenant(old_local)
            .map(|t| t.kind())
        else {
            return;
        };
        // Surviving replicas: serving nodes that host this LC service.
        // Scored through the shared placement policy (tenant-count
        // pressure only; LC admission is not power-gated here).
        let scores: Vec<PlacementScore> = self
            .nodes
            .iter()
            .filter(|n| n.id() != source)
            .filter(|n| self.health[n.id().index()].state().is_serving())
            .filter(|n| n.core().scenario().num_lc() > lc_index)
            .map(|n| PlacementScore {
                node: n.id(),
                headroom_watts: 0.0,
                same_app_tenants: 1,
                live_tenants: n.live_tenants(),
            })
            .collect();
        let Some(dest) = pick_best(&scores, &self.config.placement) else {
            // No surviving replica hosts this service: the traffic has
            // nowhere to fold. The entry stays homed on the failed node.
            return;
        };
        let src_share = self.nodes[source.index()].core().lc_traffic_shares()[lc_index];
        let dest_share = self.nodes[dest.index()].core().lc_traffic_shares()[lc_index];
        // Indices are valid by the filters above; the driver cannot
        // refuse them.
        let _ = self.nodes[source.index()]
            .core_mut()
            .set_lc_traffic_share(lc_index, 0.0);
        let _ = self.nodes[dest.index()]
            .core_mut()
            .set_lc_traffic_share(lc_index, dest_share + src_share);
        let dest_local = self.nodes[dest.index()].core().tenants().iter().position(
            |t| matches!(t.kind(), TenantKind::LatencyCritical { lc_index: li } if li == lc_index),
        );
        if let Some(pos) = dest_local {
            let entry = &mut self.tenants[id.0];
            entry.node = dest;
            entry.local = TenantId::from_index(pos);
        }
        self.evacuations += 1;
        self.pending.push(ClusterEvent::Evacuated {
            tenant: id,
            name,
            from: source,
            to: dest,
            quantum: self.quantum,
        });
    }

    /// Retries every displaced tenant whose backoff has elapsed, in
    /// displacement order. A failure re-parks the tenant with the next
    /// (bounded) backoff and announces it — the queue shrinks only by
    /// successful placement, never by dropping.
    fn retry_displaced(&mut self) {
        let parked = std::mem::take(&mut self.displaced);
        for d in parked {
            if d.retry_at > self.quantum {
                self.displaced.push(d);
                continue;
            }
            if self.place_evacuee(d.tenant) {
                continue;
            }
            let attempts = d.attempts + 1;
            let retry_at = self.quantum + retry_backoff(&self.config.health, attempts);
            self.pending.push(ClusterEvent::Displaced {
                tenant: d.tenant,
                name: self.tenants[d.tenant.0].name.clone(),
                from: d.from,
                attempts,
                retry_at,
                quantum: self.quantum,
            });
            self.displaced.push(DisplacedTenant {
                attempts,
                retry_at,
                ..d
            });
        }
    }

    /// Drains the stale local rows a rejoining node accumulated while it
    /// was unobservable: tenants evacuated elsewhere in the meantime must
    /// not run twice. The row may have already retired; refusals are
    /// fine.
    fn reconcile_rejoin(&mut self, node_index: usize) {
        for local in std::mem::take(&mut self.stale_locals[node_index]) {
            let _ = self.nodes[node_index].core_mut().deregister(local);
        }
    }

    /// While degraded, frees capacity each quantum: sheds the most
    /// recently placed live batch tenant on a serving node; once no batch
    /// remains, shrinks every serving node's LC traffic shares toward the
    /// safe-mode floor.
    fn shed_for_capacity(&mut self) {
        let victims: Vec<ClusterTenantId> = self
            .tenants
            .iter()
            .enumerate()
            .rev()
            .map(|(idx, e)| (ClusterTenantId(idx), e))
            .filter(|(id, e)| {
                e.app.is_some()
                    && self.health[e.node.index()].state().is_serving()
                    && !self.in_flight.iter().any(|m| m.tenant == *id)
                    && !self.displaced.iter().any(|d| d.tenant == *id)
                    && self.nodes[e.node.index()]
                        .core()
                        .tenant(e.local)
                        .is_some_and(|t| t.state().is_live())
            })
            .map(|(id, _)| id)
            .collect();
        for id in victims {
            if self.deregister(id).is_ok() {
                return;
            }
        }
        // No batch left to shed: shrink LC shares toward the floor.
        let cfg = self.config.health;
        for i in 0..self.nodes.len() {
            if !self.health[i].state().is_serving() {
                continue;
            }
            let shares = self.nodes[i].core().lc_traffic_shares().to_vec();
            for (lc_index, share) in shares.into_iter().enumerate() {
                let target = (share - cfg.share_shrink).max(cfg.min_degraded_share);
                if target < share {
                    let _ = self.nodes[i]
                        .core_mut()
                        .set_lc_traffic_share(lc_index, target);
                }
            }
        }
    }

    /// Phase 1: admit every migration whose cost has elapsed. A refusal
    /// (the destination is down, or its admission control rejected the
    /// tenant) no longer loses the tenant: the move is re-aimed at the
    /// next-best serving node with bounded exponential backoff, and only
    /// after [`MigrationConfig::max_retries`] refusals does the tenant
    /// retire drained — announced by
    /// [`ClusterEvent::MigrationAbandoned`], never silently.
    fn complete_due_migrations(&mut self) {
        let due: Vec<InFlight> = self
            .in_flight
            .iter()
            .filter(|m| m.admit_at <= self.quantum)
            .copied()
            .collect();
        self.in_flight.retain(|m| m.admit_at > self.quantum);
        for m in due {
            let entry = &self.tenants[m.tenant.0];
            let name = entry.name.clone();
            // In-flight tenants are batch by construction (migrate()
            // refuses LC tenants), so the app is always present.
            let Some(app) = entry.app else { continue };
            // A non-serving destination counts as a refusal without
            // bothering its admission control.
            let admitted = if self.health[m.dest.index()].state().is_serving() {
                self.nodes[m.dest.index()]
                    .core_mut()
                    .register_batch(&name, app)
                    .ok()
            } else {
                None
            };
            match admitted {
                Some(local) => {
                    let entry = &mut self.tenants[m.tenant.0];
                    entry.node = m.dest;
                    entry.local = local;
                    self.pending.push(ClusterEvent::MigrationCompleted {
                        tenant: m.tenant,
                        name,
                        from: m.from,
                        to: m.dest,
                        quantum: self.quantum,
                    });
                }
                None => {
                    self.pending.push(ClusterEvent::MigrationFailed {
                        tenant: m.tenant,
                        name: name.clone(),
                        to: m.dest,
                        quantum: self.quantum,
                    });
                    let attempts = m.attempts + 1;
                    if attempts > self.config.migration.max_retries {
                        // The tenant already drained from its source; it
                        // retires there, and the destination records the
                        // rejection as its own AdmissionRejected event.
                        self.pending.push(ClusterEvent::MigrationAbandoned {
                            tenant: m.tenant,
                            name,
                            to: m.dest,
                            attempts,
                            quantum: self.quantum,
                        });
                        continue;
                    }
                    // Next-best destination, excluding the refuser; fall
                    // back to the same destination when nothing else is
                    // feasible (it may free capacity by the retry).
                    let scores = self.scores_for(app, Some(m.dest));
                    let next = pick_best(&scores, &self.config.placement).unwrap_or(m.dest);
                    let cost = self.config.migration.cost_quanta.max(1);
                    let wait = cost
                        .saturating_mul(1usize << attempts.min(16))
                        .min(self.config.migration.retry_cap_quanta.max(cost));
                    let admit_at = self.quantum + wait;
                    self.in_flight.push(InFlight {
                        tenant: m.tenant,
                        from: m.from,
                        dest: next,
                        admit_at,
                        attempts,
                    });
                    self.pending.push(ClusterEvent::MigrationRetried {
                        tenant: m.tenant,
                        name,
                        to: next,
                        admit_at,
                        attempt: attempts,
                        quantum: self.quantum,
                    });
                }
            }
        }
    }

    /// Phases 3–5: drain node events, balance traffic, auto-migrate.
    fn settle_cross_node(&mut self) {
        for i in 0..self.nodes.len() {
            let events: Vec<ControlEvent> = self.nodes[i].core_mut().drain_events();
            self.pending
                .extend(events.into_iter().map(ClusterEvent::Node));
        }

        if let Some(balance) = self.config.balance {
            // The loop runs to the *widest* node's LC count; nodes that
            // don't host a service (or are down) drop out of that
            // service's replica set instead of truncating the fleet.
            let num_lc = self
                .nodes
                .iter()
                .map(|n| n.core().scenario().num_lc())
                .max()
                .unwrap_or(0);
            for lc_index in 0..num_lc {
                let replicas: Vec<(NodeId, f64, f64)> = self
                    .nodes
                    .iter()
                    .filter(|n| self.health[n.id().index()].state().is_serving())
                    .filter(|n| n.core().scenario().num_lc() > lc_index)
                    .map(|n| {
                        (
                            n.id(),
                            n.lc_tail_ratio(lc_index).unwrap_or(0.0),
                            n.core().lc_traffic_shares()[lc_index],
                        )
                    })
                    .collect();
                if let Some(shift) = decide_shift(&balance, lc_index, &replicas) {
                    let share_of = |node: NodeId| {
                        replicas
                            .iter()
                            .find(|r| r.0 == node)
                            .map(|r| r.2)
                            .unwrap_or(0.0)
                    };
                    let from_share = share_of(shift.from) - shift.amount;
                    let to_share = share_of(shift.to) + shift.amount;
                    // Ids came from the replica table we just built, so
                    // the driver cannot refuse them.
                    let _ = self.nodes[shift.from.index()]
                        .core_mut()
                        .set_lc_traffic_share(lc_index, from_share);
                    let _ = self.nodes[shift.to.index()]
                        .core_mut()
                        .set_lc_traffic_share(lc_index, to_share);
                    self.pending.push(ClusterEvent::SharesShifted {
                        lc_index,
                        from: shift.from,
                        to: shift.to,
                        amount: shift.amount,
                        quantum: self.quantum,
                    });
                }
            }
        }

        if let Some(threshold) = self.config.migration.auto_tail_ratio {
            for i in 0..self.nodes.len() {
                if !self.health[i].state().is_serving() {
                    continue;
                }
                if self.nodes[i].last_tail_ratio() <= threshold {
                    continue;
                }
                let source = NodeId::from_index(i);
                // The most recently placed live batch tenant on the
                // breaching node, skipping tenants already in flight or
                // parked displaced.
                let candidate = self
                    .tenants
                    .iter()
                    .enumerate()
                    .rev()
                    .map(|(idx, e)| (ClusterTenantId(idx), e))
                    .find(|(id, e)| {
                        e.node == source
                            && e.app.is_some()
                            && !self.in_flight.iter().any(|m| m.tenant == *id)
                            && !self.displaced.iter().any(|d| d.tenant == *id)
                            && self.nodes[i]
                                .core()
                                .tenant(e.local)
                                .is_some_and(|t| t.state().is_live())
                    });
                let Some((id, entry)) = candidate else {
                    continue;
                };
                let Some(app) = entry.app else { continue };
                let scores = self.scores_for(app, Some(source));
                if let Some(dest) = pick_best(&scores, &self.config.placement) {
                    // All preconditions were just checked; a refusal here
                    // would be a coordinator logic bug.
                    let moved = self.migrate(id, dest);
                    debug_assert!(moved.is_ok(), "auto-migration refused: {moved:?}");
                }
            }
        }
    }

    /// Steps one lockstep quantum across the fleet, serially in ascending
    /// node-id order.
    ///
    /// # Errors
    ///
    /// Returns the first stepping node's [`ControlError`] in node-id
    /// order (a control-plane logic bug, surfaced hard).
    pub fn step_quantum(&mut self) -> Result<(), ClusterError> {
        self.step_quantum_ordered(StepOrder::Forward)
    }

    /// Steps one lockstep quantum, walking nodes in the given serial
    /// order. Nodes share nothing within a quantum, so the resulting
    /// state is bit-identical for every order — the determinism tests
    /// step the same cluster both ways and compare records.
    ///
    /// # Errors
    ///
    /// As [`step_quantum`](Self::step_quantum).
    pub fn step_quantum_ordered(&mut self, order: StepOrder) -> Result<(), ClusterError> {
        self.health_phase();
        self.complete_due_migrations();
        let mut first_err: Vec<Option<ControlError>> = Vec::new();
        first_err.resize_with(self.nodes.len(), || None);
        let indices: Vec<usize> = match order {
            StepOrder::Forward => (0..self.nodes.len()).collect(),
            StepOrder::Reverse => (0..self.nodes.len()).rev().collect(),
        };
        for i in indices {
            if !self.fate[i].steppable() {
                continue;
            }
            if let Err(e) = self.nodes[i].step() {
                first_err[i] = Some(e);
            }
        }
        self.finish_quantum(first_err)
    }

    /// Steps one lockstep quantum with per-node work spread over a
    /// borrowed [`WorkerPool`]. Nodes share nothing within a quantum, so
    /// any pool width yields state bit-identical to the serial stepper.
    ///
    /// # Errors
    ///
    /// As [`step_quantum`](Self::step_quantum).
    pub fn step_quantum_pooled(&mut self, pool: &WorkerPool) -> Result<(), ClusterError> {
        self.health_phase();
        self.complete_due_migrations();
        let mut results: Vec<Option<ControlError>> = Vec::new();
        results.resize_with(self.nodes.len(), || None);
        let fate = &self.fate;
        pool.scope(|scope| {
            for (i, (node, slot)) in self.nodes.iter_mut().zip(results.iter_mut()).enumerate() {
                if !fate[i].steppable() {
                    continue;
                }
                scope.spawn(move || {
                    if let Err(e) = node.step() {
                        *slot = Some(e);
                    }
                });
            }
        });
        self.finish_quantum(results)
    }

    /// Phase-2 epilogue shared by every stepper: surface the first error
    /// in node-id order, then run the serial cross-node phases.
    fn finish_quantum(
        &mut self,
        mut errors: Vec<Option<ControlError>>,
    ) -> Result<(), ClusterError> {
        if let Some(e) = errors.iter_mut().find_map(Option::take) {
            return Err(ClusterError::Control(e));
        }
        self.settle_cross_node();
        self.quantum += 1;
        Ok(())
    }

    /// Whether every still-steppable node's declared horizon has been
    /// simulated (crashed and drained nodes never finish theirs).
    pub fn is_done(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| !self.fate[i].steppable() || n.core().is_done())
    }

    /// Takes every cluster event queued since the previous drain.
    pub fn drain_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.pending)
    }

    /// A point-in-time view of the whole cluster.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            quantum: self.quantum,
            nodes: self.nodes.iter().map(|n| n.core().snapshot()).collect(),
            lc_shares: self
                .nodes
                .iter()
                .map(|n| n.core().lc_traffic_shares().to_vec())
                .collect(),
            tenants: self
                .tenants
                .iter()
                .enumerate()
                .map(|(i, e)| ClusterTenantSnapshot {
                    name: e.name.clone(),
                    kind: if e.app.is_some() {
                        "batch"
                    } else {
                        "latency_critical"
                    },
                    node: self.tenant_node(ClusterTenantId(i)).unwrap_or(e.node),
                    state: self
                        .tenant_state(ClusterTenantId(i))
                        .unwrap_or(LifecycleState::Retired),
                })
                .collect(),
            in_flight: self.in_flight.len(),
            node_health: self.health.iter().map(|h| h.state().name()).collect(),
            displaced: self.displaced.len(),
            evacuations: self.evacuations,
            degraded: self.degraded.active(),
        }
    }

    /// Drains every node to retirement: in-flight migrations are
    /// abandoned (the tenant is already drained from its source), then
    /// each node's control plane shuts down in node-id order.
    ///
    /// # Errors
    ///
    /// Propagates the first node's [`ControlError`] — impossible by the
    /// transition table, so any error here is a logic bug.
    pub fn shutdown(&mut self) -> Result<(), ClusterError> {
        self.in_flight.clear();
        self.displaced.clear();
        for i in 0..self.nodes.len() {
            // A crashed node is gone — nothing drains cleanly off it —
            // and a drained node's control plane already shut down; both
            // still surface any events queued before the lights went out.
            if self.fate[i].steppable() {
                self.nodes[i].core_mut().shutdown()?;
            }
            // The drain emits lifecycle events (Draining, Retired) on the
            // node core; surface them like any other quantum's phase 3.
            let events: Vec<ControlEvent> = self.nodes[i].core_mut().drain_events();
            self.pending
                .extend(events.into_iter().map(ClusterEvent::Node));
        }
        Ok(())
    }

    /// Consumes the coordinator into the completed cluster record.
    pub fn into_record(self) -> ClusterRecord {
        ClusterRecord {
            quanta: self.quantum,
            nodes: self
                .nodes
                .into_iter()
                .map(|n| {
                    let core = n.into_core();
                    core.into_record()
                })
                .collect(),
        }
    }
}
