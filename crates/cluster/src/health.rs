//! Per-node health tracking and the fleet degraded-mode hysteresis.
//!
//! The coordinator cannot see inside a failed node — it sees only whether
//! the node answered this quantum's lockstep step (its "heartbeat"). This
//! module turns that one observable into a per-node state machine:
//!
//! ```text
//!        miss            missed >= down_after
//!  Up ─────────→ Suspect ────────────────────→ Down
//!   ↑ beat          │ beat                      │ beat
//!   │←──────────────┘                           ▼
//!   │         clean >= recover_after        Recovering
//!   └───────────────────────────────────────────┘
//!                                     (a miss while Recovering relapses
//!                                      straight back to Down)
//! ```
//!
//! Every timeout is **quantum-counted** — `down_after` missed heartbeats,
//! `recover_after` clean quanta — never wall-clock. The coordinator steps
//! the fleet in simulated lockstep time; a wall clock here would make the
//! detector's verdicts depend on host scheduling and break bit-replay
//! (the invariant linter keeps this file on the decision path).
//!
//! The same config carries the displaced-queue backoff arithmetic
//! ([`retry_backoff`]: `min(retry_base · 2^attempts, retry_cap)` quanta)
//! and the fleet [`DegradedMode`] hysteresis (enter after `degrade_after`
//! consecutive infeasible quanta, exit after `restore_after` consecutive
//! feasible ones — the fleet-level analogue of PR 3's circuit breaker).

/// One node's health as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Heartbeating normally.
    Up,
    /// Missed `missed` consecutive heartbeats; not yet declared down.
    Suspect {
        /// Consecutive missed heartbeats so far.
        missed: usize,
    },
    /// Declared down; its tenants are evacuated.
    Down,
    /// Heartbeats resumed after Down; `clean` consecutive clean quanta so
    /// far, on the way back to Up.
    Recovering {
        /// Consecutive clean quanta since heartbeats resumed.
        clean: usize,
    },
}

impl NodeHealth {
    /// The state's stable lower-case name (used in metrics and events).
    pub fn name(self) -> &'static str {
        match self {
            NodeHealth::Up => "up",
            NodeHealth::Suspect { .. } => "suspect",
            NodeHealth::Down => "down",
            NodeHealth::Recovering { .. } => "recovering",
        }
    }

    /// Whether the node can host tenants and receive traffic: everything
    /// but Down. A Suspect or Recovering node is still serving — the
    /// coordinator only evacuates on Down.
    pub fn is_serving(self) -> bool {
        self != NodeHealth::Down
    }

    /// Whether the node is declared down.
    pub fn is_down(self) -> bool {
        self == NodeHealth::Down
    }
}

/// Quantum-counted health thresholds, displaced-retry backoff, and the
/// fleet degraded-mode hysteresis knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Consecutive missed heartbeats before a node is declared Down (and
    /// its tenants evacuated).
    pub down_after: usize,
    /// Consecutive clean quanta a Recovering node needs to return to Up.
    pub recover_after: usize,
    /// Displaced-queue backoff base, in quanta (first retry waits this).
    pub retry_base: usize,
    /// Displaced-queue backoff ceiling, in quanta.
    pub retry_cap: usize,
    /// Consecutive infeasible quanta (displaced tenants unplaceable)
    /// before the fleet enters degraded mode.
    pub degrade_after: usize,
    /// Consecutive feasible quanta before the fleet exits degraded mode.
    pub restore_after: usize,
    /// While degraded and out of batch to shed, LC traffic shares shrink
    /// toward this floor (the fleet's safe-mode allocation) ...
    pub min_degraded_share: f64,
    /// ... by this much per quantum.
    pub share_shrink: f64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            down_after: 3,
            recover_after: 2,
            retry_base: 1,
            retry_cap: 8,
            degrade_after: 2,
            restore_after: 2,
            min_degraded_share: 0.5,
            share_shrink: 0.1,
        }
    }
}

/// Bounded exponential backoff for the displaced queue, in quanta:
/// `min(retry_base · 2^attempts, retry_cap)`, never less than one. Pure
/// arithmetic over quantum counts — deterministic and replayable.
pub fn retry_backoff(config: &HealthConfig, attempts: u32) -> usize {
    let base = config.retry_base.max(1);
    base.saturating_mul(1usize << attempts.min(16))
        .min(config.retry_cap.max(1))
}

/// One node's health detector: feed it the heartbeat verdict each
/// quantum, get back the transition (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTracker {
    state: NodeHealth,
}

impl HealthTracker {
    /// A fresh tracker: the node starts Up.
    pub fn new() -> HealthTracker {
        HealthTracker {
            state: NodeHealth::Up,
        }
    }

    /// The current health state.
    pub fn state(&self) -> NodeHealth {
        self.state
    }

    /// Observes one quantum's heartbeat verdict. Returns `Some((from,
    /// to))` when the state changed (missed-count and clean-count updates
    /// within Suspect/Recovering count as changes too — the coordinator
    /// reports only the Down/serving edges it cares about).
    pub fn observe(
        &mut self,
        heartbeat: bool,
        config: &HealthConfig,
    ) -> Option<(NodeHealth, NodeHealth)> {
        let from = self.state;
        let down_after = config.down_after.max(1);
        let recover_after = config.recover_after.max(1);
        let missed_step = |missed: usize| {
            if missed >= down_after {
                NodeHealth::Down
            } else {
                NodeHealth::Suspect { missed }
            }
        };
        let clean_step = |clean: usize| {
            if clean >= recover_after {
                NodeHealth::Up
            } else {
                NodeHealth::Recovering { clean }
            }
        };
        self.state = match (from, heartbeat) {
            (NodeHealth::Up, true) => NodeHealth::Up,
            (NodeHealth::Up, false) => missed_step(1),
            (NodeHealth::Suspect { .. }, true) => NodeHealth::Up,
            (NodeHealth::Suspect { missed }, false) => missed_step(missed + 1),
            (NodeHealth::Down, true) => clean_step(1),
            (NodeHealth::Down, false) => NodeHealth::Down,
            (NodeHealth::Recovering { clean }, true) => clean_step(clean + 1),
            (NodeHealth::Recovering { .. }, false) => NodeHealth::Down,
        };
        (self.state != from).then_some((from, self.state))
    }

    /// Forces the node Down (the maintenance-drain path: the coordinator
    /// takes a healthy node out deliberately). Returns the transition, or
    /// `None` if already Down.
    pub fn force_down(&mut self) -> Option<(NodeHealth, NodeHealth)> {
        let from = self.state;
        self.state = NodeHealth::Down;
        (from != NodeHealth::Down).then_some((from, NodeHealth::Down))
    }
}

impl Default for HealthTracker {
    fn default() -> HealthTracker {
        HealthTracker::new()
    }
}

/// Fleet-level degraded mode with hysteretic entry and exit: the
/// coordinator reports each quantum whether lost capacity left displaced
/// tenants unplaceable, and the mode flips only after a configured streak
/// in either direction — one bad (or good) quantum never flaps the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradedMode {
    active: bool,
    infeasible_streak: usize,
    feasible_streak: usize,
}

impl DegradedMode {
    /// A fresh, inactive mode.
    pub fn new() -> DegradedMode {
        DegradedMode::default()
    }

    /// Whether the fleet is currently degraded.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Observes one quantum's feasibility verdict. Returns `Some(true)`
    /// on entry, `Some(false)` on exit, `None` otherwise.
    pub fn observe(&mut self, infeasible: bool, config: &HealthConfig) -> Option<bool> {
        if infeasible {
            self.infeasible_streak += 1;
            self.feasible_streak = 0;
            if !self.active && self.infeasible_streak >= config.degrade_after.max(1) {
                self.active = true;
                return Some(true);
            }
        } else {
            self.feasible_streak += 1;
            self.infeasible_streak = 0;
            if self.active && self.feasible_streak >= config.restore_after.max(1) {
                self.active = false;
                return Some(false);
            }
        }
        None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn the_detector_walks_up_suspect_down_recovering_up() {
        let config = HealthConfig::default();
        let mut t = HealthTracker::new();
        assert_eq!(t.observe(true, &config), None, "clean quantum, no change");
        assert_eq!(
            t.observe(false, &config),
            Some((NodeHealth::Up, NodeHealth::Suspect { missed: 1 }))
        );
        assert_eq!(
            t.observe(false, &config),
            Some((
                NodeHealth::Suspect { missed: 1 },
                NodeHealth::Suspect { missed: 2 }
            ))
        );
        // Third consecutive miss crosses down_after = 3.
        assert_eq!(
            t.observe(false, &config),
            Some((NodeHealth::Suspect { missed: 2 }, NodeHealth::Down))
        );
        assert_eq!(t.observe(false, &config), None, "down stays down");
        assert_eq!(
            t.observe(true, &config),
            Some((NodeHealth::Down, NodeHealth::Recovering { clean: 1 }))
        );
        // Second clean quantum crosses recover_after = 2.
        assert_eq!(
            t.observe(true, &config),
            Some((NodeHealth::Recovering { clean: 1 }, NodeHealth::Up))
        );
    }

    #[test]
    fn a_heartbeat_clears_suspicion_and_a_relapse_returns_to_down() {
        let config = HealthConfig::default();
        let mut t = HealthTracker::new();
        t.observe(false, &config);
        assert_eq!(
            t.observe(true, &config),
            Some((NodeHealth::Suspect { missed: 1 }, NodeHealth::Up))
        );
        // Down, one clean quantum, then a miss: straight back to Down.
        for _ in 0..3 {
            t.observe(false, &config);
        }
        assert_eq!(t.state(), NodeHealth::Down);
        t.observe(true, &config);
        assert_eq!(
            t.observe(false, &config),
            Some((NodeHealth::Recovering { clean: 1 }, NodeHealth::Down))
        );
    }

    #[test]
    fn down_after_one_means_immediate_detection() {
        let config = HealthConfig {
            down_after: 1,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new();
        assert_eq!(
            t.observe(false, &config),
            Some((NodeHealth::Up, NodeHealth::Down)),
            "a kill with warning: detected the quantum it happens"
        );
    }

    #[test]
    fn force_down_reports_once() {
        let mut t = HealthTracker::new();
        assert_eq!(t.force_down(), Some((NodeHealth::Up, NodeHealth::Down)));
        assert_eq!(t.force_down(), None);
    }

    #[test]
    fn retry_backoff_doubles_and_saturates_at_the_cap() {
        let config = HealthConfig::default(); // base 1, cap 8
        let waits: Vec<usize> = (0..6).map(|a| retry_backoff(&config, a)).collect();
        assert_eq!(waits, vec![1, 2, 4, 8, 8, 8]);
        // Huge attempt counts cannot overflow.
        assert_eq!(retry_backoff(&config, u32::MAX), 8);
        let zeroed = HealthConfig {
            retry_base: 0,
            retry_cap: 0,
            ..config
        };
        assert_eq!(retry_backoff(&zeroed, 0), 1, "never less than one quantum");
    }

    #[test]
    fn degraded_mode_is_hysteretic_in_both_directions() {
        let config = HealthConfig::default(); // degrade_after 2, restore_after 2
        let mut mode = DegradedMode::new();
        assert_eq!(
            mode.observe(true, &config),
            None,
            "one bad quantum is noise"
        );
        assert_eq!(mode.observe(false, &config), None, "streak broken");
        assert_eq!(mode.observe(true, &config), None);
        assert_eq!(
            mode.observe(true, &config),
            Some(true),
            "second in a row enters"
        );
        assert!(mode.active());
        assert_eq!(mode.observe(true, &config), None, "already degraded");
        assert_eq!(
            mode.observe(false, &config),
            None,
            "one good quantum is noise"
        );
        assert_eq!(mode.observe(true, &config), None, "streak broken");
        assert_eq!(mode.observe(false, &config), None);
        assert_eq!(
            mode.observe(false, &config),
            Some(false),
            "second in a row exits"
        );
        assert!(!mode.active());
    }
}
