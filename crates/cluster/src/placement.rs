//! Placement: which node a registering tenant lands on.
//!
//! The coordinator previews every node's admission arithmetic (the same
//! worst-case-power-versus-steady-state-budget check the node itself will
//! enforce) and scores the feasible nodes:
//!
//! ```text
//! score = headroom_watts
//!       + affinity_weight  × (live tenants running the same app)
//!       − contention_weight × (live tenants, total)
//! ```
//!
//! Headroom is the bin-packing term (most spare budget wins), affinity
//! rewards co-locating replicas of the same application (their matrix
//! rows and phase behavior are already characterized on that node), and
//! contention penalizes piling onto an already-crowded chip — the
//! compiler-guided-throughput-scheduling signal reduced to tenant count.
//! Ties break toward the lowest [`NodeId`], which keeps placement a pure
//! function of cluster state.

use cuttlesys::lifecycle::NodeId;

/// Weights for the placement score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Watts-equivalent bonus per live same-app tenant on the node.
    pub affinity_weight: f64,
    /// Watts-equivalent penalty per live tenant on the node.
    pub contention_weight: f64,
}

impl Default for PlacementConfig {
    fn default() -> PlacementConfig {
        PlacementConfig {
            affinity_weight: 0.5,
            contention_weight: 0.25,
        }
    }
}

/// One node's scored placement candidacy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementScore {
    /// The node being scored.
    pub node: NodeId,
    /// Steady-state budget minus committed-plus-candidate worst case (W).
    /// Negative headroom means the node cannot admit the candidate.
    pub headroom_watts: f64,
    /// Live tenants on the node running the same application.
    pub same_app_tenants: usize,
    /// Live tenants on the node, total.
    pub live_tenants: usize,
}

impl PlacementScore {
    /// The combined score under `config` (higher is better).
    pub fn total(&self, config: &PlacementConfig) -> f64 {
        self.headroom_watts + config.affinity_weight * self.same_app_tenants as f64
            - config.contention_weight * self.live_tenants as f64
    }

    /// Whether the node can admit the candidate at all.
    pub fn feasible(&self) -> bool {
        self.headroom_watts >= 0.0
    }
}

/// Why placement could not choose a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementError {
    /// No node has the worst-case headroom to admit the candidate. The
    /// fields report the least-bad node's arithmetic.
    NoCapacity {
        /// The closest-to-feasible node.
        closest: NodeId,
        /// Committed + candidate worst-case power on that node (W).
        required_watts: f64,
        /// The steady-state budget it had to fit (W).
        budget_watts: f64,
    },
    /// The destination node id is not in the cluster.
    UnknownNode(NodeId),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCapacity {
                closest,
                required_watts,
                budget_watts,
            } => write!(
                f,
                "no node can place the tenant: closest is {closest} needing \
                 {required_watts:.1} W against {budget_watts:.1} W"
            ),
            PlacementError::UnknownNode(node) => write!(f, "unknown node {node}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Picks the best feasible node: highest [`PlacementScore::total`], ties
/// toward the lowest node id. `None` when no node is feasible.
pub fn pick_best(scores: &[PlacementScore], config: &PlacementConfig) -> Option<NodeId> {
    let mut best: Option<(NodeId, f64)> = None;
    for s in scores.iter().filter(|s| s.feasible()) {
        let total = s.total(config);
        let better = match best {
            None => true,
            // Strict inequality: on a tie the earlier (lower-id) node wins,
            // because scores arrive in node-id order.
            Some((_, b)) => total > b,
        };
        if better {
            best = Some((s.node, total));
        }
    }
    best.map(|(node, _)| node)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn score(i: usize, headroom: f64, same: usize, live: usize) -> PlacementScore {
        PlacementScore {
            node: NodeId::from_index(i),
            headroom_watts: headroom,
            same_app_tenants: same,
            live_tenants: live,
        }
    }

    #[test]
    fn headroom_dominates_and_ties_break_low() {
        let cfg = PlacementConfig::default();
        let scores = [
            score(0, 4.0, 0, 0),
            score(1, 9.0, 0, 0),
            score(2, 9.0, 0, 0),
        ];
        assert_eq!(pick_best(&scores, &cfg), Some(NodeId::from_index(1)));
        let tied = [score(0, 9.0, 0, 0), score(1, 9.0, 0, 0)];
        assert_eq!(pick_best(&tied, &cfg), Some(NodeId::from_index(0)));
    }

    #[test]
    fn affinity_attracts_and_contention_repels() {
        let cfg = PlacementConfig::default();
        // Equal headroom: the node already running two replicas wins.
        let scores = [score(0, 5.0, 0, 0), score(1, 5.0, 2, 2)];
        assert_eq!(pick_best(&scores, &cfg), Some(NodeId::from_index(1)));
        // Same-app count equal: the emptier node wins.
        let scores = [score(0, 5.0, 0, 8), score(1, 5.0, 0, 1)];
        assert_eq!(pick_best(&scores, &cfg), Some(NodeId::from_index(1)));
    }

    #[test]
    fn infeasible_nodes_never_win() {
        let cfg = PlacementConfig::default();
        let scores = [score(0, -0.1, 9, 0), score(1, 0.0, 0, 9)];
        assert_eq!(pick_best(&scores, &cfg), Some(NodeId::from_index(1)));
        assert_eq!(pick_best(&[score(0, -1.0, 0, 0)], &cfg), None);
    }

    #[test]
    fn errors_render_their_arithmetic() {
        let e = PlacementError::NoCapacity {
            closest: NodeId::from_index(2),
            required_watts: 12.5,
            budget_watts: 10.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("n2") && msg.contains("12.5") && msg.contains("10.0"));
        assert!(PlacementError::UnknownNode(NodeId::from_index(7))
            .to_string()
            .contains("n7"));
    }
}
