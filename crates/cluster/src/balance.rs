//! Cross-node load balancing: shifting LC traffic between replicas.
//!
//! LC tenants are pinned to their nodes (their matrix rows, phase state,
//! and queue histories live there), so the cluster rebalances them by
//! moving *traffic*, not tenants: every node's [`ScenarioDriver`] carries
//! a per-service share multiplier (1.0 by default), and after each
//! lockstep quantum the coordinator moves a fraction of share from the
//! replica with the worst tail-latency-to-QoS ratio to the one with the
//! best, whenever the worst breaches the threshold. The sum of shares is
//! conserved, so the fleet-wide offered load is unchanged — only its
//! distribution moves.
//!
//! [`ScenarioDriver`]: cuttlesys::driver::ScenarioDriver

use cuttlesys::lifecycle::NodeId;

/// Balance policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceConfig {
    /// A replica whose tail ratio (`tail_ms / qos_ms`) exceeds this after
    /// a quantum sheds traffic. 1.0 means "balance on QoS violation".
    pub tail_ratio_threshold: f64,
    /// Share moved per breach, in absolute share units.
    pub shift: f64,
    /// No replica's share drops below this (a drained replica could never
    /// recover: with no traffic its tail looks perfect forever).
    pub min_share: f64,
}

impl Default for BalanceConfig {
    fn default() -> BalanceConfig {
        BalanceConfig {
            tail_ratio_threshold: 1.0,
            shift: 0.1,
            min_share: 0.25,
        }
    }
}

/// One share movement the policy decided: `amount` of service
/// `lc_index`'s share moves `from → to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareShift {
    /// The LC service (its index on every node of a uniform fleet).
    pub lc_index: usize,
    /// The replica shedding traffic.
    pub from: NodeId,
    /// The replica absorbing it.
    pub to: NodeId,
    /// Share units moved.
    pub amount: f64,
}

/// Decides the share shift for one LC service given each *hosting*
/// replica's `(node, tail_ratio, current_share)` in node-id order. Nodes
/// that don't host the service (or are down) simply don't appear — the
/// fleet is no longer truncated to its narrowest node. Returns `None`
/// when fewer than two replicas exist, no replica breaches, or the
/// breacher is already at the share floor. Ties break toward the lowest
/// node id on both ends (callers pass replicas in node-id order; the
/// first extremum wins).
pub fn decide_shift(
    config: &BalanceConfig,
    lc_index: usize,
    replicas: &[(NodeId, f64, f64)],
) -> Option<ShareShift> {
    if replicas.len() < 2 {
        return None;
    }
    let (mut worst, mut best) = (0usize, 0usize);
    for (i, (_, ratio, _)) in replicas.iter().enumerate() {
        // Strict comparisons: the first (lowest-id) extremum wins ties.
        if *ratio > replicas[worst].1 {
            worst = i;
        }
        if *ratio < replicas[best].1 {
            best = i;
        }
    }
    let (_, worst_ratio, worst_share) = replicas[worst];
    if worst_ratio <= config.tail_ratio_threshold || worst == best {
        return None;
    }
    let amount = config.shift.min(worst_share - config.min_share);
    if amount <= 0.0 {
        return None;
    }
    Some(ShareShift {
        lc_index,
        from: replicas[worst].0,
        to: replicas[best].0,
        amount,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn a_breaching_replica_sheds_to_the_best() {
        let cfg = BalanceConfig::default();
        let replicas = [(n(0), 0.4, 1.0), (n(1), 1.3, 1.0), (n(2), 0.9, 1.0)];
        let shift = decide_shift(&cfg, 0, &replicas).unwrap();
        assert_eq!(shift.from, n(1));
        assert_eq!(shift.to, n(0));
        assert!((shift.amount - cfg.shift).abs() < 1e-12);
    }

    #[test]
    fn no_breach_or_single_node_means_no_shift() {
        let cfg = BalanceConfig::default();
        assert_eq!(
            decide_shift(&cfg, 0, &[(n(0), 0.9, 1.0), (n(1), 0.8, 1.0)]),
            None
        );
        assert_eq!(decide_shift(&cfg, 0, &[(n(0), 5.0, 1.0)]), None, "one node");
        assert_eq!(decide_shift(&cfg, 0, &[]), None);
    }

    #[test]
    fn the_share_floor_caps_the_shift() {
        let cfg = BalanceConfig::default();
        // Breacher is 0.05 above the floor: only that much can move.
        let shift = decide_shift(&cfg, 2, &[(n(0), 1.5, 0.30), (n(1), 0.2, 1.7)]).unwrap();
        assert!((shift.amount - 0.05).abs() < 1e-12);
        assert_eq!(shift.lc_index, 2);
        // At the floor: nothing moves.
        assert_eq!(
            decide_shift(&cfg, 0, &[(n(0), 1.5, 0.25), (n(1), 0.2, 1.75)]),
            None
        );
    }

    #[test]
    fn ties_break_toward_the_lowest_node_id() {
        let cfg = BalanceConfig::default();
        let replicas = [
            (n(0), 0.3, 1.0),
            (n(1), 0.3, 1.0),
            (n(2), 1.2, 1.0),
            (n(3), 1.2, 1.0),
        ];
        let shift = decide_shift(&cfg, 0, &replicas).unwrap();
        assert_eq!(shift.from, n(2), "first worst wins");
        assert_eq!(shift.to, n(0), "first best wins");
    }

    #[test]
    fn a_sparse_fleet_balances_among_its_hosting_nodes_only() {
        // Nodes 0 and 3 host this LC; 1 and 2 do not and are simply absent
        // — the decision still pairs the real node ids.
        let cfg = BalanceConfig::default();
        let shift = decide_shift(&cfg, 1, &[(n(0), 1.4, 1.0), (n(3), 0.5, 1.0)]).unwrap();
        assert_eq!(shift.from, n(0));
        assert_eq!(shift.to, n(3));
    }
}
