//! Hand-rolled JSON emission, shared workspace-wide.
//!
//! The workspace's vendored `serde` is a no-op stub — the offline container
//! cannot add a real serialization dependency — so everything that emits
//! JSON builds a [`JsonValue`] tree by hand and prints it. The type started
//! life in `bench::report` for experiment output; it moved here (the bench
//! crate re-exports it) once the core crate needed the same conventions to
//! serve run snapshots through the control-plane service.
//!
//! Conventions, kept deliberately small:
//!
//! * objects preserve insertion order, so documents are byte-stable across
//!   runs — tests can compare serialized snapshots directly;
//! * non-finite numbers serialize as `null` (JSON has no NaN), matching
//!   what the power-blackout fault injection produces;
//! * strings are escaped on output, including control characters.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A JSON document, built by hand (the vendored `serde` is a no-op stub).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Builds an array from anything iterable over convertible items:
    /// `JsonValue::array([1.0, 2.0])`, `JsonValue::array(names)`.
    pub fn array<I>(items: I) -> JsonValue
    where
        I: IntoIterator,
        I::Item: Into<JsonValue>,
    {
        JsonValue::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Builds an insertion-ordered object from `(key, value)` pairs:
    /// `JsonValue::object([("n", 3.0.into())])`.
    pub fn object<K, I>(fields: I) -> JsonValue
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, JsonValue)>,
    {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object (`None` for missing keys and non-objects)
    /// — enough for tests to poke at nested documents without a parser.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array (`None` out of bounds and for non-arrays).
    pub fn at(&self, index: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(index),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Str(s) => write_json_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Num(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Writes a JSON document to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates any I/O failure from directory creation or the write.
pub fn emit_json(path: &Path, value: &JsonValue) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{value}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structure() {
        let v = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("fig\"5\"".into())),
            (
                "rows".into(),
                JsonValue::Arr(vec![
                    JsonValue::Num(1.5),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                    JsonValue::Num(f64::NAN),
                ]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"name\":\"fig\\\"5\\\"\",\"rows\":[1.5,true,null,null]}"
        );
    }

    #[test]
    fn builders_compose_nested_documents() {
        let v = JsonValue::object([
            ("nodes", JsonValue::array(["n0", "n1"])),
            ("shares", JsonValue::Arr(vec![JsonValue::array([0.5, 1.5])])),
            ("quantum", 7usize.into()),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"nodes\":[\"n0\",\"n1\"],\"shares\":[[0.5,1.5]],\"quantum\":7}"
        );
        assert_eq!(v.get("quantum"), Some(&JsonValue::Num(7.0)));
        assert_eq!(
            v.get("shares").and_then(|s| s.at(0)).and_then(|s| s.at(1)),
            Some(&JsonValue::Num(1.5))
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.at(0), None, "objects do not index");
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::Str("a\u{1}b\nc".into());
        assert_eq!(v.to_string(), "\"a\\u0001b\\nc\"");
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join("cuttlesys_util_json_test");
        let path = dir.join("nested").join("out.json");
        emit_json(&path, &JsonValue::Arr(vec![JsonValue::Num(3.0)])).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim(), "[3]");
        std::fs::remove_dir_all(&dir).ok();
    }
}
