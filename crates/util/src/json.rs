//! Hand-rolled JSON emission and parsing, shared workspace-wide.
//!
//! The workspace's vendored `serde` is a no-op stub — the offline container
//! cannot add a real serialization dependency — so everything that emits
//! JSON builds a [`JsonValue`] tree by hand and prints it. The type started
//! life in `bench::report` for experiment output; it moved here (the bench
//! crate re-exports it) once the core crate needed the same conventions to
//! serve run snapshots through the control-plane service. The scenario-file
//! sweep runner added the other direction: [`parse`] reads a document back
//! into a [`JsonValue`] tree, reporting line/column on malformed input.
//!
//! Conventions, kept deliberately small:
//!
//! * objects preserve insertion order, so documents are byte-stable across
//!   runs — tests can compare serialized snapshots directly;
//! * non-finite numbers serialize as `null` (JSON has no NaN), matching
//!   what the power-blackout fault injection produces;
//! * strings are escaped on output, including control characters.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A JSON document, built by hand (the vendored `serde` is a no-op stub).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Builds an array from anything iterable over convertible items:
    /// `JsonValue::array([1.0, 2.0])`, `JsonValue::array(names)`.
    pub fn array<I>(items: I) -> JsonValue
    where
        I: IntoIterator,
        I::Item: Into<JsonValue>,
    {
        JsonValue::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Builds an insertion-ordered object from `(key, value)` pairs:
    /// `JsonValue::object([("n", 3.0.into())])`.
    pub fn object<K, I>(fields: I) -> JsonValue
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, JsonValue)>,
    {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object (`None` for missing keys and non-objects)
    /// — enough for tests to poke at nested documents without a parser.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array (`None` out of bounds and for non-arrays).
    pub fn at(&self, index: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as a finite number (`None` for everything else).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) if v.is_finite() => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, rejecting fractions.
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64).then_some(v as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, for arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields in insertion order, for objects.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Str(s) => write_json_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Num(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Where and why [`parse`] rejected a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at line {}, col {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document into a [`JsonValue`] tree.
///
/// The grammar matches what [`JsonValue`] can emit: objects keep key
/// insertion order (duplicate keys are rejected), numbers become `f64`,
/// and `\uXXXX` escapes (including surrogate pairs) decode to chars.
/// Trailing non-whitespace after the document is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] carrying the 1-based line/column of the first
/// offending byte and a description of what was expected.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == want => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.err(format!(
                "expected '{}', found '{}'",
                want as char, b as char
            ))),
            None => Err(self.err(format!("expected '{}', found end of input", want as char))),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        for want in word.bytes() {
            match self.peek() {
                Some(b) if b == want => {
                    self.bump();
                }
                _ => return Err(self.err(format!("expected literal '{word}'"))),
            }
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            self.bump();
            v = (v << 4) | u16::from(d);
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate escape"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000
                                + ((u32::from(hi) - 0xD800) << 10)
                                + (u32::from(lo) - 0xDC00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(u32::from(hi))
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the multi-byte UTF-8 sequence starting at b.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8 in string")),
                    };
                    let mut buf = vec![b];
                    for _ in 1..len {
                        match self.bump() {
                            Some(cont @ 0x80..=0xBF) => buf.push(cont),
                            _ => return Err(self.err("invalid utf-8 in string")),
                        }
                    }
                    match std::str::from_utf8(&buf) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Num(v)),
            _ => Err(self.err(format!("invalid number \"{text}\""))),
        }
    }
}

/// Writes a JSON document to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates any I/O failure from directory creation or the write.
pub fn emit_json(path: &Path, value: &JsonValue) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{value}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structure() {
        let v = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("fig\"5\"".into())),
            (
                "rows".into(),
                JsonValue::Arr(vec![
                    JsonValue::Num(1.5),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                    JsonValue::Num(f64::NAN),
                ]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"name\":\"fig\\\"5\\\"\",\"rows\":[1.5,true,null,null]}"
        );
    }

    #[test]
    fn builders_compose_nested_documents() {
        let v = JsonValue::object([
            ("nodes", JsonValue::array(["n0", "n1"])),
            ("shares", JsonValue::Arr(vec![JsonValue::array([0.5, 1.5])])),
            ("quantum", 7usize.into()),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"nodes\":[\"n0\",\"n1\"],\"shares\":[[0.5,1.5]],\"quantum\":7}"
        );
        assert_eq!(v.get("quantum"), Some(&JsonValue::Num(7.0)));
        assert_eq!(
            v.get("shares").and_then(|s| s.at(0)).and_then(|s| s.at(1)),
            Some(&JsonValue::Num(1.5))
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.at(0), None, "objects do not index");
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::Str("a\u{1}b\nc".into());
        assert_eq!(v.to_string(), "\"a\\u0001b\\nc\"");
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let v = JsonValue::object([
            ("name", JsonValue::Str("fig\"5\"\n".into())),
            (
                "rows",
                JsonValue::Arr(vec![
                    JsonValue::Num(1.5),
                    JsonValue::Num(-3.25e-2),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                ]),
            ),
            ("empty_obj", JsonValue::Obj(vec![])),
            ("empty_arr", JsonValue::Arr(vec![])),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_decodes_escapes_and_unicode() {
        let v = parse(r#"["aAb", "🦑", "café", "日本"]"#).unwrap();
        assert_eq!(v.at(0).unwrap().as_str().unwrap(), "aAb");
        assert_eq!(v.at(1).unwrap().as_str().unwrap(), "🦑");
        assert_eq!(v.at(2).unwrap().as_str().unwrap(), "café");
        assert_eq!(v.at(3).unwrap().as_str().unwrap(), "日本");
    }

    #[test]
    fn parse_reports_line_and_column() {
        let err = parse("{\n  \"a\": 1,\n  \"b\" 2\n}").unwrap_err();
        assert_eq!((err.line, err.col), (3, 7));
        assert_eq!(
            err.to_string(),
            "json parse error at line 3, col 7: expected ':', found '2'"
        );
    }

    #[test]
    fn parse_rejects_duplicates_trailing_and_bad_numbers() {
        assert!(parse(r#"{"a":1,"a":2}"#)
            .unwrap_err()
            .to_string()
            .contains("duplicate object key \"a\""));
        assert!(parse("[1] extra")
            .unwrap_err()
            .to_string()
            .contains("trailing characters"));
        assert!(parse("[1.2.3]")
            .unwrap_err()
            .to_string()
            .contains("invalid number"));
        assert!(parse("")
            .unwrap_err()
            .to_string()
            .contains("unexpected end of input"));
        assert!(parse("[1,]")
            .unwrap_err()
            .message
            .contains("unexpected character"));
    }

    #[test]
    fn accessors_type_check() {
        let v = parse(r#"{"n": 3, "f": 1.5, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(
            v.get("f").unwrap().as_usize(),
            None,
            "fractions are not usize"
        );
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.entries().unwrap().len(), 5);
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join("cuttlesys_util_json_test");
        let path = dir.join("nested").join("out.json");
        emit_json(&path, &JsonValue::Arr(vec![JsonValue::Num(3.0)])).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim(), "[3]");
        std::fs::remove_dir_all(&dir).ok();
    }
}
