//! A persistent worker pool with scoped, borrowing tasks.
//!
//! `crossbeam::scope` (our vendored adapter over `std::thread::scope`) spawns
//! a fresh OS thread per closure. That is fine for one-shot experiments, but
//! the decision loop calls into HOGWILD SGD and parallel DDS every 100 ms
//! quantum, and thread creation + teardown is pure overhead there. This pool
//! keeps its threads alive across quanta and dispatches boxed jobs over a
//! mutex-and-condvar queue.
//!
//! The API mirrors the scoped-thread shape the callers already use:
//!
//! ```
//! let pool = util::WorkerPool::new(4);
//! let mut partials = vec![0u64; 4];
//! pool.scope(|scope| {
//!     for (t, slot) in partials.iter_mut().enumerate() {
//!         scope.spawn(move || *slot = t as u64 + 1);
//!     }
//! });
//! assert_eq!(partials.iter().sum::<u64>(), 10);
//! ```
//!
//! `scope` blocks until every job spawned inside it has finished, so jobs may
//! borrow from the caller's stack (the lifetime is erased internally and
//! restored by the barrier at scope exit — the same contract as
//! `std::thread::scope`). While waiting, the scoping thread *helps*: it pops
//! and runs queued jobs itself, which both speeds up the fan-out and makes
//! nested scopes (a reconstruction scope spawning per-matrix solves that each
//! open their own HOGWILD scope) deadlock-free even when the pool is smaller
//! than the logical fan-out.
//!
//! Panics inside a job are caught, held until every sibling job in the scope
//! has drained, and then resumed on the scoping thread — again matching
//! `std::thread::scope` semantics closely enough for our callers.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The shared dispatch queue: a mutex-guarded deque plus a condvar that
/// wakes idle workers when jobs arrive or shutdown is signalled.
struct Queue {
    state: Mutex<QueueState>,
    work_cv: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut state = self.state.lock().unwrap();
        state.jobs.push_back(job);
        drop(state);
        self.work_cv.notify_one();
    }

    /// Non-blocking pop, used by helping waiters.
    fn try_pop(&self) -> Option<Job> {
        self.state.lock().unwrap().jobs.pop_front()
    }

    /// Blocking pop for workers; returns `None` once shutdown is signalled
    /// and the queue has drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self.work_cv.wait(state).unwrap();
        }
    }

    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.work_cv.notify_all();
    }
}

/// Book-keeping for one `scope` call: how many of its jobs are still
/// outstanding, and the first panic any of them raised.
struct ScopeState {
    pending: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn job_started(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn job_finished(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            drop(pending);
            self.done_cv.notify_all();
        }
    }
}

/// A pool of long-lived worker threads. Dropping the pool shuts the workers
/// down and joins them.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue::new());
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("cuttlesys-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// A reasonable default pool width for this machine: the available
    /// parallelism clamped into `2..=8` (the paper's DDS uses 8 threads).
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8)
    }

    /// Fans `f` out over `items`, returning the results in input order.
    ///
    /// Each item's result lands in its own slot, so the output is
    /// independent of which worker ran which item and in what order —
    /// the property the sweep harness relies on for byte-stable reports
    /// at any pool width. Blocks until every item has been processed;
    /// a panicking `f` is resumed here after the remaining items drain.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
        self.scope(|scope| {
            for (i, (item, slot)) in items.iter().zip(slots.iter_mut()).enumerate() {
                let f = &f;
                scope.spawn(move || *slot = Some(f(i, item)));
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("scope barrier guarantees every slot is filled"))
            .collect()
    }

    /// Runs `f` with a [`PoolScope`] whose spawned jobs may borrow from the
    /// caller's stack. Blocks until every spawned job has finished; if any
    /// job panicked, the first panic is resumed here after the rest drain.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = PoolScope {
            queue: &self.queue,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        // The guard waits for pending == 0 even if `f` itself panics after
        // spawning jobs — jobs borrowing the stack must not outlive it.
        let guard = WaitGuard {
            queue: &self.queue,
            state: &state,
        };
        let result = f(&scope);
        drop(guard);
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        result
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.shutdown();
        for handle in self.workers.drain(..) {
            // A worker only panics if a job's panic escaped catch_unwind
            // (e.g. a foreign exception); surface it rather than hide it.
            if handle.join().is_err() {
                eprintln!("cuttlesys worker thread terminated abnormally");
            }
        }
    }
}

/// Waits for every job of a scope to finish, *helping* by running queued
/// jobs while it waits. Runs on drop so the wait happens even when the
/// scope closure unwinds.
struct WaitGuard<'a> {
    queue: &'a Queue,
    state: &'a ScopeState,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        loop {
            // Help: drain queued jobs (ours or a sibling scope's — either
            // makes progress and prevents nested-scope deadlock).
            while let Some(job) = self.queue.try_pop() {
                job();
            }
            let pending = self.state.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
            // A short timed wait: jobs may be queued by still-running jobs
            // of this very scope, so we must recheck the queue periodically
            // rather than block solely on the done condvar.
            let _unused = self
                .state
                .done_cv
                .wait_timeout(pending, Duration::from_millis(1))
                .unwrap();
        }
    }
}

/// Handle for spawning borrowing jobs inside [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    queue: &'pool Queue,
    state: Arc<ScopeState>,
    // Invariant in 'env, like std::thread::Scope: the environment lifetime
    // must not be shortened or lengthened by variance.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `f` to run on a pool worker (or on the scoping thread while it
    /// waits). The closure may borrow from `'env`; the scope's exit barrier
    /// guarantees it finishes before those borrows expire.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.job_started();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = outcome {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.job_finished();
        });
        // SAFETY: the job is queued behind the scope's exit barrier —
        // `WorkerPool::scope` (via WaitGuard, which runs even on unwind)
        // does not return until `pending` drops to zero, i.e. until this
        // closure has run to completion. Therefore every borrow of 'env
        // inside `f` is live for as long as the closure can execute, and
        // erasing the lifetime to 'static never lets a borrow dangle. This
        // is the same argument std::thread::scope makes for its own
        // lifetime erasure.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        self.queue.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_and_waits_for_all_of_them() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn jobs_may_borrow_mutably_from_the_stack() {
        let pool = WorkerPool::new(3);
        let mut slots = [0usize; 10];
        pool.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = i * i);
            }
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, i * i);
        }
    }

    #[test]
    fn a_single_threaded_pool_still_completes_wide_fanouts() {
        let pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..32 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn map_indexed_preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..33).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        for width in [1, 2, 8] {
            let pool = WorkerPool::new(width);
            let out = pool.map_indexed(&items, |i, v| {
                assert_eq!(items[i], *v);
                v * v
            });
            assert_eq!(out, expected, "width {width}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_input() {
        let pool = WorkerPool::new(2);
        let out: Vec<u64> = pool.map_indexed(&[], |_, v: &u64| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn nested_scopes_do_not_deadlock_even_when_oversubscribed() {
        // 2 workers, 4 outer jobs that each open an inner scope of 4 jobs:
        // the helping wait must let blocked outer jobs drain inner jobs.
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scopes_are_reusable_across_calls() {
        let pool = WorkerPool::new(2);
        let mut total = 0u64;
        for round in 0..10 {
            let mut partials = [0u64; 4];
            pool.scope(|scope| {
                for (t, slot) in partials.iter_mut().enumerate() {
                    scope.spawn(move || *slot = round * 10 + t as u64);
                }
            });
            total += partials.iter().sum::<u64>();
        }
        assert_eq!(total, (0..10).map(|r| 4 * r * 10 + 6).sum::<u64>());
    }

    #[test]
    fn a_panicking_job_propagates_after_siblings_finish() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for i in 0..8 {
                    let finished = Arc::clone(&finished);
                    scope.spawn(move || {
                        if i == 3 {
                            panic!("job 3 exploded");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the job panic must resurface");
        assert_eq!(finished.load(Ordering::Relaxed), 7);
        // And the pool must still be usable afterwards.
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn new_clamps_zero_threads_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn default_threads_is_in_the_documented_band() {
        let n = WorkerPool::default_threads();
        assert!((2..=8).contains(&n));
    }
}
