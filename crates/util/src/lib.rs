//! Shared runtime utilities for the CuttleSys workspace.
//!
//! Two things live here because more than one crate needs them and the
//! crates that need them must not depend on each other:
//!
//! * [`pool`] — a persistent [`pool::WorkerPool`] with long-lived threads
//!   and channel dispatch. The decision quantum leaves almost no budget for
//!   the manager itself (Table 2 of the paper charges reconstruction + DDS
//!   against the 100 ms quantum), so spawning OS threads per call — as
//!   `crossbeam::scope` does — is avoidable overhead: HOGWILD SGD, the
//!   three-matrix reconstruction driver, and parallel DDS all reuse one
//!   pool across quanta instead.
//! * [`rng64`] — the SplitMix64 finalizer and the counter-based stream
//!   mixing built on it. Previously each crate carried its own copy of the
//!   constants; a single unit-tested helper keeps the fault streams (and the
//!   DDS per-thread seeding) from silently diverging.
//! * [`reduce`] — worker-ordered reduction helpers. Parallel float
//!   reductions must fold per-worker slots in worker-index order to stay
//!   bit-deterministic; the `DET-FLOAT-REDUCE` lint points offenders here.
//! * [`json`] — the hand-rolled [`json::JsonValue`] writer (the vendored
//!   `serde` is a no-op stub). Shared by the bench report tables, the core
//!   run-record snapshots, and the control-plane service.

pub mod json;
pub mod pool;
pub mod reduce;
pub mod rng64;

pub use json::{emit_json, JsonValue};
pub use pool::WorkerPool;
