//! The SplitMix64 finalizer and counter-based stream mixing.
//!
//! Counter-based generation matters for fault injection (every value is a
//! pure function of `(seed, stream, index)`, so fault draws never perturb
//! the simulation's own RNG stream) and for per-thread search seeding (each
//! DDS worker derives its stream from the master seed and its thread index).
//! Both uses share the constants below; keeping them in one place means the
//! streams cannot silently diverge between crates.

/// The golden-ratio increment of SplitMix64 (⌊2⁶⁴/φ⌋, odd). Also used to
/// spread per-thread seeds across the `u64` space.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64: adds the golden-ratio gamma and applies the finalizer — a
/// well-mixed bijection on `u64`. This is one step of Steele et al.'s
/// SplitMix64 sequence starting from state `z`.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A raw 64-bit draw for `(seed, stream, index)` — pure and stateless.
///
/// Three chained SplitMix64 applications decorrelate the coordinates: the
/// seed is first whitened, the stream id is spread by an odd multiplier so
/// adjacent streams land far apart, and the index is mixed last.
#[must_use]
pub fn mix_stream(seed: u64, stream: u64, index: u64) -> u64 {
    let a = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    let b = splitmix64(a ^ stream.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    splitmix64(b ^ index)
}

/// Maps a raw 64-bit draw to a uniform `f64` in `[0, 1)` using the top 53
/// bits — the same construction the vendored rand crate uses.
#[must_use]
pub fn unit_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_splitmix64_vectors() {
        // Steele, Lea & Flood's reference sequence from seed 0: each output
        // is splitmix64 of the previous state (state advances by the gamma).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(GOLDEN_GAMMA), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(
            splitmix64(GOLDEN_GAMMA.wrapping_mul(2)),
            0x06C4_5D18_8009_454F
        );
    }

    #[test]
    fn is_a_bijection_on_small_samples() {
        use std::collections::HashSet;
        let outputs: HashSet<u64> = (0..10_000).map(splitmix64).collect();
        assert_eq!(outputs.len(), 10_000, "collision found");
    }

    #[test]
    fn mix_stream_separates_all_three_coordinates() {
        assert_eq!(mix_stream(7, 1, 42), mix_stream(7, 1, 42));
        assert_ne!(mix_stream(7, 1, 42), mix_stream(7, 1, 43));
        assert_ne!(mix_stream(7, 1, 42), mix_stream(7, 2, 42));
        assert_ne!(mix_stream(7, 1, 42), mix_stream(8, 1, 42));
    }

    #[test]
    fn unit_covers_the_half_open_interval() {
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for i in 0..10_000 {
            let u = unit_from_bits(mix_stream(3, 5, i));
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "stream should fill [0, 1)");
    }
}
