//! Worker-ordered reductions for parallel fan-outs.
//!
//! Floating-point reduction is where parallel code quietly loses
//! determinism: `+` is not associative in `f64`, and "keep the best"
//! scans resolve ties by visit order. Any reduction whose order depends on
//! thread completion — a shared accumulator, an atomic CAS loop over float
//! bits, whatever drains a channel first — can return different bits on
//! different runs of the *same* seed.
//!
//! The helpers here pin the order structurally: workers deposit their
//! partial results into per-worker slots, and the orchestrator folds the
//! slots in worker-index order after the fan-out barrier. Both parallel DDS
//! back-ends reduce through [`ordered_best`], which is why a 1-thread pool,
//! an 8-thread pool, and the spawn-per-call back-end return bit-identical
//! answers (`tests/determinism.rs` pins this).
//!
//! The `DET-FLOAT-REDUCE` lint (`cargo xtask lint`) flags ad-hoc float
//! accumulation idioms in the decision-path crates and points here.

/// Folds per-worker partial results in worker-index order.
///
/// The plain left fold, named: calling it documents that the iteration
/// order is the reduction order and that callers hand it worker-indexed
/// slots (not a completion-ordered stream).
pub fn ordered_fold<T, B, F>(parts: impl IntoIterator<Item = T>, init: B, f: F) -> B
where
    F: FnMut(B, T) -> B,
{
    parts.into_iter().fold(init, f)
}

/// Sums per-worker `f64` partials left-to-right in worker-index order.
///
/// `f64` addition is not associative; summing in slot order makes the
/// result a pure function of the partials.
pub fn ordered_sum(parts: impl IntoIterator<Item = f64>) -> f64 {
    ordered_fold(parts, 0.0, |acc, x| acc + x)
}

/// Reduces `(candidate, value)` pairs against an incumbent, keeping the
/// strictly better value; ties keep the earlier entry (the incumbent, then
/// the lowest worker index).
///
/// This is the paper's Alg. 2 reduction: "install the best local best as
/// the next global best", with ties broken by worker index so the outcome
/// does not depend on which thread finished first.
pub fn ordered_best<T>(parts: impl IntoIterator<Item = (T, f64)>, incumbent: (T, f64)) -> (T, f64) {
    ordered_fold(parts, incumbent, |best, (point, value)| {
        if value > best.1 {
            (point, value)
        } else {
            best
        }
    })
}

/// Concatenates per-worker logs in worker-index order.
///
/// Used for evaluation traces recorded concurrently: each worker appends to
/// its own log, and the concatenation order (not the interleaving of
/// evaluations) defines the record.
pub fn ordered_concat<T>(parts: impl IntoIterator<Item = Vec<T>>) -> Vec<T> {
    ordered_fold(parts, Vec::new(), |mut acc, mut part| {
        acc.append(&mut part);
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_sum_is_the_left_to_right_sum() {
        // Chosen so that a different association changes the result.
        let parts = [1e16_f64, 1.0, -1e16, 1.0];
        let expected: f64 = ((1e16_f64 + 1.0) + -1e16) + 1.0;
        assert_eq!(ordered_sum(parts).to_bits(), expected.to_bits());
        let reassociated: f64 = 1e16_f64 + (1.0 + (-1e16_f64 + 1.0));
        assert_ne!(ordered_sum(parts).to_bits(), reassociated.to_bits());
    }

    #[test]
    fn ordered_best_keeps_the_incumbent_on_ties() {
        let parts = vec![("w0", 2.0), ("w1", 3.0), ("w2", 3.0)];
        let (point, value) = ordered_best(parts, ("incumbent", 1.0));
        assert_eq!(point, "w1", "tie at 3.0 must keep the earlier worker");
        assert_eq!(value, 3.0);
        let parts = vec![("w0", 1.0)];
        let (point, _) = ordered_best(parts, ("incumbent", 1.0));
        assert_eq!(point, "incumbent", "equal value must not displace");
    }

    #[test]
    fn ordered_best_ignores_nan_candidates() {
        // NaN > x is false, so a NaN-valued candidate never wins.
        let parts = vec![("nan", f64::NAN), ("w1", 0.5)];
        let (point, value) = ordered_best(parts, ("incumbent", 0.0));
        assert_eq!(point, "w1");
        assert_eq!(value, 0.5);
    }

    #[test]
    fn ordered_concat_preserves_slot_order() {
        let parts = vec![vec![1, 2], vec![], vec![3]];
        assert_eq!(ordered_concat(parts), vec![1, 2, 3]);
    }

    #[test]
    fn ordered_fold_runs_left_to_right() {
        let trace = ordered_fold([1, 2, 3], String::new(), |acc, x| format!("{acc}{x}"));
        assert_eq!(trace, "123");
    }
}
