#![cfg(loom)]
//! Loom model of the [`util::pool::WorkerPool`] helping-wait protocol.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p util --test loom_pool
//! ```
//!
//! The hazards modeled (see pool.rs for the protocol):
//!
//! * **helping wait** — the thread that called `scope()` executes queued
//!   tasks while it waits, so a pool of N workers plus a blocked caller
//!   cannot deadlock even when every worker is busy;
//! * **completion barrier** — `scope()` must not return before every task
//!   spawned into it has finished (tasks borrow the caller's stack);
//! * **nested scopes** — a task may itself open a scope on the same pool.
//!
//! Under the vendored loom stand-in this explores a bounded set of
//! randomized interleavings; with the real loom it becomes exhaustive.

use loom::sync::atomic::{AtomicUsize, Ordering};
use util::pool::WorkerPool;

#[test]
fn scope_is_a_completion_barrier() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let tasks = 5;
        pool.scope(|scope| {
            for _ in 0..tasks {
                scope.spawn(|| {
                    loom::thread::yield_now();
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        // Every spawned task observed complete before scope() returned.
        assert_eq!(done.load(Ordering::SeqCst), tasks);
    });
}

#[test]
fn helping_wait_runs_tasks_on_the_caller_when_workers_stall() {
    loom::model(|| {
        // One worker, more tasks than workers: the scope caller must help
        // drain the queue or the join would stall behind the busy worker.
        let pool = WorkerPool::new(1);
        let done = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    loom::thread::yield_now();
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 4);
    });
}

#[test]
fn nested_scopes_on_the_same_pool_do_not_deadlock() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..2 {
                outer.spawn(|| {
                    // A task opening its own scope competes with its
                    // siblings for the same workers; the helping wait is
                    // what keeps this from deadlocking.
                    pool.scope(|inner| {
                        for _ in 0..2 {
                            inner.spawn(|| {
                                done.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 4);
    });
}

#[test]
fn per_worker_slots_need_no_reduction_lock() {
    loom::model(|| {
        // The worker-ordered reduction pattern (util::reduce): concurrent
        // writers each own a disjoint slot, the caller folds after the
        // barrier. The fold must see every write, in slot order.
        let pool = WorkerPool::new(2);
        let mut slots = vec![0usize; 4];
        pool.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || {
                    loom::thread::yield_now();
                    *slot = i + 1;
                });
            }
        });
        let folded: Vec<usize> = util::reduce::ordered_fold(slots, Vec::new(), |mut acc, s| {
            acc.push(s);
            acc
        });
        assert_eq!(folded, vec![1, 2, 3, 4]);
    });
}
