//! Baseline resource managers the paper compares CuttleSys against (§VII-B,
//! §VII-C, §VIII-E).
//!
//! * [`gating`] — core-level gating: the widely deployed C6-style baseline
//!   that turns whole cores off to meet the power budget, with the four
//!   core-selection orderings the paper evaluates and an optional UCP-style
//!   LLC way-partitioning.
//! * [`asymmetric`] — the oracle-like asymmetric multicore: big ({6,6,6}) and
//!   little ({2,2,2}) fixed cores with an oracle choosing the split and the
//!   job placement each timeslice, plus the realistic fixed 50-50 variant.
//! * [`ga`] — a generational genetic algorithm over the same configuration
//!   space as DDS (the paper's Fig. 10 comparison and Flicker's optimizer).
//! * [`feedback`] — a PID power controller over a global width level, the
//!   closed-loop alternative §IV argues converges too slowly.
//! * [`maxbips`] — the classic global DVFS power manager (Isci et al.),
//!   used to quantify the paper's DVFS-range motivation.
//! * [`rbf`] — radial-basis-function surrogate fitting (Flicker's inference,
//!   compared against SGD in Fig. 9).
//! * [`flicker`] — Flicker itself: 3-level sampling, RBF surrogates per job,
//!   and GA search over core configurations only (no cache partitioning).

pub mod asymmetric;
pub mod feedback;
pub mod flicker;
pub mod ga;
pub mod gating;
pub mod maxbips;
pub mod rbf;

pub use asymmetric::{oracle_plan, plan_with_big_count, AsymmetricInput, AsymmetricPlan};
pub use feedback::{PidController, WidthLevel};
pub use flicker::{three_level_design, FlickerModel};
pub use ga::{ga_search, GaParams};
pub use gating::{select_gated, ucp_partition, GatingOrder};
pub use maxbips::{max_bips, MaxBipsPlan};
pub use rbf::RbfModel;
