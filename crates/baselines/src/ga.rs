//! Generational genetic algorithm over discrete configuration spaces.
//!
//! Flicker's design-space optimizer, and the comparison point for Fig. 10:
//! the paper swaps DDS for a GA (keeping SGD for inference) and measures up
//! to 19 % lower throughput at equal time budget. The implementation is a
//! standard generational GA — tournament selection, uniform crossover,
//! per-gene mutation, elitism — over the same [`SearchSpace`] abstraction
//! DDS uses, so budget-matched comparisons are exact (both count objective
//! evaluations).

use dds::{Objective, SearchResult, SearchSpace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of crossover (else the fitter parent is cloned).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record every evaluated point (for the Fig. 10(a) scatter).
    pub record_explored: bool,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 50,
            generations: 40,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.05,
            elitism: 2,
            seed: 0x6A,
            record_explored: false,
        }
    }
}

impl GaParams {
    /// Sizes the GA to spend approximately `budget` objective evaluations,
    /// for fair comparisons against a DDS run.
    pub fn with_evaluation_budget(mut self, budget: usize) -> GaParams {
        self.generations = (budget / self.population).max(1);
        self
    }
}

/// Runs the GA, maximizing `objective` over `space`.
///
/// # Panics
///
/// Panics if `population < 2`, `tournament == 0`, or
/// `elitism >= population`.
pub fn ga_search(
    space: &SearchSpace,
    objective: &dyn Objective,
    params: &GaParams,
) -> SearchResult {
    assert!(params.population >= 2, "population must be at least 2");
    assert!(params.tournament > 0, "tournament size must be positive");
    assert!(
        params.elitism < params.population,
        "elitism must leave room for offspring"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut explored = Vec::new();
    let mut evaluations = 0;

    let evaluate =
        |point: &[usize], explored: &mut Vec<(Vec<usize>, f64)>, evaluations: &mut usize| {
            let v = objective.evaluate(point);
            *evaluations += 1;
            if params.record_explored {
                explored.push((point.to_vec(), v));
            }
            v
        };

    let mut population: Vec<(Vec<usize>, f64)> = (0..params.population)
        .map(|_| {
            let p = space.random_point(&mut rng);
            let v = evaluate(&p, &mut explored, &mut evaluations);
            (p, v)
        })
        .collect();

    let free = space.free_dims();
    for _ in 0..params.generations {
        population.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut next: Vec<(Vec<usize>, f64)> =
            population.iter().take(params.elitism).cloned().collect();
        while next.len() < params.population {
            let pick = |rng: &mut StdRng| -> usize {
                let mut best = rng.random_range(0..population.len());
                for _ in 1..params.tournament {
                    let c = rng.random_range(0..population.len());
                    if population[c].1 > population[best].1 {
                        best = c;
                    }
                }
                best
            };
            let a = pick(&mut rng);
            let b = pick(&mut rng);
            let mut child = if rng.random_range(0.0..1.0) < params.crossover_rate {
                // Uniform crossover over free dimensions.
                let (pa, pb) = (&population[a].0, &population[b].0);
                let mut c = pa.clone();
                for &d in &free {
                    if rng.random_range(0.0..1.0) < 0.5 {
                        c[d] = pb[d];
                    }
                }
                c
            } else {
                let fitter = if population[a].1 >= population[b].1 {
                    a
                } else {
                    b
                };
                population[fitter].0.clone()
            };
            for &d in &free {
                if rng.random_range(0.0..1.0) < params.mutation_rate {
                    child[d] = rng.random_range(0..space.num_choices());
                }
            }
            let v = evaluate(&child, &mut explored, &mut evaluations);
            next.push((child, v));
        }
        population = next;
    }

    population.sort_by(|a, b| b.1.total_cmp(&a.1));
    let (best_point, best_value) = population.swap_remove(0);
    SearchResult {
        best_point,
        best_value,
        evaluations,
        explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(target: usize) -> impl Fn(&[usize]) -> f64 + Sync {
        move |x: &[usize]| {
            -x.iter()
                .map(|&v| (v as f64 - target as f64).abs())
                .sum::<f64>()
        }
    }

    #[test]
    fn finds_separable_optimum_neighbourhood() {
        let space = SearchSpace::new(10, 108);
        let result = ga_search(&space, &separable(54), &GaParams::default());
        assert!(result.best_value > -80.0, "best {}", result.best_value);
    }

    #[test]
    fn respects_frozen_dimensions() {
        let mut space = SearchSpace::new(6, 50);
        space.freeze(2, 13);
        let result = ga_search(&space, &separable(40), &GaParams::default());
        assert_eq!(result.best_point[2], 13);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let space = SearchSpace::new(8, 108);
        let a = ga_search(&space, &separable(30), &GaParams::default());
        let b = ga_search(&space, &separable(30), &GaParams::default());
        assert_eq!(a.best_point, b.best_point);
    }

    #[test]
    fn budget_sizing_controls_evaluations() {
        let space = SearchSpace::new(4, 20);
        let params = GaParams::default().with_evaluation_budget(500);
        let result = ga_search(&space, &separable(10), &params);
        assert_eq!(
            result.evaluations,
            50 + params.generations * (50 - params.elitism)
        );
        assert!(result.evaluations <= 550 + 50);
    }

    #[test]
    fn explored_points_recorded_when_asked() {
        let space = SearchSpace::new(4, 10);
        let params = GaParams {
            record_explored: true,
            generations: 3,
            ..GaParams::default()
        };
        let result = ga_search(&space, &separable(5), &params);
        assert_eq!(result.explored.len(), result.evaluations);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn tiny_population_rejected() {
        let space = SearchSpace::new(2, 4);
        let _ = ga_search(
            &space,
            &separable(1),
            &GaParams {
                population: 1,
                ..GaParams::default()
            },
        );
    }
}
