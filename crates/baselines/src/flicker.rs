//! Flicker (§VIII-E) — the state-of-the-art reconfigurable-multicore runtime
//! for batch workloads.
//!
//! Flicker profiles each job on nine core configurations chosen by a
//! three-level experimental design (3MM3), fits RBF surrogates for
//! throughput and power over the three section widths, and searches the
//! per-job core-configuration space with a genetic algorithm. It manages
//! *core configurations only* — no cache partitioning — and its long
//! profiling phase is what makes it unusable for latency-critical services:
//! the paper measures order-of-magnitude QoS violations when tail-sensitive
//! jobs spend 9-90 ms in narrow profiling configurations.

use serde::Serialize;
use simulator::{CoreConfig, SectionWidth, NUM_CORE_CONFIGS};

use crate::rbf::{core_features, RbfModel};

/// The nine profiling configurations of the 3-level design: an L9 orthogonal
/// array over the three sections × three widths, so every width of every
/// section is observed three times with balanced co-levels.
pub fn three_level_design() -> Vec<CoreConfig> {
    const L9: [(usize, usize, usize); 9] = [
        (0, 0, 0),
        (0, 1, 1),
        (0, 2, 2),
        (1, 0, 1),
        (1, 1, 2),
        (1, 2, 0),
        (2, 0, 2),
        (2, 1, 0),
        (2, 2, 1),
    ];
    L9.iter()
        .map(|&(fe, be, ls)| {
            CoreConfig::new(
                SectionWidth::from_index(fe),
                SectionWidth::from_index(be),
                SectionWidth::from_index(ls),
            )
        })
        .collect()
}

/// Per-job RBF surrogates over the 27 core configurations.
#[derive(Debug, Clone, Serialize)]
pub struct FlickerModel {
    bips: Vec<RbfModel>,
    power: Vec<RbfModel>,
}

impl FlickerModel {
    /// Fits surrogates from profiling samples.
    ///
    /// `samples[j]` holds `(config, bips, watts)` triples for job `j` — the
    /// nine 3MM3 observations (or fewer, as in the Fig. 9 three-sample
    /// stress test).
    ///
    /// # Errors
    ///
    /// Propagates RBF fitting failures (too few or duplicate samples).
    pub fn fit(samples: &[Vec<(CoreConfig, f64, f64)>]) -> Result<FlickerModel, String> {
        let mut bips = Vec::with_capacity(samples.len());
        let mut power = Vec::with_capacity(samples.len());
        for (j, job_samples) in samples.iter().enumerate() {
            let xs: Vec<Vec<f64>> = job_samples
                .iter()
                .map(|(c, _, _)| core_features(*c))
                .collect();
            let ys_b: Vec<f64> = job_samples.iter().map(|&(_, b, _)| b).collect();
            let ys_w: Vec<f64> = job_samples.iter().map(|&(_, _, w)| w).collect();
            bips.push(RbfModel::fit(&xs, &ys_b).map_err(|e| format!("job {j} bips: {e}"))?);
            power.push(RbfModel::fit(&xs, &ys_w).map_err(|e| format!("job {j} power: {e}"))?);
        }
        Ok(FlickerModel { bips, power })
    }

    /// Number of jobs modelled.
    pub fn num_jobs(&self) -> usize {
        self.bips.len()
    }

    /// Predicted throughput of job `j` at `config`.
    pub fn predict_bips(&self, j: usize, config: CoreConfig) -> f64 {
        self.bips[j].predict(&core_features(config))
    }

    /// Predicted power of job `j` at `config`.
    pub fn predict_power(&self, j: usize, config: CoreConfig) -> f64 {
        self.power[j].predict(&core_features(config))
    }

    /// Full predicted throughput row for job `j` over all 27 configurations,
    /// indexed by [`CoreConfig::index`].
    pub fn bips_row(&self, j: usize) -> Vec<f64> {
        (0..NUM_CORE_CONFIGS)
            .map(|i| self.predict_bips(j, CoreConfig::from_index(i)))
            .collect()
    }

    /// Full predicted power row for job `j`.
    pub fn power_row(&self, j: usize) -> Vec<f64> {
        (0..NUM_CORE_CONFIGS)
            .map(|i| self.predict_power(j, CoreConfig::from_index(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l9_design_is_balanced() {
        let design = three_level_design();
        assert_eq!(design.len(), 9);
        // Every width of every section appears exactly three times.
        for section in 0..3 {
            for width in SectionWidth::ALL {
                let count = design
                    .iter()
                    .filter(|c| [c.fe, c.be, c.ls][section] == width)
                    .count();
                assert_eq!(count, 3, "section {section} width {width} unbalanced");
            }
        }
        // All nine rows distinct.
        let mut idx: Vec<usize> = design.iter().map(|c| c.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 9);
    }

    /// A smooth synthetic job response used to exercise the surrogate.
    fn synth_job(scale: f64) -> Vec<(CoreConfig, f64, f64)> {
        three_level_design()
            .into_iter()
            .map(|c| {
                let b = scale
                    * (1.0
                        + 0.4 * f64::from(c.fe.lanes())
                        + 0.3 * f64::from(c.be.lanes())
                        + 0.2 * f64::from(c.ls.lanes()));
                let w = 1.0 + 0.5 * b;
                (c, b, w)
            })
            .collect()
    }

    #[test]
    fn nine_sample_fit_predicts_all_27_reasonably() {
        let model = FlickerModel::fit(&[synth_job(1.0)]).unwrap();
        let truth = |c: CoreConfig| {
            1.0 + 0.4 * f64::from(c.fe.lanes())
                + 0.3 * f64::from(c.be.lanes())
                + 0.2 * f64::from(c.ls.lanes())
        };
        let mut max_rel = 0.0_f64;
        for c in CoreConfig::all() {
            let rel = (model.predict_bips(0, c) - truth(c)).abs() / truth(c);
            max_rel = max_rel.max(rel);
        }
        assert!(
            max_rel < 0.35,
            "9-sample RBF should track a smooth response: {max_rel}"
        );
    }

    #[test]
    fn rows_cover_all_core_configs() {
        let model = FlickerModel::fit(&[synth_job(1.0), synth_job(2.0)]).unwrap();
        assert_eq!(model.num_jobs(), 2);
        assert_eq!(model.bips_row(0).len(), 27);
        assert_eq!(model.power_row(1).len(), 27);
        // Job 1 is scaled 2× — its predictions should dominate job 0's.
        let c = CoreConfig::widest();
        assert!(model.predict_bips(1, c) > model.predict_bips(0, c));
    }

    #[test]
    fn too_few_samples_fail_to_fit() {
        let short: Vec<(CoreConfig, f64, f64)> = synth_job(1.0).into_iter().take(1).collect();
        assert!(FlickerModel::fit(&[short]).is_err());
    }
}
