//! Radial-basis-function surrogate fitting — Flicker's inference engine.
//!
//! Flicker profiles a handful of core configurations per job and fits an RBF
//! interpolant to predict performance and power everywhere else. Fig. 9 of
//! the paper shows why this needs ~9 samples: with the 3 samples comparable
//! to SGD's budget, the interpolant extrapolates wildly (outliers up to
//! 600 %). We reproduce a standard Gaussian-kernel RBF with a small ridge
//! term for numerical safety.

use serde::{Deserialize, Serialize};
use simulator::{CacheAlloc, CoreConfig, JobConfig};

/// A fitted RBF interpolant over points in `R^d`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbfModel {
    centers: Vec<Vec<f64>>,
    weights: Vec<f64>,
    width: f64,
}

/// Numeric feature vector for a core configuration: lane counts normalized
/// to `[0, 1]`.
pub fn core_features(config: CoreConfig) -> Vec<f64> {
    vec![
        f64::from(config.fe.lanes()) / 6.0,
        f64::from(config.be.lanes()) / 6.0,
        f64::from(config.ls.lanes()) / 6.0,
    ]
}

/// Feature vector for a full job configuration: core lanes plus
/// log2-scaled cache ways.
pub fn job_features(config: JobConfig) -> Vec<f64> {
    let mut f = core_features(config.core);
    // ways ∈ {0.5, 1, 2, 4} → log2 ∈ {−1, 0, 1, 2} → normalized to [0, 1].
    f.push((config.cache.ways().log2() + 1.0) / 3.0);
    f
}

/// The same cache feature alone, for callers building custom vectors.
pub fn cache_feature(cache: CacheAlloc) -> f64 {
    (cache.ways().log2() + 1.0) / 3.0
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl RbfModel {
    /// Fits the interpolant to `(xs, ys)` samples.
    ///
    /// The kernel width is the mean pairwise distance between samples (a
    /// standard heuristic); the linear system is solved by Gaussian
    /// elimination with partial pivoting and a `1e-8` ridge.
    ///
    /// # Errors
    ///
    /// Returns an error when fewer than 2 samples are supplied, dimensions
    /// disagree, or the system is numerically singular (e.g. duplicate
    /// sample points).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<RbfModel, String> {
        if xs.len() < 2 {
            return Err(format!(
                "RBF fitting needs at least 2 samples, got {}",
                xs.len()
            ));
        }
        if xs.len() != ys.len() {
            return Err("xs and ys lengths differ".to_string());
        }
        let dim = xs[0].len();
        if xs.iter().any(|x| x.len() != dim) {
            return Err("inconsistent feature dimensions".to_string());
        }
        let n = xs.len();
        let mut dist_sum = 0.0;
        let mut pairs = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d2 = sq_dist(&xs[i], &xs[j]);
                if d2 < 1e-20 {
                    return Err(format!("duplicate sample points at indices {i} and {j}"));
                }
                dist_sum += d2.sqrt();
                pairs += 1;
            }
        }
        let width = (dist_sum / pairs as f64).max(1e-6);

        // Kernel matrix with ridge.
        let mut a: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        (-sq_dist(&xs[i], &xs[j]) / (2.0 * width * width)).exp()
                            + if i == j { 1e-8 } else { 0.0 }
                    })
                    .collect()
            })
            .collect();
        let mut b = ys.to_vec();

        // Gaussian elimination with partial pivoting.
        #[allow(clippy::needless_range_loop)] // pivoting mutates `a` while scanning by index
        for col in 0..n {
            let (pivot, pivot_val) = (col..n)
                .map(|r| (r, a[r][col].abs()))
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .expect("non-empty column");
            if pivot_val < 1e-12 {
                return Err("singular RBF system (duplicate samples?)".to_string());
            }
            a.swap(col, pivot);
            b.swap(col, pivot);
            for r in (col + 1)..n {
                let f = a[r][col] / a[col][col];
                for c in col..n {
                    a[r][c] -= f * a[col][c];
                }
                b[r] -= f * b[col];
            }
        }
        let mut weights = vec![0.0; n];
        for r in (0..n).rev() {
            let mut acc = b[r];
            for c in (r + 1)..n {
                acc -= a[r][c] * weights[c];
            }
            weights[r] = acc / a[r][r];
        }
        Ok(RbfModel {
            centers: xs.to_vec(),
            weights,
            width,
        })
    }

    /// Predicted value at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has a different dimension than the training samples.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.centers[0].len(), "feature dimension mismatch");
        self.centers
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| w * (-sq_dist(x, c) / (2.0 * self.width * self.width)).exp())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simulator::SectionWidth;

    fn grid_samples(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Smooth 2-D function on a grid.
        let f = |x: f64, y: f64| 1.0 + x * x + 0.5 * y;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let (x, y) = (i as f64 / (n - 1) as f64, j as f64 / (n - 1) as f64);
                xs.push(vec![x, y]);
                ys.push(f(x, y));
            }
        }
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points_exactly() {
        let (xs, ys) = grid_samples(3);
        let model = RbfModel::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((model.predict(x) - y).abs() < 1e-4, "training point missed");
        }
    }

    #[test]
    fn dense_sampling_interpolates_well() {
        let (xs, ys) = grid_samples(4);
        let model = RbfModel::fit(&xs, &ys).unwrap();
        let f = |x: f64, y: f64| 1.0 + x * x + 0.5 * y;
        let err = (model.predict(&[0.4, 0.6]) - f(0.4, 0.6)).abs();
        assert!(err < 0.1, "interior error {err}");
    }

    #[test]
    fn three_samples_extrapolate_poorly() {
        // The Fig. 9 phenomenon: 3 samples of a curved function leave huge
        // errors away from the samples.
        let f = |x: f64| 5.0 * (3.0 * x).exp() / 20.0;
        let xs: Vec<Vec<f64>> = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys: Vec<f64> = xs.iter().map(|x| f(x[0])).collect();
        let model = RbfModel::fit(&xs, &ys).unwrap();
        let mut max_rel = 0.0_f64;
        for i in 0..50 {
            let x = i as f64 / 49.0;
            let rel = (model.predict(&[x]) - f(x)).abs() / f(x);
            max_rel = max_rel.max(rel);
        }
        assert!(
            max_rel > 0.10,
            "expected visible sparse-sample error, got {max_rel}"
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(RbfModel::fit(&[vec![0.0]], &[1.0]).is_err());
        assert!(RbfModel::fit(&[vec![0.0], vec![1.0]], &[1.0]).is_err());
        // Duplicate points make the system singular.
        assert!(RbfModel::fit(&[vec![0.3], vec![0.3]], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn feature_vectors_are_normalized() {
        let jc = JobConfig::new(
            CoreConfig::new(SectionWidth::Six, SectionWidth::Two, SectionWidth::Four),
            CacheAlloc::Half,
        );
        let f = job_features(jc);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)), "{f:?}");
        assert_eq!(f[0], 1.0);
        assert_eq!(f[3], 0.0);
        assert_eq!(cache_feature(CacheAlloc::Four), 1.0);
    }
}
