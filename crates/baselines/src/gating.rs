//! Core-level gating (§VII-B).
//!
//! The baseline deployed in current servers: every core runs at the full
//! configuration, and whole cores are power-gated (C6) until the chip fits
//! the power budget. Cores hosting the latency-critical service are never
//! gated. The paper explores four orderings for selecting victims and finds
//! descending power best; it also refines the final victim choice to the one
//! that meets the budget with the smallest slack, and optionally adds
//! UCP-style LLC way-partitioning (Qureshi & Patt) since that hardware exists
//! in real servers.

use serde::{Deserialize, Serialize};
use simulator::{AppProfile, CacheAlloc, CoreConfig, PerfModel};

/// Victim-selection ordering for core gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatingOrder {
    /// Gate the most power-hungry cores first (the paper's best performer).
    DescendingPower,
    /// Gate the least power-hungry cores first.
    AscendingPower,
    /// Gate the least efficient (BIPS/W) cores first.
    AscendingBipsPerWatt,
    /// Gate the slowest (BIPS) cores first.
    AscendingBips,
}

impl GatingOrder {
    /// All orderings, for the §VII-B exploration.
    pub const ALL: [GatingOrder; 4] = [
        GatingOrder::DescendingPower,
        GatingOrder::AscendingPower,
        GatingOrder::AscendingBipsPerWatt,
        GatingOrder::AscendingBips,
    ];

    /// Victim priority: candidates sorted by this key are gated first.
    fn key(&self, bips: f64, watts: f64) -> f64 {
        match self {
            GatingOrder::DescendingPower => -watts,
            GatingOrder::AscendingPower => watts,
            GatingOrder::AscendingBipsPerWatt => bips / watts.max(1e-9),
            GatingOrder::AscendingBips => bips,
        }
    }
}

/// Selects which gateable cores to gate so that
/// `Σ active watts + Σ gated residuals + fixed_watts ≤ budget`.
///
/// `cores` carries each gateable core's measured `(bips, watts)`;
/// `fixed_watts` is the power of cores that may never be gated (the
/// latency-critical service's cores plus uncore). Returns a gating mask over
/// `cores`.
///
/// Implements the paper's refinement: after the greedy pass, the last victim
/// is swapped for whichever active core meets the budget with the smallest
/// slack.
pub fn select_gated(
    cores: &[(f64, f64)],
    fixed_watts: f64,
    budget: f64,
    gated_watts: f64,
    order: GatingOrder,
) -> Vec<bool> {
    let mut gated = vec![false; cores.len()];
    let mut total = fixed_watts + cores.iter().map(|&(_, w)| w).sum::<f64>();
    if total <= budget {
        return gated;
    }
    let mut priority: Vec<usize> = (0..cores.len()).collect();
    priority.sort_by(|&a, &b| {
        order
            .key(cores[a].0, cores[a].1)
            .total_cmp(&order.key(cores[b].0, cores[b].1))
            .then(a.cmp(&b))
    });
    let mut last_victim = None;
    for &i in &priority {
        if total <= budget {
            break;
        }
        gated[i] = true;
        total -= cores[i].1 - gated_watts;
        last_victim = Some(i);
    }
    // Refinement: replace the last victim with the active core whose gating
    // meets the budget with the least slack.
    if let Some(last) = last_victim {
        if total <= budget {
            let without_last = total + (cores[last].1 - gated_watts);
            let mut best: Option<(usize, f64)> = Some((last, budget - total));
            for (i, &(_, w)) in cores.iter().enumerate() {
                if gated[i] && i != last {
                    continue;
                }
                let candidate_total = without_last - (w - gated_watts);
                if candidate_total <= budget {
                    let slack = budget - candidate_total;
                    if best.is_none_or(|(_, s)| slack < s) {
                        best = Some((i, slack));
                    }
                }
            }
            if let Some((i, _)) = best {
                if i != last {
                    gated[last] = false;
                    gated[i] = true;
                }
            }
        }
    }
    gated
}

/// UCP-style greedy way-partitioning over the coarse allocations CuttleSys
/// also uses.
///
/// Starts every job at half a way and repeatedly grants the upgrade with the
/// highest marginal miss-rate reduction per additional way (weighted by the
/// job's LLC access intensity), while ways remain. This is the lookahead
/// greedy of Utility-Based Cache Partitioning restricted to the
/// `{1/2, 1, 2, 4}` allocation alphabet.
pub fn ucp_partition(apps: &[AppProfile], total_ways: f64) -> Vec<CacheAlloc> {
    greedy_partition(apps, total_ways, |app, from, to| {
        (app.llc_miss_rate(from) - app.llc_miss_rate(to)) * app.llc_accesses_per_instr()
    })
}

/// Way-partitioning by marginal *IPC* utility: the same greedy lookahead,
/// but the upgrade benefit is evaluated through the performance model
/// rather than raw miss counts. This is closer to what UCP's utility
/// monitors approximate (misses weighted by their performance impact), and
/// is what the gating baseline uses so extra ways are never handed to jobs
/// that cannot convert them into instructions.
pub fn ipc_partition(
    perf: &PerfModel,
    apps: &[AppProfile],
    core: CoreConfig,
    total_ways: f64,
) -> Vec<CacheAlloc> {
    greedy_partition(apps, total_ways, |app, from, to| {
        perf.ipc(app, core, to, 0.0) - perf.ipc(app, core, from, 0.0)
    })
}

/// Shared greedy lookahead: start every job at half a way, repeatedly grant
/// the upgrade with the highest `utility(app, from_ways, to_ways)` per
/// additional way while ways remain.
fn greedy_partition(
    apps: &[AppProfile],
    total_ways: f64,
    utility: impl Fn(&AppProfile, f64, f64) -> f64,
) -> Vec<CacheAlloc> {
    let mut allocs = vec![CacheAlloc::Half; apps.len()];
    let mut used: f64 = apps.len() as f64 * 0.5;
    loop {
        let mut best: Option<(usize, f64, CacheAlloc)> = None;
        for (i, app) in apps.iter().enumerate() {
            let next = match allocs[i] {
                CacheAlloc::Half => CacheAlloc::One,
                CacheAlloc::One => CacheAlloc::Two,
                CacheAlloc::Two => CacheAlloc::Four,
                CacheAlloc::Four => continue,
            };
            let extra = next.ways() - allocs[i].ways();
            if used + extra > total_ways {
                continue;
            }
            let gain = utility(app, allocs[i].ways(), next.ways()) / extra;
            if best.is_none_or(|(_, g, _)| gain > g) {
                best = Some((i, gain, next));
            }
        }
        match best {
            Some((i, _, next)) => {
                used += next.ways() - allocs[i].ways();
                allocs[i] = next;
            }
            None => break,
        }
    }
    allocs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores() -> Vec<(f64, f64)> {
        // (bips, watts): four cores with distinct profiles.
        vec![(4.0, 5.0), (2.0, 4.0), (3.0, 3.0), (1.0, 2.0)]
    }

    #[test]
    fn no_gating_needed_under_budget() {
        let g = select_gated(&cores(), 10.0, 30.0, 0.05, GatingOrder::DescendingPower);
        assert!(g.iter().all(|&x| !x));
    }

    #[test]
    fn descending_power_gates_hungriest_first() {
        // total = 10 + 14 = 24; budget 20 → must shed ≥ 4 W.
        let g = select_gated(&cores(), 10.0, 20.0, 0.05, GatingOrder::DescendingPower);
        // Greedy gates core 0 (5 W) → 19.05 ≤ 20; refinement then swaps to
        // core 1 (4 W) for the smallest slack: 20.05 > 20 fails, so core 0
        // stays... verify the budget is met either way.
        let total: f64 = 10.0
            + g.iter()
                .zip(&cores())
                .map(|(&gated, &(_, w))| if gated { 0.05 } else { w })
                .sum::<f64>();
        assert!(total <= 20.0, "budget violated: {total}");
        assert_eq!(g.iter().filter(|&&x| x).count(), 1);
    }

    #[test]
    fn smallest_slack_refinement_picks_tight_fit() {
        // total = 14; budget 11: shedding core 1 (4 W) exactly leaves 10.05
        // while shedding core 0 (5 W) leaves 9.05 — refinement must prefer
        // the tighter fit (core 1).
        let g = select_gated(&cores(), 0.0, 11.0, 0.05, GatingOrder::DescendingPower);
        assert!(g[1], "expected tight-fit victim, got {g:?}");
        assert!(!g[0]);
    }

    #[test]
    fn ascending_bips_gates_slowest() {
        let g = select_gated(&cores(), 0.0, 12.5, 0.05, GatingOrder::AscendingBips);
        assert!(g[3], "slowest core should be gated: {g:?}");
    }

    #[test]
    fn all_orders_meet_budget_when_feasible() {
        for order in GatingOrder::ALL {
            let g = select_gated(&cores(), 0.0, 6.0, 0.05, order);
            let total: f64 = g
                .iter()
                .zip(&cores())
                .map(|(&gated, &(_, w))| if gated { 0.05 } else { w })
                .sum();
            assert!(total <= 6.0, "{order:?} violated budget: {total}");
        }
    }

    #[test]
    fn infeasible_budget_gates_everything() {
        let g = select_gated(&cores(), 50.0, 1.0, 0.05, GatingOrder::DescendingPower);
        assert!(g.iter().all(|&x| x));
    }

    #[test]
    fn ucp_gives_more_ways_to_cache_hungry_jobs() {
        let hungry = AppProfile::memory_bound();
        let tiny = AppProfile::compute_bound();
        let allocs = ucp_partition(&[hungry, tiny, tiny, tiny], 8.0);
        assert!(
            allocs[0] >= allocs[1],
            "memory-bound job should win ways: {allocs:?}"
        );
        let used: f64 = allocs.iter().map(|a| a.ways()).sum();
        assert!(used <= 8.0);
    }

    #[test]
    fn ucp_respects_total_ways() {
        let apps = vec![AppProfile::memory_bound(); 16];
        let allocs = ucp_partition(&apps, 32.0);
        let used: f64 = allocs.iter().map(|a| a.ways()).sum();
        assert!(used <= 32.0);
        // With a generous budget everyone should get upgraded beyond Half.
        assert!(allocs.iter().all(|&a| a > CacheAlloc::Half));
    }

    #[test]
    fn ipc_partition_beats_uniform_one_way() {
        use simulator::SystemParams;
        let perf = PerfModel::new(SystemParams::default());
        let apps = vec![
            AppProfile::memory_bound(),
            AppProfile::compute_bound(),
            AppProfile::balanced(),
            AppProfile::memory_bound(),
        ];
        let core = CoreConfig::widest();
        let allocs = ipc_partition(&perf, &apps, core, 8.0);
        let partitioned: f64 = apps
            .iter()
            .zip(&allocs)
            .map(|(a, al)| perf.ipc(a, core, al.ways(), 0.0))
            .sum();
        let uniform: f64 = apps.iter().map(|a| perf.ipc(a, core, 1.0, 0.0)).sum();
        assert!(
            partitioned >= uniform,
            "greedy IPC partitioning must not lose to uniform: {partitioned} vs {uniform}"
        );
    }

    #[test]
    fn ucp_with_tight_budget_keeps_halves() {
        let apps = vec![AppProfile::balanced(); 16];
        let allocs = ucp_partition(&apps, 8.0);
        let used: f64 = allocs.iter().map(|a| a.ways()).sum();
        assert!(used <= 8.0);
    }
}
