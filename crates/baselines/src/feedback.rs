//! Feedback power controller — the closed-loop alternative CuttleSys
//! argues against (§IV: "CuttleSys is an open-loop solution, which searches
//! the design space and finds the best resource allocation in a single
//! decision interval compared to feedback-based controllers, which take
//! significant time to converge").
//!
//! This is a textbook PID loop in the style of the MPC/controller
//! literature the paper cites (\[34\], \[35\], \[36\]): it observes chip power,
//! compares against the cap, and nudges a *global width level* — an index
//! into the core configurations ordered from narrowest to widest — applied
//! to all batch cores. One knob, measured feedback, incremental actuation:
//! robust, but it needs several decision intervals to settle after every
//! cap or load change, and until it settles it either violates the budget
//! or wastes headroom.

use serde::{Deserialize, Serialize};
use simulator::{CoreConfig, NUM_CORE_CONFIGS};

/// A discrete PID controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Anti-windup clamp on the integral term.
    pub integral_limit: f64,
    integral: f64,
    last_error: Option<f64>,
}

impl PidController {
    /// Creates a controller with the given gains.
    pub fn new(kp: f64, ki: f64, kd: f64, integral_limit: f64) -> PidController {
        PidController {
            kp,
            ki,
            kd,
            integral_limit,
            integral: 0.0,
            last_error: None,
        }
    }

    /// One control step: returns the actuation for the measured `error`
    /// (setpoint − measurement).
    pub fn update(&mut self, error: f64) -> f64 {
        self.integral = (self.integral + error).clamp(-self.integral_limit, self.integral_limit);
        let derivative = self.last_error.map_or(0.0, |last| error - last);
        self.last_error = Some(error);
        self.kp * error + self.ki * self.integral + self.kd * derivative
    }

    /// Resets the controller state (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }
}

/// The global width-level actuator: a continuous level in
/// `[0, NUM_CORE_CONFIGS)` mapped onto core configurations ordered by
/// total active lanes (narrowest first), i.e. roughly by power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidthLevel {
    level: f64,
    ladder: Vec<CoreConfig>,
}

impl WidthLevel {
    /// Starts at the widest configuration.
    pub fn new() -> WidthLevel {
        let mut ladder: Vec<CoreConfig> = CoreConfig::all().collect();
        ladder.sort_by_key(|c| (c.total_lanes(), c.index()));
        WidthLevel {
            level: (NUM_CORE_CONFIGS - 1) as f64,
            ladder,
        }
    }

    /// Applies an actuation (positive widens, negative narrows).
    pub fn adjust(&mut self, delta: f64) {
        self.level = (self.level + delta).clamp(0.0, (NUM_CORE_CONFIGS - 1) as f64);
    }

    /// The configuration at the current level.
    pub fn config(&self) -> CoreConfig {
        self.ladder[self.level.round() as usize]
    }

    /// The raw level.
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl Default for WidthLevel {
    fn default() -> Self {
        WidthLevel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_drives_a_first_order_plant_to_the_setpoint() {
        // plant: power = 2 + 3·level; setpoint 20 → level 6.
        let mut pid = PidController::new(0.15, 0.05, 0.02, 100.0);
        let mut level = 10.0_f64;
        let mut power = 2.0 + 3.0 * level;
        for _ in 0..50 {
            let actuation = pid.update(20.0 - power);
            level = (level + actuation).clamp(0.0, 26.0);
            power = 2.0 + 3.0 * level;
        }
        assert!((power - 20.0).abs() < 1.0, "plant settled at {power}");
    }

    #[test]
    fn pid_needs_multiple_steps_to_converge() {
        // The §IV point: after a setpoint step, a feedback loop spends
        // several intervals out of band.
        let mut pid = PidController::new(0.15, 0.05, 0.02, 100.0);
        let mut level = 26.0_f64;
        let mut out_of_band = 0;
        for _ in 0..20 {
            let power = 2.0 + 3.0 * level;
            if (power - 20.0).abs() > 2.0 {
                out_of_band += 1;
            }
            level = (level + pid.update(20.0 - power)).clamp(0.0, 26.0);
        }
        assert!(
            out_of_band >= 3,
            "a PID should take several steps, took {out_of_band}"
        );
    }

    #[test]
    fn integral_is_clamped() {
        let mut pid = PidController::new(0.0, 1.0, 0.0, 5.0);
        for _ in 0..100 {
            pid.update(100.0);
        }
        assert!(pid.update(0.0) <= 5.0);
    }

    #[test]
    fn reset_clears_history() {
        let mut pid = PidController::new(1.0, 1.0, 1.0, 10.0);
        pid.update(5.0);
        pid.reset();
        // After reset, derivative has no history and integral restarts.
        assert_eq!(pid.update(2.0), 2.0 + 2.0);
    }

    #[test]
    fn width_ladder_is_monotone_in_lanes() {
        let w = WidthLevel::new();
        assert_eq!(w.config(), CoreConfig::widest());
        let mut w2 = WidthLevel::new();
        w2.adjust(-1000.0);
        assert_eq!(w2.config(), CoreConfig::narrowest());
        assert_eq!(w2.level(), 0.0);
    }

    #[test]
    fn adjust_moves_the_level_and_clamps() {
        let mut w = WidthLevel::new();
        w.adjust(-5.0);
        assert_eq!(w.level(), 21.0);
        w.adjust(100.0);
        assert_eq!(w.level(), 26.0);
    }
}
