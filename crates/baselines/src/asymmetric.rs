//! Oracle-like asymmetric multicore (§VII-C).
//!
//! The chip has two fixed core types — big (equivalent to {6,6,6}) and small
//! (equivalent to {2,2,2}). The paper's oracle ignores migration overheads
//! and each timeslice picks the best number of big/small cores, maps the
//! latency-critical service to big cores (to meet QoS), and places each
//! batch job on a big or small core to maximize throughput under the power
//! budget. The realistic comparison point fixes the split at 50-50.

use serde::{Deserialize, Serialize};

use crate::gating::{select_gated, GatingOrder};

/// Per-batch-job throughput/power on each core type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreChoice {
    /// Throughput on a big core (BIPS).
    pub bips_big: f64,
    /// Power on a big core (W).
    pub watts_big: f64,
    /// Throughput on a small core (BIPS).
    pub bips_small: f64,
    /// Power on a small core (W).
    pub watts_small: f64,
}

/// Inputs to the asymmetric planner for one timeslice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsymmetricInput {
    /// Total cores on the chip.
    pub num_cores: usize,
    /// Cores occupied by latency-critical tenants (always big cores).
    pub lc_cores: usize,
    /// Total power of the latency-critical tenants' cores (W).
    pub lc_watts: f64,
    /// Each batch job's behaviour on the two core types.
    pub batch: Vec<CoreChoice>,
    /// Chip power budget (W).
    pub budget: f64,
    /// Residual power of a gated core (W).
    pub gated_watts: f64,
}

/// A placement decision for one timeslice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsymmetricPlan {
    /// Number of big cores on the chip (including the LC cores).
    pub big_cores: usize,
    /// For each batch job: `true` if placed on a big core.
    pub on_big: Vec<bool>,
    /// For each batch job: `true` if its core is gated to meet the budget.
    pub gated: Vec<bool>,
    /// Sum of `ln(BIPS)` over running batch jobs (gmean surrogate).
    pub log_throughput: f64,
    /// Total batch throughput (BIPS) of running jobs.
    pub total_bips: f64,
    /// Chip power of the plan (W).
    pub power: f64,
}

impl AsymmetricPlan {
    fn feasible(&self, budget: f64) -> bool {
        self.power <= budget
    }
}

/// Plans placement for a *given* number of big cores.
///
/// Batch jobs start on small cores; upgrades to spare big cores are granted
/// greedily by `Δln(BIPS)/ΔW`. If even the all-small placement busts the
/// budget, batch cores are gated in descending power order (the paper's best
/// gating policy).
///
/// Returns `None` if the split cannot host the LC service (`big <
/// lc_cores`) or the chip has fewer cores than jobs require.
pub fn plan_with_big_count(input: &AsymmetricInput, big: usize) -> Option<AsymmetricPlan> {
    if big < input.lc_cores || big > input.num_cores {
        return None;
    }
    let batch_cores = input.num_cores - input.lc_cores;
    if input.batch.len() > batch_cores {
        return None;
    }
    let spare_big = big - input.lc_cores;
    let mut on_big = vec![false; input.batch.len()];
    // Greedy upgrades by log-throughput gain per extra Watt.
    let mut candidates: Vec<(usize, f64)> = input
        .batch
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let gain = (c.bips_big.max(1e-12).ln() - c.bips_small.max(1e-12).ln())
                / (c.watts_big - c.watts_small).max(1e-9);
            (i, gain)
        })
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in candidates.iter().take(spare_big) {
        on_big[i] = true;
    }

    let lc_watts = input.lc_watts;
    let per_job: Vec<(f64, f64)> = input
        .batch
        .iter()
        .zip(&on_big)
        .map(|(c, &big)| {
            if big {
                (c.bips_big, c.watts_big)
            } else {
                (c.bips_small, c.watts_small)
            }
        })
        .collect();
    let gated = select_gated(
        &per_job,
        lc_watts,
        input.budget,
        input.gated_watts,
        GatingOrder::DescendingPower,
    );

    let mut power = lc_watts;
    let mut log_tput = 0.0;
    let mut total = 0.0;
    for ((bips, watts), &g) in per_job.iter().zip(&gated) {
        if g {
            power += input.gated_watts;
        } else {
            power += watts;
            log_tput += bips.max(1e-12).ln();
            total += bips;
        }
    }
    Some(AsymmetricPlan {
        big_cores: big,
        on_big,
        gated,
        log_throughput: log_tput,
        total_bips: total,
        power,
    })
}

/// The oracle: evaluates every feasible big/small split and returns the plan
/// maximizing total batch throughput among budget-feasible plans (falling
/// back to the lowest-power plan when nothing is feasible).
pub fn oracle_plan(input: &AsymmetricInput) -> AsymmetricPlan {
    let mut best: Option<AsymmetricPlan> = None;
    let mut fallback: Option<AsymmetricPlan> = None;
    for big in input.lc_cores..=input.num_cores {
        let Some(plan) = plan_with_big_count(input, big) else {
            continue;
        };
        if plan.feasible(input.budget) {
            let better = best.as_ref().is_none_or(|b| plan.total_bips > b.total_bips);
            if better {
                best = Some(plan.clone());
            }
        }
        if fallback.as_ref().is_none_or(|f| plan.power < f.power) {
            fallback = Some(plan);
        }
    }
    best.or(fallback)
        .expect("at least one split must be plannable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(budget: f64) -> AsymmetricInput {
        AsymmetricInput {
            num_cores: 8,
            lc_cores: 4,
            lc_watts: 16.0,
            batch: vec![
                CoreChoice {
                    bips_big: 4.0,
                    watts_big: 5.0,
                    bips_small: 1.0,
                    watts_small: 1.5,
                },
                CoreChoice {
                    bips_big: 3.0,
                    watts_big: 4.5,
                    bips_small: 1.5,
                    watts_small: 1.2,
                },
                CoreChoice {
                    bips_big: 2.0,
                    watts_big: 4.0,
                    bips_small: 1.8,
                    watts_small: 1.0,
                },
                CoreChoice {
                    bips_big: 3.5,
                    watts_big: 5.5,
                    bips_small: 0.8,
                    watts_small: 1.4,
                },
            ],
            budget,
            gated_watts: 0.05,
        }
    }

    #[test]
    fn generous_budget_puts_everyone_on_big_cores() {
        let plan = oracle_plan(&input(100.0));
        assert_eq!(plan.big_cores, 8);
        assert!(plan.on_big.iter().all(|&b| b));
        assert!(plan.gated.iter().all(|&g| !g));
    }

    #[test]
    fn tight_budget_moves_jobs_to_small_cores() {
        // LC alone needs 16 W; budget 22 leaves ~6 W for 4 batch jobs → all
        // small (≈5.1 W) fits, any big upgrade does not.
        let plan = oracle_plan(&input(22.0));
        assert!(plan.power <= 22.0);
        assert!(plan.on_big.iter().filter(|&&b| b).count() <= 1);
        assert!(plan.gated.iter().all(|&g| !g), "no gating needed: {plan:?}");
    }

    #[test]
    fn brutal_budget_gates_batch_cores() {
        // 18 W: LC (16 W) + 4 small jobs (5.1 W) still over → gating.
        let plan = oracle_plan(&input(18.0));
        assert!(plan.power <= 18.0, "power {}", plan.power);
        assert!(plan.gated.iter().any(|&g| g));
    }

    #[test]
    fn upgrades_prefer_big_benefit_jobs() {
        // Exactly one spare big core: job 3 has the biggest log gain
        // (0.8 → 3.5 ≈ 1.47 nats / 4.1 W ≈ 0.36) vs job 0
        // (1.0 → 4.0 ≈ 1.39 / 3.5 ≈ 0.40) — job 0 wins per Watt.
        let plan = plan_with_big_count(&input(100.0), 5).unwrap();
        assert_eq!(plan.on_big.iter().filter(|&&b| b).count(), 1);
        assert!(plan.on_big[0], "expected job 0 upgraded: {plan:?}");
    }

    #[test]
    fn split_smaller_than_lc_is_rejected() {
        assert!(plan_with_big_count(&input(50.0), 3).is_none());
        assert!(plan_with_big_count(&input(50.0), 9).is_none());
    }

    #[test]
    fn fifty_fifty_split_is_plannable() {
        let plan = plan_with_big_count(&input(100.0), 4).unwrap();
        // 4 big cores all used by LC: every batch job on small cores.
        assert!(plan.on_big.iter().all(|&b| !b));
    }

    #[test]
    fn oracle_beats_or_matches_fixed_splits_when_feasible() {
        for budget in [20.0, 25.0, 30.0, 40.0] {
            let oracle = oracle_plan(&input(budget));
            if let Some(fixed) = plan_with_big_count(&input(budget), 4) {
                if fixed.power <= budget && oracle.power <= budget {
                    assert!(
                        oracle.total_bips >= fixed.total_bips - 1e-9,
                        "oracle must dominate 50-50 at budget {budget}"
                    );
                }
            }
        }
    }
}
