//! maxBIPS (Isci et al. \[29\]) — the classic global DVFS power manager.
//!
//! Given each core's throughput/power at every DVFS operating point,
//! maxBIPS picks per-core modes that maximize total BIPS under the chip
//! power budget. The original evaluates all mode combinations; for the
//! ladder sizes that matter a greedy marginal-utility descent (downgrade
//! the core losing the fewest BIPS per Watt saved) reaches the same
//! solutions and scales, and is what we implement.
//!
//! This baseline exists to quantify the paper's motivation: under tight
//! caps on a modern (voltage-floor-limited) process, DVFS alone cannot
//! reach the low-power operating points reconfiguration can.

use serde::{Deserialize, Serialize};

/// One core's options: `(bips, watts)` at each ladder state, highest
/// frequency first (monotone non-increasing in both).
pub type CoreOptions = Vec<(f64, f64)>;

/// A maxBIPS allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxBipsPlan {
    /// Chosen ladder index per core.
    pub states: Vec<usize>,
    /// Total throughput (BIPS).
    pub total_bips: f64,
    /// Total power (W).
    pub total_watts: f64,
    /// Whether the plan fits the budget (false if even the lowest ladder
    /// states exceed it — DVFS has run out of range).
    pub feasible: bool,
}

/// Runs the greedy maxBIPS allocation.
///
/// `fixed_watts` covers power the allocator cannot touch (e.g. the
/// latency-critical service's cores held at nominal frequency).
///
/// # Panics
///
/// Panics if any core has an empty option list.
pub fn max_bips(cores: &[CoreOptions], fixed_watts: f64, budget: f64) -> MaxBipsPlan {
    for (i, options) in cores.iter().enumerate() {
        assert!(!options.is_empty(), "core {i} has no DVFS operating points");
    }
    let mut states = vec![0usize; cores.len()];
    let mut total_watts = fixed_watts + cores.iter().map(|o| o[0].1).sum::<f64>();
    let mut total_bips: f64 = cores.iter().map(|o| o[0].0).sum();

    while total_watts > budget {
        // Downgrade the core with the smallest BIPS loss per Watt saved.
        let mut best: Option<(usize, f64)> = None;
        for (i, options) in cores.iter().enumerate() {
            let s = states[i];
            if s + 1 >= options.len() {
                continue;
            }
            let d_bips = options[s].0 - options[s + 1].0;
            let d_watts = (options[s].1 - options[s + 1].1).max(1e-9);
            let cost = d_bips / d_watts;
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
        }
        let Some((i, _)) = best else {
            // Every core already at the bottom of its ladder.
            return MaxBipsPlan {
                states,
                total_bips,
                total_watts,
                feasible: false,
            };
        };
        let s = states[i];
        total_bips -= cores[i][s].0 - cores[i][s + 1].0;
        total_watts -= cores[i][s].1 - cores[i][s + 1].1;
        states[i] = s + 1;
    }
    MaxBipsPlan {
        states,
        total_bips,
        total_watts,
        feasible: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three ladder states per core: (bips, watts).
    fn cores() -> Vec<CoreOptions> {
        vec![
            vec![(4.0, 5.0), (3.0, 3.5), (2.2, 2.5)], // compute-bound: big loss
            vec![(2.0, 5.0), (1.9, 3.5), (1.7, 2.5)], // memory-bound: tiny loss
        ]
    }

    #[test]
    fn generous_budget_keeps_everything_at_nominal() {
        let plan = max_bips(&cores(), 0.0, 100.0);
        assert_eq!(plan.states, vec![0, 0]);
        assert!(plan.feasible);
        assert_eq!(plan.total_bips, 6.0);
    }

    #[test]
    fn downclocks_the_memory_bound_core_first() {
        // Need to shed 1.5 W: core 1 loses 0.1 BIPS/1.5 W; core 0 loses 1.0.
        let plan = max_bips(&cores(), 0.0, 9.0);
        assert_eq!(
            plan.states,
            vec![0, 1],
            "memory-bound core downclocks first"
        );
        assert!(plan.feasible);
        assert!(plan.total_watts <= 9.0);
    }

    #[test]
    fn exhausted_ladder_reports_infeasible() {
        let plan = max_bips(&cores(), 0.0, 1.0);
        assert!(!plan.feasible);
        assert_eq!(plan.states, vec![2, 2], "everything at the ladder bottom");
    }

    #[test]
    fn fixed_power_reduces_the_available_budget() {
        let with_fixed = max_bips(&cores(), 4.0, 13.0);
        let without = max_bips(&cores(), 0.0, 13.0);
        assert!(with_fixed.total_bips < without.total_bips);
    }

    #[test]
    #[should_panic(expected = "no DVFS operating points")]
    fn empty_options_rejected() {
        let _ = max_bips(&[vec![]], 0.0, 10.0);
    }
}
