//! Shared vocabulary of the decision loop: scenarios, plans, measurements,
//! records, and the [`ResourceManager`] contract.
//!
//! These types are the interface between three worlds — the simulated server
//! in [`crate::testbed`], the decision pipeline in [`crate::pipeline`], and
//! the experiment harness in the `bench` crate — so they live in their own
//! module with no dependency on any of them.
//!
//! # The job model
//!
//! A [`Scenario`] carries a list of [`JobSpec`]s. Each job is either
//! latency-critical — an interactive service with its own QoS target, input
//! load, and core reservation — or batch — a throughput application that may
//! arrive or depart mid-run (churn). Job indices are global and stable:
//! LC jobs occupy indices `0..num_lc` in specification order (which is also
//! their QoS priority order), batch jobs follow at `num_lc..num_lc +
//! num_batch`. The paper's setup is the exact `N = 1` special case, and
//! [`Scenario::paper_default`] reproduces it bit-identically.

use serde::Serialize;
use simulator::power::CoreKind;
use simulator::{AppProfile, CacheAlloc, Chip, CoreConfig, JobConfig, SystemParams};
use workloads::batch::{self, SpecBenchmark, SpecMix};
use workloads::latency::LcService;
use workloads::loadgen::LoadPattern;

use crate::faults::{FaultPlan, InjectedFaults};
use crate::telemetry::StageTelemetry;

/// Number of batch applications in the standard co-location.
pub const BATCH_JOBS: usize = 16;

/// The default decision quantum in milliseconds (§IV-B).
pub const TIMESLICE_MS: f64 = 100.0;

/// A latency-critical tenant: an interactive service with its own QoS
/// target, input load, and initial core reservation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LcJobSpec {
    /// The interactive service.
    pub service: LcService,
    /// QoS target on 99th-percentile latency (ms). Defaults to the
    /// service's calibrated target but may be overridden per tenant.
    pub qos_ms: f64,
    /// Input load over time, as a fraction of the service's calibrated
    /// maximum QPS.
    pub load: LoadPattern,
    /// Cores initially reserved for this tenant.
    pub cores: usize,
}

impl LcJobSpec {
    /// A tenant running `service` at its calibrated QoS target.
    pub fn new(service: LcService, load: LoadPattern, cores: usize) -> LcJobSpec {
        LcJobSpec {
            service,
            qos_ms: service.qos_ms,
            load,
            cores,
        }
    }
}

/// A batch tenant: a throughput application, optionally arriving or
/// departing mid-run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatchJobSpec {
    /// The application.
    pub app: SpecBenchmark,
    /// First slice in which the job is present.
    pub arrive_slice: usize,
    /// Slice at which the job departs (exclusive); `None` = stays forever.
    pub depart_slice: Option<usize>,
}

impl BatchJobSpec {
    /// A batch job present for the whole run.
    pub fn resident(app: SpecBenchmark) -> BatchJobSpec {
        BatchJobSpec {
            app,
            arrive_slice: 0,
            depart_slice: None,
        }
    }

    /// Whether the job is present during `slice`.
    pub fn active_at(&self, slice: usize) -> bool {
        slice >= self.arrive_slice && self.depart_slice.is_none_or(|d| slice < d)
    }
}

/// One job in a scenario: a latency-critical tenant or a batch application.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum JobSpec {
    /// An interactive service with a QoS target.
    LatencyCritical(LcJobSpec),
    /// A throughput application.
    Batch(BatchJobSpec),
}

/// A complete experiment configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Chip parameters (Table I).
    pub params: SystemParams,
    /// Core kind: reconfigurable for CuttleSys/Flicker, fixed for the
    /// gating/asymmetric/no-gating baselines.
    pub kind: CoreKind,
    /// The co-located jobs. LC jobs take global indices `0..num_lc` in
    /// order (their QoS priority order); batch jobs follow.
    pub jobs: Vec<JobSpec>,
    /// Power cap over time, as a fraction of the nominal budget.
    pub cap: LoadPattern,
    /// Number of 100 ms timeslices to simulate.
    pub duration_slices: usize,
    /// Relative standard deviation of measurement noise.
    pub noise: f64,
    /// Whether applications drift through execution phases.
    pub phases: bool,
    /// Master seed.
    pub seed: u64,
    /// Fault-injection plan (dropped/corrupted samples, stalled or diverged
    /// reconstructions, failed reconfigurations, power blackouts). Defaults
    /// to [`FaultPlan::none`], under which every fault hook is a guaranteed
    /// no-op and runs are bit-identical to a build without them.
    pub faults: FaultPlan,
}

impl Scenario {
    /// The paper's standard setup: 32 cores, 50/50 split, Xapian at 80 %
    /// load with mix 0, a 70 % power cap, one second of simulated time.
    // Looks up services baked into the static workload catalog.
    #[allow(clippy::expect_used)]
    pub fn paper_default() -> Scenario {
        let service = workloads::latency::service_by_name("xapian").expect("xapian exists");
        let mut jobs = vec![JobSpec::LatencyCritical(LcJobSpec::new(
            service,
            LoadPattern::Constant(0.8),
            16,
        ))];
        for app in batch::mix(BATCH_JOBS, 0xC0FFEE).apps {
            jobs.push(JobSpec::Batch(BatchJobSpec::resident(app)));
        }
        Scenario {
            params: SystemParams::default(),
            kind: CoreKind::Reconfigurable,
            jobs,
            cap: LoadPattern::Constant(0.7),
            duration_slices: 10,
            noise: 0.03,
            phases: true,
            seed: 7,
            faults: FaultPlan::none(),
        }
    }

    /// A fast, small configuration for doc examples and smoke tests.
    pub fn quick_demo() -> Scenario {
        Scenario {
            duration_slices: 3,
            ..Scenario::paper_default()
        }
    }

    /// A first-class multi-tenant setup: Xapian and Masstree with their own
    /// QoS targets on 8 cores each, co-located with 12 batch jobs under a
    /// 70 % power cap.
    ///
    /// Per-tenant loads are fractions of each service's 16-core calibrated
    /// maximum, so 0.4 keeps an 8-core reservation below its knee.
    // Looks up services baked into the static workload catalog.
    #[allow(clippy::expect_used)]
    pub fn two_service() -> Scenario {
        let xapian = workloads::latency::service_by_name("xapian").expect("xapian exists");
        let masstree = workloads::latency::service_by_name("masstree").expect("masstree exists");
        let mut jobs = vec![
            JobSpec::LatencyCritical(LcJobSpec::new(xapian, LoadPattern::Constant(0.4), 8)),
            JobSpec::LatencyCritical(LcJobSpec::new(masstree, LoadPattern::Constant(0.4), 8)),
        ];
        for app in batch::mix(12, 0xC0FFEE).apps {
            jobs.push(JobSpec::Batch(BatchJobSpec::resident(app)));
        }
        Scenario {
            jobs,
            ..Scenario::paper_default()
        }
    }

    /// Replaces the primary (first) LC tenant's service, resetting its QoS
    /// target to the service's calibrated value.
    // Documented panic: every scenario/plan carries at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn with_service(mut self, service: LcService) -> Scenario {
        let lc = self
            .jobs
            .iter_mut()
            .find_map(|j| match j {
                JobSpec::LatencyCritical(lc) => Some(lc),
                JobSpec::Batch(_) => None,
            })
            .expect("scenario has an LC job");
        lc.service = service;
        lc.qos_ms = service.qos_ms;
        self
    }

    /// Replaces the batch jobs with the given mix (all resident).
    pub fn with_mix(mut self, mix: SpecMix) -> Scenario {
        self.jobs
            .retain(|j| matches!(j, JobSpec::LatencyCritical(_)));
        for app in mix.apps {
            self.jobs.push(JobSpec::Batch(BatchJobSpec::resident(app)));
        }
        self
    }

    /// Replaces the fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Scenario {
        self.faults = faults;
        self
    }

    /// Replaces the number of decision quanta to simulate.
    #[must_use]
    pub fn with_duration_slices(mut self, slices: usize) -> Scenario {
        self.duration_slices = slices;
        self
    }

    /// Replaces the power-cap pattern (fraction of the nominal budget).
    #[must_use]
    pub fn with_cap(mut self, cap: LoadPattern) -> Scenario {
        self.cap = cap;
        self
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Replaces the measurement-noise relative standard deviation.
    #[must_use]
    pub fn with_noise(mut self, noise: f64) -> Scenario {
        self.noise = noise;
        self
    }

    /// Enables or disables execution-phase drift.
    #[must_use]
    pub fn with_phases(mut self, phases: bool) -> Scenario {
        self.phases = phases;
        self
    }

    /// Replaces the primary LC tenant's load pattern.
    // Documented panic: every scenario/plan carries at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn with_load(mut self, load: LoadPattern) -> Scenario {
        let lc = self
            .jobs
            .iter_mut()
            .find_map(|j| match j {
                JobSpec::LatencyCritical(lc) => Some(lc),
                JobSpec::Batch(_) => None,
            })
            .expect("scenario has an LC job");
        lc.load = load;
        self
    }

    /// Replaces the primary LC tenant's initial core reservation.
    // Documented panic: every scenario/plan carries at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn with_lc_cores(mut self, cores: usize) -> Scenario {
        let lc = self
            .jobs
            .iter_mut()
            .find_map(|j| match j {
                JobSpec::LatencyCritical(lc) => Some(lc),
                JobSpec::Batch(_) => None,
            })
            .expect("scenario has an LC job");
        lc.cores = cores;
        self
    }

    /// The LC tenants in priority order.
    pub fn lc_jobs(&self) -> Vec<&LcJobSpec> {
        self.jobs
            .iter()
            .filter_map(|j| match j {
                JobSpec::LatencyCritical(lc) => Some(lc),
                JobSpec::Batch(_) => None,
            })
            .collect()
    }

    /// The batch jobs in order.
    pub fn batch_jobs(&self) -> Vec<&BatchJobSpec> {
        self.jobs
            .iter()
            .filter_map(|j| match j {
                JobSpec::Batch(b) => Some(b),
                JobSpec::LatencyCritical(_) => None,
            })
            .collect()
    }

    /// The primary (first, highest-priority) LC tenant.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no LC job.
    // Documented panic: every scenario/plan carries at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn primary_lc(&self) -> &LcJobSpec {
        self.lc_jobs()
            .first()
            .copied()
            .expect("scenario has an LC job")
    }

    /// Number of LC tenants.
    pub fn num_lc(&self) -> usize {
        self.lc_jobs().len()
    }

    /// Number of batch jobs (resident or churning).
    pub fn num_batch(&self) -> usize {
        self.batch_jobs().len()
    }

    /// Total cores initially reserved across all LC tenants.
    pub fn total_lc_cores(&self) -> usize {
        self.lc_jobs().iter().map(|lc| lc.cores).sum()
    }

    /// Microarchitectural profiles of the batch jobs, in order.
    pub fn batch_profiles(&self) -> Vec<AppProfile> {
        self.batch_jobs().iter().map(|b| b.app.profile).collect()
    }

    /// Names of the batch jobs, in order.
    pub fn batch_names(&self) -> Vec<&'static str> {
        self.batch_jobs().iter().map(|b| b.app.name).collect()
    }

    /// Which batch jobs are present during `slice`.
    pub fn batch_active(&self, slice: usize) -> Vec<bool> {
        self.batch_jobs()
            .iter()
            .map(|b| b.active_at(slice))
            .collect()
    }

    /// Nominal (100 %) power budget in Watts: the §VII-A definition —
    /// average per-core power across all jobs on reconfigurable cores,
    /// scaled to the full chip. Identical across core kinds so every design
    /// is compared at the same Wattage.
    pub fn nominal_budget_watts(&self) -> f64 {
        let reconf = Chip::new(self.params, CoreKind::Reconfigurable);
        let mut profiles = self.batch_profiles();
        for lc in self.lc_jobs() {
            profiles.push(lc.service.profile);
        }
        reconf.nominal_power_budget(&profiles).get()
    }
}

/// What a batch job does during a timeslice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum BatchAction {
    /// Run on one core at this configuration.
    Run(JobConfig),
    /// The job's core is power-gated; it executes nothing.
    Gated,
}

impl BatchAction {
    /// The configuration, if running.
    pub fn config(&self) -> Option<JobConfig> {
        match self {
            BatchAction::Run(c) => Some(*c),
            BatchAction::Gated => None,
        }
    }
}

/// Cores and configuration granted to one LC tenant for a timeslice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LcAssignment {
    /// Cores assigned to the tenant.
    pub cores: usize,
    /// Configuration of every one of those cores.
    pub config: JobConfig,
}

/// A steady-state plan for one timeslice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Plan {
    /// Per-LC-tenant assignment, in priority order.
    pub lc: Vec<LcAssignment>,
    /// Action for each batch job.
    pub batch: Vec<BatchAction>,
}

impl Plan {
    /// A single-LC plan — the paper's shape.
    pub fn with_single_lc(lc_cores: usize, lc_config: JobConfig, batch: Vec<BatchAction>) -> Plan {
        Plan {
            lc: vec![LcAssignment {
                cores: lc_cores,
                config: lc_config,
            }],
            batch,
        }
    }

    /// All cores at the widest configuration with four LLC ways each — the
    /// no-gating reference for the given per-tenant core split.
    pub fn all_widest(lc_cores: &[usize], num_batch: usize) -> Plan {
        Plan {
            lc: lc_cores
                .iter()
                .map(|&cores| LcAssignment {
                    cores,
                    config: JobConfig::new(CoreConfig::widest(), CacheAlloc::Four),
                })
                .collect(),
            batch: vec![BatchAction::Run(JobConfig::profiling_high()); num_batch],
        }
    }

    /// Total cores held by LC tenants.
    pub fn lc_cores(&self) -> usize {
        self.lc.iter().map(|a| a.cores).sum()
    }

    /// The primary LC tenant's configuration.
    // Documented panic: every scenario/plan carries at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn lc_config(&self) -> JobConfig {
        self.lc.first().expect("plan has an LC assignment").config
    }

    /// Total LLC ways this plan allocates.
    pub fn total_ways(&self) -> f64 {
        self.lc.iter().map(|a| a.config.cache.ways()).sum::<f64>()
            + self
                .batch
                .iter()
                .filter_map(|a| a.config())
                .map(|c| c.cache.ways())
                .sum::<f64>()
    }
}

/// A profiling frame request: per-core configurations for each LC tenant
/// (so halves can be split across the widest/narrowest extremes) plus
/// per-job batch actions.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfilePlan {
    /// Configuration of each core of each LC tenant, in priority order
    /// (`lc_configs[i].len()` is tenant `i`'s core count).
    pub lc_configs: Vec<Vec<JobConfig>>,
    /// Action for each batch job.
    pub batch: Vec<BatchAction>,
}

impl ProfilePlan {
    /// A single-LC profiling frame — the paper's shape.
    pub fn single_lc(lc_configs: Vec<JobConfig>, batch: Vec<BatchAction>) -> ProfilePlan {
        ProfilePlan {
            lc_configs: vec![lc_configs],
            batch,
        }
    }
}

/// One measured sample: a job observed at a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SamplePoint {
    /// Global job index: `0..num_lc` are the LC tenants,
    /// `num_lc..num_lc + num_batch` are batch jobs.
    pub job: usize,
    /// The configuration the job (or a subset of its cores) ran in.
    pub config: JobConfig,
    /// Measured per-core throughput (BIPS), with measurement noise.
    pub bips: f64,
    /// Measured per-core power (W), with measurement noise.
    pub watts: f64,
}

/// Measurements returned by a profiling frame.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfileSample {
    /// Frame duration in milliseconds.
    pub duration_ms: f64,
    /// Per-(job, config) samples.
    pub samples: Vec<SamplePoint>,
    /// Noisy per-tenant estimate of tail latency under this frame's regime —
    /// what a 10 ms Flicker profiling period would measure (ms).
    pub lc_tails_ms: Vec<f64>,
}

/// Per-tenant facts a manager sees at the start of a timeslice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LcSliceInfo {
    /// The tenant's service.
    pub service: LcService,
    /// The tenant's QoS target (ms).
    pub qos_ms: f64,
    /// Measured arrival rate as a fraction of the service's calibrated
    /// maximum QPS — directly observable from request counters in a real
    /// deployment.
    pub load: f64,
    /// Measured 99th-percentile latency of the previous slice, if any.
    pub last_tail_ms: Option<f64>,
    /// Cores the tenant held in the previous slice.
    pub last_cores: usize,
}

/// Static facts a manager sees at the start of a timeslice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SliceInfo {
    /// Timeslice index.
    pub slice: usize,
    /// Power cap for this slice, in Watts.
    pub cap_watts: f64,
    /// Total cores on the chip.
    pub num_cores: usize,
    /// Number of batch jobs.
    pub num_batch: usize,
    /// Per-LC-tenant facts, in priority order.
    pub lc: Vec<LcSliceInfo>,
    /// Which batch jobs are present this slice (churn).
    pub batch_active: Vec<bool>,
}

impl SliceInfo {
    /// The primary LC tenant's facts.
    // Documented panic: every scenario/plan carries at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn primary_lc(&self) -> &LcSliceInfo {
        self.lc.first().expect("slice has an LC tenant")
    }

    /// Number of batch jobs present this slice.
    pub fn active_batch(&self) -> usize {
        self.batch_active.iter().filter(|a| **a).count()
    }
}

/// Steady-state measurements a manager receives after its plan ran.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SliceOutcome {
    /// The plan that ran.
    pub plan: Plan,
    /// Noisy per-core throughput of each job (global indices: LC tenants
    /// first, then batch).
    pub measured_bips: Vec<f64>,
    /// Noisy per-core power of each job.
    pub measured_watts: Vec<f64>,
    /// Measured per-tenant 99th-percentile latency over the whole slice
    /// (ms), in priority order.
    pub tails_ms: Vec<f64>,
}

/// A resource manager under test.
pub trait ResourceManager {
    /// Human-readable scheme name for reports.
    fn name(&self) -> String;

    /// Decides the steady-state plan for this timeslice. `probe` runs a
    /// profiling frame and returns its measurements; every probe consumes
    /// its duration from the slice.
    fn plan(
        &mut self,
        info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan;

    /// Observes the steady-state outcome (default: ignore).
    fn observe(&mut self, _outcome: &SliceOutcome) {}

    /// Yields the instrumentation record of the most recent [`plan`] call,
    /// if the manager collects one (default: none). The testbed stores it in
    /// the slice's [`SliceRecord::telemetry`].
    ///
    /// [`plan`]: ResourceManager::plan
    fn take_telemetry(&mut self) -> Option<StageTelemetry> {
        None
    }
}

/// Ground-truth per-tenant record of one timeslice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LcSliceRecord {
    /// The tenant's service name.
    pub service: &'static str,
    /// The tenant's QoS target (ms) — stored so summaries never need a
    /// caller-supplied target.
    pub qos_ms: f64,
    /// Input load fraction during the slice.
    pub load: f64,
    /// True 99th-percentile latency over the slice (ms), before noise.
    pub tail_ms: f64,
    /// Whether the tail violated the tenant's QoS.
    pub qos_violation: bool,
    /// Cores held by the tenant.
    pub cores: usize,
    /// The tenant's steady-phase configuration.
    pub config: JobConfig,
}

/// Ground-truth record of one timeslice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SliceRecord {
    /// Slice start time in seconds.
    pub t_s: f64,
    /// Power cap (W).
    pub cap_watts: f64,
    /// Time-weighted average chip power over the slice (W).
    pub chip_watts: f64,
    /// Whether average power exceeded the cap.
    pub power_violation: bool,
    /// Per-LC-tenant ground truth, in priority order.
    pub lc: Vec<LcSliceRecord>,
    /// Instructions executed by batch jobs during the slice.
    pub batch_instructions: f64,
    /// Instructions executed by all jobs during the slice.
    pub total_instructions: f64,
    /// Per-job instructions (global indices: LC tenants first).
    pub per_job_instructions: Vec<f64>,
    /// Steady-phase batch configurations (`None` = gated or departed).
    pub batch_configs: Vec<Option<JobConfig>>,
    /// Geometric mean of running batch jobs' throughput (BIPS).
    pub batch_gmean_bips: f64,
    /// Per-stage instrumentation of the decision that produced this slice's
    /// plan, when the manager collects it (CuttleSys does; see
    /// [`StageTelemetry`]).
    pub telemetry: Option<StageTelemetry>,
    /// Environment faults injected into this slice, when a fault plan is
    /// active (`None` on clean runs).
    pub fault: Option<InjectedFaults>,
}

impl SliceRecord {
    /// The primary LC tenant's record.
    // Documented panic: every scenario/plan carries at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn primary_lc(&self) -> &LcSliceRecord {
        self.lc.first().expect("slice has an LC tenant")
    }

    /// The primary LC tenant's input load.
    pub fn load(&self) -> f64 {
        self.primary_lc().load
    }

    /// The primary LC tenant's true tail latency (ms).
    pub fn tail_ms(&self) -> f64 {
        self.primary_lc().tail_ms
    }

    /// Whether any LC tenant violated its QoS this slice.
    pub fn qos_violation(&self) -> bool {
        self.lc.iter().any(|l| l.qos_violation)
    }

    /// Total cores held by LC tenants.
    pub fn lc_cores(&self) -> usize {
        self.lc.iter().map(|l| l.cores).sum()
    }

    /// The primary LC tenant's steady-phase configuration.
    pub fn lc_config(&self) -> JobConfig {
        self.primary_lc().config
    }
}

/// A completed scenario run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunRecord {
    /// The manager's name.
    pub scheme: String,
    /// Per-slice records.
    pub slices: Vec<SliceRecord>,
}

impl RunRecord {
    /// Total instructions executed by batch jobs across the run — the
    /// paper's comparison metric (§VII-B).
    pub fn batch_instructions(&self) -> f64 {
        self.slices.iter().map(|s| s.batch_instructions).sum()
    }

    /// Number of slices in which any LC tenant violated its QoS.
    pub fn qos_violations(&self) -> usize {
        self.slices.iter().filter(|s| s.qos_violation()).count()
    }

    /// Number of slices in which LC tenant `lc` violated its QoS.
    pub fn qos_violations_for(&self, lc: usize) -> usize {
        self.slices
            .iter()
            .filter(|s| s.lc.get(lc).is_some_and(|l| l.qos_violation))
            .count()
    }

    /// Number of slices whose average power exceeded the cap.
    pub fn power_violations(&self) -> usize {
        self.slices.iter().filter(|s| s.power_violation).count()
    }

    /// Worst tail-latency-to-QoS ratio across the run, over every LC
    /// tenant. Targets come from the records themselves, so summaries can
    /// never mismatch the scenario.
    pub fn worst_tail_ratio(&self) -> f64 {
        self.slices
            .iter()
            .flat_map(|s| s.lc.iter())
            .map(|l| l.tail_ms / l.qos_ms)
            .fold(0.0, f64::max)
    }

    /// The record with wall-clock stage timings (and the
    /// wall-clock-budgeted cache counters) zeroed, so runs compare on
    /// simulated quantities only — the convention every determinism test in
    /// this workspace uses (`service::comparable` delegates here).
    pub fn comparable(mut self) -> RunRecord {
        for slice in self.slices.iter_mut() {
            if let Some(t) = slice.telemetry.as_mut() {
                t.profile_wall_ms = 0.0;
                t.reconstruct_wall_ms = 0.0;
                t.qos_wall_ms = 0.0;
                t.search_wall_ms = 0.0;
                t.repair_wall_ms = 0.0;
                t.cache_hits = 0;
                t.cache_misses = 0;
            }
        }
        self
    }

    /// Per-stage telemetry aggregated over the slices that carry it
    /// (`None` when no slice does — e.g. baseline managers).
    pub fn stage_summary(&self) -> Option<crate::telemetry::TelemetrySummary> {
        crate::telemetry::TelemetrySummary::over(
            self.slices.iter().filter_map(|s| s.telemetry.as_ref()),
        )
    }

    /// Number of slices whose decision degraded in any way (sample
    /// rejection fallback, last-good replay, safe mode, open breaker).
    pub fn degraded_quanta(&self) -> usize {
        self.slices
            .iter()
            .filter_map(|s| s.telemetry.as_ref())
            .filter(|t| t.degradation.degraded())
            .count()
    }

    /// Number of slices in which at least one environment fault actually
    /// fired (dropped/corrupted samples, blackout, failed reconfiguration).
    pub fn injected_fault_slices(&self) -> usize {
        self.slices
            .iter()
            .filter(|s| s.fault.is_some_and(|f| f.any()))
            .count()
    }

    /// Number of slices served by the safe-mode allocation.
    pub fn safe_mode_quanta(&self) -> usize {
        self.slices
            .iter()
            .filter_map(|s| s.telemetry.as_ref())
            .filter(|t| t.degradation.safe_mode)
            .count()
    }

    /// The run as a JSON document (hand-rolled — the vendored `serde` is a
    /// stub): scheme, run-level summary metrics, the aggregated stage
    /// telemetry when present, and one row per slice.
    pub fn to_json(&self) -> util::JsonValue {
        use util::JsonValue as J;
        let slice_row = |s: &SliceRecord| {
            J::Obj(vec![
                ("t_s".into(), J::Num(s.t_s)),
                ("cap_watts".into(), J::Num(s.cap_watts)),
                ("chip_watts".into(), J::Num(s.chip_watts)),
                ("power_violation".into(), J::Bool(s.power_violation)),
                (
                    "lc".into(),
                    J::Arr(
                        s.lc.iter()
                            .map(|l| {
                                J::Obj(vec![
                                    ("service".into(), J::Str(l.service.to_string())),
                                    ("load".into(), J::Num(l.load)),
                                    ("tail_ms".into(), J::Num(l.tail_ms)),
                                    ("qos_ms".into(), J::Num(l.qos_ms)),
                                    ("qos_violation".into(), J::Bool(l.qos_violation)),
                                    ("cores".into(), J::Num(l.cores as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("batch_instructions".into(), J::Num(s.batch_instructions)),
                ("batch_gmean_bips".into(), J::Num(s.batch_gmean_bips)),
                (
                    "degraded".into(),
                    J::Bool(
                        s.telemetry
                            .as_ref()
                            .is_some_and(|t| t.degradation.degraded()),
                    ),
                ),
            ])
        };
        J::Obj(vec![
            ("scheme".into(), J::Str(self.scheme.clone())),
            (
                "batch_instructions".into(),
                J::Num(self.batch_instructions()),
            ),
            (
                "qos_violations".into(),
                J::Num(self.qos_violations() as f64),
            ),
            (
                "power_violations".into(),
                J::Num(self.power_violations() as f64),
            ),
            ("worst_tail_ratio".into(), J::Num(self.worst_tail_ratio())),
            (
                "degraded_quanta".into(),
                J::Num(self.degraded_quanta() as f64),
            ),
            (
                "safe_mode_quanta".into(),
                J::Num(self.safe_mode_quanta() as f64),
            ),
            (
                "stage_summary".into(),
                self.stage_summary()
                    .map_or(J::Null, |summary| summary.to_json()),
            ),
            (
                "slices".into(),
                J::Arr(self.slices.iter().map(slice_row).collect()),
            ),
        ])
    }
}
